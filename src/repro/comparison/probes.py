"""Runtime feature probes.

Each probe spins up a fresh simulated network, mounts the spec version
under test, and *attempts* the feature over real SOAP exchanges; the cell
value reflects what actually happened, not what the flags claim.  (Purely
structural rows — release dates, WSA bindings, mandatory-ness — come from
the version profiles, which is what a spec *text* says rather than what a
wire exchange can reveal.)
"""

from __future__ import annotations

from typing import Union

from repro.soap.fault import SoapFault
from repro.transport.clock import VirtualClock
from repro.transport.network import SimulatedNetwork
from repro.wse.model import DeliveryMode
from repro.wse.sink import EventSink
from repro.wse.source import EventSource
from repro.wse.subscriber import WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn.consumer import NotificationConsumer
from repro.wsn.producer import NotificationProducer
from repro.wsn.pullpoint import PullPointClient, PullPointFactory
from repro.wsn.subscriber import WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit.parser import parse_xml

SpecVersion = Union[WseVersion, WsnVersion]


def _event():
    return parse_xml('<ev:E xmlns:ev="urn:probe"><ev:n>1</ev:n></ev:E>')


class _WseHarness:
    def __init__(self, version: WseVersion) -> None:
        self.version = version
        self.network = SimulatedNetwork(VirtualClock())
        self.source = EventSource(self.network, "http://probe-source", version=version)
        self.sink = EventSink(self.network, "http://probe-sink", version=version)
        self.subscriber = WseSubscriber(self.network, version=version)

    def subscribe(self, **kwargs):
        kwargs.setdefault("notify_to", self.sink.epr())
        return self.subscriber.subscribe(self.source.epr(), **kwargs)


class _WsnHarness:
    def __init__(self, version: WsnVersion) -> None:
        self.version = version
        self.network = SimulatedNetwork(VirtualClock())
        self.producer = NotificationProducer(
            self.network, "http://probe-producer", version=version
        )
        self.consumer = NotificationConsumer(
            self.network, "http://probe-consumer", version=version
        )
        self.subscriber = WsnSubscriber(self.network, version=version)

    def subscribe(self, **kwargs):
        kwargs.setdefault("topic", "probe")
        return self.subscriber.subscribe(self.producer.epr(), self.consumer.epr(), **kwargs)


# --- probes (each returns the measured cell value) -----------------------------------


def probe_separate_manager(version: SpecVersion) -> bool:
    """Does Subscribe yield a manager endpoint distinct from the source?"""
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        handle = harness.subscribe()
        return handle.manager.address != harness.source.address
    harness = _WsnHarness(version)
    handle = harness.subscribe()
    return handle.reference.address != harness.producer.address


def probe_get_status(version: SpecVersion) -> bool:
    """Can the subscription's status/expiry be queried?"""
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        handle = harness.subscribe()
        try:
            return bool(harness.subscriber.get_status(handle))
        except SoapFault:
            return False
    harness = _WsnHarness(version)
    handle = harness.subscribe()
    try:
        return harness.subscriber.get_status(handle) == "Active"
    except SoapFault:
        return False


def probe_id_in_epr(version: SpecVersion) -> bool:
    """Is the subscription id returned inside the manager EPR's WS-Addressing
    reference parameters/properties (vs a bare element)?"""
    if isinstance(version, WseVersion):
        handle = _WseHarness(version).subscribe()
        return bool(
            handle.manager.reference_parameters or handle.manager.reference_properties
        )
    handle = _WsnHarness(version).subscribe()
    return bool(
        handle.reference.reference_parameters or handle.reference.reference_properties
    )


def probe_wrapped_delivery(version: SpecVersion) -> bool:
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        try:
            harness.subscribe(mode=DeliveryMode.WRAPPED)
            return True
        except SoapFault:
            return False
    harness = _WsnHarness(version)
    harness.subscribe()
    harness.producer.publish(_event(), topic="probe")
    return bool(harness.consumer.received) and harness.consumer.received[0].wrapped


def probe_pull_delivery(version: SpecVersion) -> bool:
    """Is there *any* way to pull notifications (mode or pull point)?"""
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        try:
            handle = harness.subscribe(notify_to=None, mode=DeliveryMode.PULL)
            harness.source.publish(_event())
            return len(harness.subscriber.pull(handle)) == 1
        except SoapFault:
            return False
    harness = _WsnHarness(version)
    try:
        factory = PullPointFactory(
            harness.network, "http://probe-pullpoints", version=version
        )
    except SoapFault:
        return False
    client = PullPointClient(harness.network, version=version)
    pull_point = client.create(factory.epr())
    harness.subscriber.subscribe(harness.producer.epr(), pull_point, topic="probe")
    harness.producer.publish(_event(), topic="probe")
    return len(client.get_messages(pull_point)) == 1


def probe_duration_expiry(version: SpecVersion) -> bool:
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        try:
            harness.subscribe(expires="PT60S")
            return True
        except SoapFault:
            return False
    harness = _WsnHarness(version)
    try:
        harness.subscribe(initial_termination="PT60S")
        return True
    except SoapFault:
        return False


def probe_requires_topic(version: SpecVersion) -> bool:
    """Does a topic-less Subscribe fault?"""
    if isinstance(version, WseVersion):
        return False  # WSE has no topic notion at all
    harness = _WsnHarness(version)
    try:
        harness.subscribe(topic=None)
        return False
    except SoapFault:
        return True


def probe_get_current_message(version: SpecVersion) -> bool:
    if isinstance(version, WseVersion):
        return False  # no such operation exists to call
    harness = _WsnHarness(version)
    harness.subscribe()
    harness.producer.publish(_event(), topic="probe")
    try:
        current = harness.subscriber.get_current_message(harness.producer.epr(), "probe")
        return current.name.local == "E"
    except SoapFault:
        return False


def probe_pull_point_interface(version: SpecVersion) -> bool:
    if isinstance(version, WseVersion):
        return False
    harness = _WsnHarness(version)
    try:
        PullPointFactory(harness.network, "http://probe-pp", version=version)
        return True
    except SoapFault:
        return False


def probe_pull_mode_in_subscription(version: SpecVersion) -> bool:
    """Can the Subscribe message itself request pull delivery?  (WSE 08/2004
    yes via the Delivery extension point; WSN never — the pull point is
    created beforehand and subscribed as an ordinary consumer.)"""
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        try:
            harness.subscribe(notify_to=None, mode=DeliveryMode.PULL)
            return True
        except SoapFault:
            return False
    return version.pull_mode_in_subscription


def probe_subscription_end_notice(version: SpecVersion) -> bool:
    """Does the consumer get an end-of-subscription notice when the source
    dies or the subscription expires?"""
    if isinstance(version, WseVersion):
        harness = _WseHarness(version)
        end_sink = EventSink(harness.network, "http://probe-end", version=version)
        harness.subscribe(end_to=end_sink.epr())
        harness.source.shutdown()
        return len(end_sink.subscription_ends) == 1
    harness = _WsnHarness(version)
    harness.subscribe(initial_termination="2006-01-01T00:01:00Z")
    harness.network.clock.advance(120.0)
    harness.producer.sweep()
    return bool(harness.consumer.termination_notices)


def probe_pause_resume(version: SpecVersion) -> bool:
    """Are Pause/ResumeSubscription operations available?"""
    if isinstance(version, WseVersion):
        return False
    harness = _WsnHarness(version)
    handle = harness.subscribe()
    harness.subscriber.pause(handle)
    harness.producer.publish(_event(), topic="probe")
    if harness.consumer.received:
        return False  # pause had no effect
    harness.subscriber.resume(handle)
    return len(harness.consumer.received) == 1
