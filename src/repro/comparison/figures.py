"""Figures 1 and 2: architecture entity/interaction diagrams, traced live.

The paper's Fig. 1 (WS-Eventing) and Fig. 2 (WS-BaseNotification) show the
entities each spec defines and the operations flowing between them.  Here
the diagrams are *recorded*: a full lifecycle runs over the simulated wire
with a network observer attached; every SOAP request becomes an edge
``actor --operation--> target-entity``.  The rendered output lists the
entities and the labelled interactions — the same information as the
figures, in text form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.soap.codec import parse_envelope
from repro.transport.clock import VirtualClock
from repro.transport.http import parse_request
from repro.transport.network import SimulatedNetwork
from repro.wsa.headers import extract_headers
from repro.wse.sink import EventSink
from repro.wse.source import EventSource
from repro.wse.subscriber import WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn.consumer import NotificationConsumer
from repro.wsn.producer import NotificationProducer
from repro.wsn.subscriber import WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit.parser import parse_xml


@dataclass(frozen=True)
class Interaction:
    source: str
    target: str
    operation: str


@dataclass
class ArchitectureTrace:
    """Entities and recorded interactions of one spec's architecture."""

    title: str
    entities: list[str] = field(default_factory=list)
    interactions: list[Interaction] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def edge_set(self) -> set[tuple[str, str, str]]:
        return {(i.source, i.target, i.operation) for i in self.interactions}

    def operations_between(self, source: str, target: str) -> list[str]:
        seen: list[str] = []
        for interaction in self.interactions:
            if interaction.source == source and interaction.target == target:
                if interaction.operation not in seen:
                    seen.append(interaction.operation)
        return seen

    def render(self) -> str:
        lines = [self.title, "=" * len(self.title), "", "Entities:"]
        for entity in self.entities:
            lines.append(f"  [{entity}]")
        lines.append("")
        lines.append("Interactions (traced from a live lifecycle):")
        for source in self.entities:
            for target in self.entities:
                operations = self.operations_between(source, target)
                if operations:
                    lines.append(
                        f"  [{source}] --{', '.join(operations)}--> [{target}]"
                    )
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"  note: {note}")
        return "\n".join(lines)


class _Recorder:
    """Wire observer: maps completed exchanges to labelled edges."""

    def __init__(self, network: SimulatedNetwork, labels: dict[str, str]) -> None:
        self.network = network
        self.labels = labels
        self.interactions: list[Interaction] = []
        self.actor = "?"
        network.wire_observers.append(self._observe)

    def set_actor(self, actor: str) -> None:
        self.actor = actor

    def _observe(self, observation) -> None:
        if not observation.ok:
            return  # only exchanges that actually reached the target
        try:
            request = parse_request(observation.request)
            envelope = parse_envelope(request.body)
            action = extract_headers(envelope).action
        except Exception as exc:
            # a frame the recorder cannot parse is dropped from the figure,
            # but the drop itself must show up in the metrics
            self.network.instrumentation.count(
                "obs.swallowed_errors_total",
                site="comparison.figures.recorder",
                kind=type(exc).__name__,
            )
            return
        operation = action.rsplit("/", 1)[-1]
        target = self.labels.get(observation.address)
        if target is None:
            return
        self.interactions.append(Interaction(self.actor, target, operation))


def _event():
    return parse_xml('<ev:E xmlns:ev="urn:fig"><ev:n>1</ev:n></ev:E>')


def trace_wse_architecture(version: WseVersion = WseVersion.V2004_08) -> ArchitectureTrace:
    """Run the full WS-Eventing lifecycle and record Fig. 1's interactions."""
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://fig-source", version=version)
    sink = EventSink(network, "http://fig-sink", version=version)
    end_sink = EventSink(network, "http://fig-end-sink", version=version)
    subscriber = WseSubscriber(network, version=version)

    if version.separate_subscription_manager:
        entities = ["Subscriber", "Event Source", "Subscription Manager", "Event Sink"]
        labels = {
            source.address: "Event Source",
            source.manager_address: "Subscription Manager",
            sink.address: "Event Sink",
            end_sink.address: "Event Sink",
        }
    else:
        entities = ["Subscriber", "Event Source", "Event Sink"]
        labels = {
            source.address: "Event Source",
            sink.address: "Event Sink",
            end_sink.address: "Event Sink",
        }
    recorder = _Recorder(network, labels)

    recorder.set_actor("Subscriber")
    handle = subscriber.subscribe(
        source.epr(), notify_to=sink.epr(), end_to=end_sink.epr(), expires="PT1H"
    )
    subscriber.renew(handle, "PT2H")
    if version.has_get_status:
        subscriber.get_status(handle)

    recorder.set_actor("Event Source")
    source.publish(_event())

    recorder.set_actor("Subscriber")
    subscriber.unsubscribe(handle)
    handle2 = subscriber.subscribe(
        source.epr(), notify_to=sink.epr(), end_to=end_sink.epr()
    )

    recorder.set_actor("Event Source")
    source.shutdown()  # emits SubscriptionEnd for handle2's subscription

    trace = ArchitectureTrace(
        f"Fig. 1: WS-Eventing ({version.name}) Architecture and Operations",
        entities=entities,
        interactions=recorder.interactions,
    )
    trace.notes.append(
        "the event source is both notification producer and publisher "
        "(WS-Eventing does not separate them)"
    )
    if not version.separate_subscription_manager:
        trace.notes.append(
            "01/2004: the event source acts as its own subscription manager"
        )
    del handle2
    return trace


def trace_converged_architecture() -> ArchitectureTrace:
    """The WS-EventNotification prototype's architecture, traced (E9).

    The converged entity graph is WSE's shape (Fig. 1) carrying WSN's
    operations as well — the structural summary of the convergence.
    """
    from repro.convergence.service import (
        MODE_PULL,
        ConvergedConsumer,
        ConvergedSource,
        ConvergedSubscriber,
    )

    network = SimulatedNetwork(VirtualClock())
    source = ConvergedSource(network, "http://fig-conv")
    consumer = ConvergedConsumer(network, "http://fig-conv-consumer")
    subscriber = ConvergedSubscriber(network)
    labels = {
        source.address: "Event Source",
        source.manager_address: "Subscription Manager",
        consumer.address: "Consumer",
    }
    recorder = _Recorder(network, labels)

    recorder.set_actor("Subscriber")
    handle = subscriber.subscribe(
        source.epr(), consumer=consumer.epr(), topic="fig", expires="PT1H"
    )
    puller = subscriber.subscribe(source.epr(), mode=MODE_PULL, topic="fig")
    subscriber.get_status(handle)
    subscriber.pause(handle)
    subscriber.resume(handle)
    subscriber.renew(handle, "PT2H")

    recorder.set_actor("Event Source")
    source.publish(_event(), topic="fig")

    recorder.set_actor("Subscriber")
    subscriber.pull(puller)
    subscriber.get_current_message(source.epr(), "fig")
    subscriber.unsubscribe(handle)

    trace = ArchitectureTrace(
        "WS-EventNotification prototype: architecture and operations (traced)",
        entities=["Subscriber", "Event Source", "Subscription Manager", "Consumer"],
        interactions=recorder.interactions,
    )
    trace.notes.append(
        "WSE's entity shape carrying the union of both families' operations"
    )
    return trace


def trace_wsn_architecture(version: WsnVersion = WsnVersion.V1_3) -> ArchitectureTrace:
    """Run the full WS-BaseNotification lifecycle and record Fig. 2."""
    network = SimulatedNetwork(VirtualClock())
    producer = NotificationProducer(network, "http://fig-producer", version=version)
    consumer = NotificationConsumer(network, "http://fig-consumer", version=version)
    subscriber = WsnSubscriber(network, version=version)
    labels = {
        producer.address: "Notification Producer",
        producer.manager_address: "Subscription Manager",
        consumer.address: "Notification Consumer",
    }
    entities = [
        "Publisher",
        "Subscriber",
        "Notification Producer",
        "Subscription Manager",
        "Notification Consumer",
    ]
    recorder = _Recorder(network, labels)

    recorder.set_actor("Subscriber")
    handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="fig")
    subscriber.pause(handle)
    subscriber.resume(handle)

    recorder.set_actor("Notification Producer")
    # the publisher is a separate entity: it hands events to the producer
    publisher_edge = Interaction("Publisher", "Notification Producer", "publish")
    producer.publish(_event(), topic="fig")

    recorder.set_actor("Subscriber")
    subscriber.get_current_message(producer.epr(), "fig")
    if version.has_native_unsubscribe:
        subscriber.renew(handle, "PT1H")
        subscriber.unsubscribe(handle)
    else:
        subscriber.set_termination_time(handle, "2006-01-01T02:00:00Z")
        subscriber.destroy(handle)

    interactions = [publisher_edge, *recorder.interactions]
    trace = ArchitectureTrace(
        f"Fig. 2: WS-BaseNotification ({version.name}) Architecture and Operations",
        entities=entities,
        interactions=interactions,
    )
    trace.notes.append(
        "the publisher is separate from the notification producer; it only "
        "hands events over (here: the in-process publish() API)"
    )
    if not version.has_native_unsubscribe:
        trace.notes.append(
            "pre-1.3: Renew/Unsubscribe are WSRF SetTerminationTime/Destroy"
        )
    return trace
