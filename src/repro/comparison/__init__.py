"""The comparative-study engine: the paper's evaluation, executable.

The paper's contribution *is* a comparison; this package makes that
comparison reproducible against the live implementations:

- :mod:`repro.comparison.tables` -- a small table model with ASCII
  rendering and expected-vs-measured diffing.
- :mod:`repro.comparison.probes` -- runtime probes that determine each
  feature cell *empirically* where possible (e.g. "Support Pull delivery
  mode" is decided by actually attempting a pull-mode subscription against
  that spec version), falling back to version-profile flags for purely
  structural facts (namespace bindings, release dates).
- :mod:`repro.comparison.table1` / :mod:`table2` / :mod:`table3` --
  regenerate the paper's three tables.
- :mod:`repro.comparison.figures` -- trace a full subscribe/notify/manage
  lifecycle on the wire and render the entity/interaction diagrams of
  Fig. 1 (WS-Eventing) and Fig. 2 (WS-BaseNotification).
"""

from repro.comparison.tables import ComparisonTable, TableDiff
from repro.comparison.table1 import build_table1, PAPER_TABLE1
from repro.comparison.table2 import build_table2, PAPER_TABLE2
from repro.comparison.table3 import build_table3, PAPER_TABLE3
from repro.comparison.figures import trace_wse_architecture, trace_wsn_architecture

__all__ = [
    "ComparisonTable",
    "TableDiff",
    "build_table1",
    "build_table2",
    "build_table3",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "trace_wse_architecture",
    "trace_wsn_architecture",
]
