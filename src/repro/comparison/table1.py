"""Table 1: comparison among versions of WS-Eventing and WS-Notification.

Columns in the paper's order: WSE 01/2004, WSN 1.0 (03/2004), WSE 08/2004,
WSN 1.3 (02/2006).  ``PAPER_TABLE1`` transcribes the published cells;
:func:`build_table1` measures the same cells against the implementations
(live probes where a wire exchange can decide the feature, version-profile
flags for structural/normative rows).
"""

from __future__ import annotations

from repro.comparison import probes
from repro.comparison.tables import ComparisonTable
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion

COLUMNS = ["WSE 01/2004", "WSN 1.0", "WSE 08/2004", "WSN 1.3"]
VERSIONS = [WseVersion.V2004_01, WsnVersion.V1_0, WseVersion.V2004_08, WsnVersion.V1_3]

_WSA_LABEL = {
    "V2003_03": "2003/03",
    "V2004_08": "2004/08",
    "V2005_08": "2005/08",
}

_VERSION_DATES = {
    WseVersion.V2004_01: "1/2004",
    WsnVersion.V1_0: "3/2004",
    WseVersion.V2004_08: "8/2004",
    WsnVersion.V1_3: "2/2006",
}


def build_table1() -> ComparisonTable:
    """Regenerate Table 1 from the implementations."""
    table = ComparisonTable("Table 1: WSE/WSN version comparison (measured)", COLUMNS)

    def row(label, fn):
        table.add_row(label, *[fn(v) for v in VERSIONS])

    row("Version date", lambda v: _VERSION_DATES[v])
    row("Separate Subscription Manager & Event Source", probes.probe_separate_manager)
    row("Separate subscriber & Event Sink", lambda v: v.separate_subscriber)
    row("Getstatus operation", probes.probe_get_status)
    row("Return subscriptionId in WSA of Subscription Manager", probes.probe_id_in_epr)
    row("Support Wrapped delivery mode", probes.probe_wrapped_delivery)
    row("Support Pull delivery mode", probes.probe_pull_delivery)
    row("Specify subscription expiration using duration", probes.probe_duration_expiry)
    row("Specify XPath dialect", lambda v: v.defines_xpath_dialect)
    row("Filter element in Subscription message", lambda v: v.has_filter_element)
    row("Require WSRF", lambda v: v.requires_wsrf)
    row("Require a topic in subscription", probes.probe_requires_topic)
    row(
        "Require Pause/Resume subscriptions",
        lambda v: getattr(v, "requires_pause_resume", False),
    )
    row("GetCurrentMessage operation", probes.probe_get_current_message)
    row("Define Wrapped message format", lambda v: v.defines_wrapped_format)
    row(
        "Separate EventProducer & Publisher",
        lambda v: v.separates_producer_and_publisher,
    )
    row("Define PullPoint interface", probes.probe_pull_point_interface)
    row(
        "Specify pull delivery mode in subscription",
        probes.probe_pull_mode_in_subscription,
    )
    row("Require Getstatus", lambda v: v.requires_status_query)
    row("Require SubscriptionEnd", lambda v: v.requires_subscription_end)
    row("WS-Addressing version", lambda v: _WSA_LABEL[v.wsa_version.name])
    return table


def _paper_table() -> ComparisonTable:
    table = ComparisonTable("Table 1: WSE/WSN version comparison (paper)", COLUMNS)
    table.add_row("Version date", "1/2004", "3/2004", "8/2004", "2/2006")
    table.add_row(
        "Separate Subscription Manager & Event Source", False, True, True, True
    )
    table.add_row("Separate subscriber & Event Sink", False, True, True, True)
    table.add_row("Getstatus operation", False, True, True, True)
    table.add_row(
        "Return subscriptionId in WSA of Subscription Manager", False, True, True, True
    )
    table.add_row("Support Wrapped delivery mode", False, True, True, True)
    table.add_row("Support Pull delivery mode", False, False, True, True)
    table.add_row(
        "Specify subscription expiration using duration", True, False, True, True
    )
    table.add_row("Specify XPath dialect", True, False, True, True)
    table.add_row("Filter element in Subscription message", True, False, True, True)
    table.add_row("Require WSRF", False, True, False, False)
    table.add_row("Require a topic in subscription", False, True, False, False)
    table.add_row("Require Pause/Resume subscriptions", False, True, False, False)
    table.add_row("GetCurrentMessage operation", False, True, False, True)
    table.add_row("Define Wrapped message format", False, True, False, True)
    table.add_row("Separate EventProducer & Publisher", False, True, False, True)
    table.add_row("Define PullPoint interface", False, False, False, True)
    table.add_row(
        "Specify pull delivery mode in subscription", False, False, True, False
    )
    table.add_row("Require Getstatus", True, True, True, False)
    table.add_row("Require SubscriptionEnd", True, True, True, False)
    table.add_row("WS-Addressing version", "2003/03", "2003/03", "2004/08", "2005/08")
    return table


PAPER_TABLE1 = _paper_table()


def build_table1_extended() -> ComparisonTable:
    """Table 1 with the WSN 1.2 column the paper omits.

    "We do not include version 1.2 of WS-BaseNotification since it is very
    similar to version 1.0" — this extended build adds the column so that
    claim itself is checkable: every 1.2 cell must equal the 1.0 cell except
    the WS-Addressing binding (1.2, the OASIS submission, moved to 2004/08).
    """
    base = build_table1()
    extended = ComparisonTable(
        "Table 1 (extended): including WSN 1.2", [*COLUMNS[:2], "WSN 1.2", *COLUMNS[2:]]
    )
    dates = dict(_VERSION_DATES)
    dates[WsnVersion.V1_2] = "6/2004"
    versions = [*VERSIONS[:2], WsnVersion.V1_2, *VERSIONS[2:]]
    from repro.comparison import probes as _probes

    probe_by_label = {
        "Separate Subscription Manager & Event Source": _probes.probe_separate_manager,
        "Getstatus operation": _probes.probe_get_status,
        "Return subscriptionId in WSA of Subscription Manager": _probes.probe_id_in_epr,
        "Support Wrapped delivery mode": _probes.probe_wrapped_delivery,
        "Support Pull delivery mode": _probes.probe_pull_delivery,
        "Specify subscription expiration using duration": _probes.probe_duration_expiry,
        "Require a topic in subscription": _probes.probe_requires_topic,
        "GetCurrentMessage operation": _probes.probe_get_current_message,
        "Define PullPoint interface": _probes.probe_pull_point_interface,
        "Specify pull delivery mode in subscription": _probes.probe_pull_mode_in_subscription,
    }
    flag_by_label = {
        "Separate subscriber & Event Sink": "separate_subscriber",
        "Specify XPath dialect": "defines_xpath_dialect",
        "Filter element in Subscription message": "has_filter_element",
        "Require WSRF": "requires_wsrf",
        "Require Pause/Resume subscriptions": "requires_pause_resume",
        "Define Wrapped message format": "defines_wrapped_format",
        "Separate EventProducer & Publisher": "separates_producer_and_publisher",
        "Require Getstatus": "requires_status_query",
        "Require SubscriptionEnd": "requires_subscription_end",
    }
    for label, cells in base.rows:
        if label == "Version date":
            value = dates[WsnVersion.V1_2]
        elif label == "WS-Addressing version":
            value = _WSA_LABEL[WsnVersion.V1_2.wsa_version.name]
        elif label in probe_by_label:
            value = probe_by_label[label](WsnVersion.V1_2)
        else:
            value = getattr(WsnVersion.V1_2, flag_by_label[label])
        extended.add_row(label, *cells[:2], value, *cells[2:])
    return extended
