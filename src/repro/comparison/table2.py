"""Table 2: function comparison (WS-Eventing vs WS-BaseNotification).

The paper's Table 2 maps each WS-Eventing operation to how
WS-BaseNotification achieves it (natively, or through the optional WSRF),
plus the two WSN-only operations.  :func:`build_table2` *executes* each
mapping against live endpoints — every cell string is only emitted after the
corresponding exchange actually succeeded (or, for "Not available", after
the operation was confirmed absent).
"""

from __future__ import annotations

from repro.comparison.tables import ComparisonTable
from repro.soap.fault import SoapFault
from repro.transport.clock import VirtualClock
from repro.transport.network import SimulatedNetwork
from repro.wse.sink import EventSink
from repro.wse.source import EventSource
from repro.wse.subscriber import WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn.consumer import NotificationConsumer
from repro.wsn.producer import NotificationProducer
from repro.wsn.subscriber import WsnSubscriber
from repro.wsn.versions import WsnVersion

COLUMNS = ["WS-Eventing", "WS-BaseNotification"]

#: the published Table 2
PAPER_TABLE2 = ComparisonTable("Table 2: Function Comparison (paper)", COLUMNS)
PAPER_TABLE2.add_row("Subscribe", "Subscribe", "Subscribe")
PAPER_TABLE2.add_row("Renew", "Renew", "Renew")
PAPER_TABLE2.add_row("Unsubscribe", "Unsubscribe", "Unsubscribe")
PAPER_TABLE2.add_row(
    "GetStatus", "GetStatus", "Not defined, can use getResourceProperties in WSRF"
)
PAPER_TABLE2.add_row(
    "SubscriptionEnd",
    "SubscriptionEnd",
    "Not defined, can use TerminationNotification in WSRF",
)
PAPER_TABLE2.add_row("Pause/resume Subscription", "Not available", "Pause/resume Subscription")
PAPER_TABLE2.add_row("GetCurrentMessage", "Not available", "GetCurrentMessage")


def build_table2() -> ComparisonTable:
    """Execute every Table 2 mapping and report how each function is achieved."""
    table = ComparisonTable("Table 2: Function Comparison (measured)", COLUMNS)

    # --- live WSE 08/2004 stack ---------------------------------------------------
    wse_net = SimulatedNetwork(VirtualClock())
    wse_version = WseVersion.V2004_08
    source = EventSource(wse_net, "http://t2-source", version=wse_version)
    sink = EventSink(wse_net, "http://t2-sink", version=wse_version)
    end_sink = EventSink(wse_net, "http://t2-end", version=wse_version)
    wse_sub = WseSubscriber(wse_net, version=wse_version)

    # --- live WSN 1.3 stack -----------------------------------------------------------
    wsn_net = SimulatedNetwork(VirtualClock())
    wsn_version = WsnVersion.V1_3
    producer = NotificationProducer(wsn_net, "http://t2-producer", version=wsn_version)
    consumer = NotificationConsumer(wsn_net, "http://t2-consumer", version=wsn_version)
    wsn_sub = WsnSubscriber(wsn_net, version=wsn_version)

    # Subscribe
    wse_handle = wse_sub.subscribe(source.epr(), notify_to=sink.epr(), end_to=end_sink.epr())
    wsn_handle = wsn_sub.subscribe(producer.epr(), consumer.epr(), topic="t2")
    table.add_row("Subscribe", "Subscribe", "Subscribe")

    # Renew
    wse_sub.renew(wse_handle, "PT2H")
    wsn_sub.renew(wsn_handle, "PT2H")
    table.add_row("Renew", "Renew", "Renew")

    # GetStatus (do this before unsubscribing)
    wse_status = "GetStatus" if wse_sub.get_status(wse_handle) else "FAILED"
    try:
        # WSN 1.3 defines no GetStatus action; the WSRF port answers instead
        wsn_status = (
            "Not defined, can use getResourceProperties in WSRF"
            if wsn_sub.get_status(wsn_handle) == "Active"
            else "FAILED"
        )
    except SoapFault as exc:
        wsn_status = f"FAILED: {exc}"
    table.add_row("GetStatus", wse_status, wsn_status)

    # Pause/Resume
    try:
        wse_pause = "Not available"  # no such actions exist in WS-Eventing
        wsn_sub.pause(wsn_handle)
        wsn_sub.resume(wsn_handle)
        wsn_pause = "Pause/resume Subscription"
    except SoapFault as exc:
        wsn_pause = f"FAILED: {exc}"
    table.add_row("Pause/resume Subscription", wse_pause, wsn_pause)

    # GetCurrentMessage
    from repro.comparison.probes import _event

    producer.publish(_event(), topic="t2")
    try:
        wsn_sub.get_current_message(producer.epr(), "t2")
        wsn_gcm = "GetCurrentMessage"
    except SoapFault as exc:
        wsn_gcm = f"FAILED: {exc}"
    table.add_row("GetCurrentMessage", "Not available", wsn_gcm)

    # Unsubscribe
    wse_sub.unsubscribe(wse_handle)
    wsn_sub.unsubscribe(wsn_handle)
    table.add_row("Unsubscribe", "Unsubscribe", "Unsubscribe")

    # SubscriptionEnd: WSE sends an explicit notice on abnormal termination;
    # WSN realizes the same through WSRF's TerminationNotification
    wse_handle2 = wse_sub.subscribe(
        source.epr(), notify_to=sink.epr(), end_to=end_sink.epr()
    )
    source.shutdown()
    wse_end = "SubscriptionEnd" if end_sink.subscription_ends else "FAILED"
    wsn_handle2 = wsn_sub.subscribe(
        producer.epr(), consumer.epr(), topic="t2", initial_termination="PT10S"
    )
    wsn_net.clock.advance(20.0)
    producer.sweep()
    wsn_end = (
        "Not defined, can use TerminationNotification in WSRF"
        if consumer.termination_notices
        else "FAILED"
    )
    table.add_row("SubscriptionEnd", wse_end, wsn_end)

    # reorder to the paper's row order for diffing
    order = [label for label, _ in PAPER_TABLE2.rows]
    table.rows.sort(key=lambda row: order.index(row[0]))
    return table
