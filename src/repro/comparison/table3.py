"""Table 3: comparison among six event-notification specifications.

Columns in the paper's order: CORBA Event Service, CORBA Notification
Service, JMS, OGSI-Notification, WS-Notification, WS-Eventing.  Historical
rows (release dates, creators) are transcription; behavioural rows are
*probed*: the cell text is only emitted after the corresponding capability
was exercised against the live implementation — a failed probe yields a
``FAILED`` cell that the diff against ``PAPER_TABLE3`` will flag.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.corba.event_service import EventChannel
from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.notification_service import FilterObject, NotificationChannel
from repro.baselines.corba.orb import Orb
from repro.baselines.jms.messages import TextMessage
from repro.baselines.jms.provider import JmsProvider
from repro.baselines.jms.session import Connection
from repro.baselines.ogsi.grid_service import NotificationSink, NotificationSource
from repro.comparison import probes
from repro.comparison.tables import ComparisonTable
from repro.qos.properties import CORBA_QOS_PROPERTIES, QosProfile
from repro.transport.clock import VirtualClock
from repro.transport.network import SimulatedNetwork
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

COLUMNS = [
    "CORBA Event Service",
    "CORBA Notification Service",
    "JMS",
    "OGSI-Notification",
    "WS-Notification",
    "WS-Eventing",
]

_WSN = WsnVersion.V1_3
_WSE = WseVersion.V2004_08


def _checked(probe: Callable[[], bool], text_on_success: str) -> str:
    """Run a probe; return the paper's cell text only if it succeeded."""
    try:
        return text_on_success if probe() else f"FAILED: probe returned False"
    except Exception as exc:  # a probe crash must surface in the table
        return f"FAILED: {exc}"


# --- delivery-mode probes -------------------------------------------------------------


def _corba_event_delivery() -> bool:
    orb = Orb()
    channel = EventChannel(orb)
    received = []
    push_proxy = channel.for_consumers().obtain_push_supplier()
    push_proxy.connect_push_consumer(orb.register(lambda op, args: received.append(args[0])))
    pull_proxy = channel.for_consumers().obtain_pull_supplier()
    channel.for_suppliers().obtain_push_consumer().push("e")
    _, ok = pull_proxy.try_pull()
    return len(received) == 1 and ok


def _corba_notif_delivery() -> bool:
    orb = Orb()
    channel = NotificationChannel(orb)
    received = []
    push = channel.new_for_consumers().obtain_structured_push_supplier()
    push.connect_structured_push_consumer(
        orb.register(lambda op, args: received.append(args[0]))
    )
    pull = channel.new_for_consumers().obtain_structured_pull_supplier()
    channel.new_for_suppliers().obtain_structured_push_consumer().push_structured_event(
        StructuredEvent(type_name="T")
    )
    _, ok = pull.try_pull_structured_event()
    return len(received) == 1 and ok


def _jms_delivery() -> bool:
    provider = JmsProvider(VirtualClock())
    connection = Connection(provider, "t3")
    connection.start()
    session = connection.create_session()
    queue = provider.queue("q")
    session.create_producer(queue).send(TextMessage(text="m"))
    pulled = session.create_consumer(queue).receive()  # pull style
    topic = provider.topic("t")
    subscriber = session.create_consumer(topic)  # push into subscriber buffer
    session.create_producer(topic).send(TextMessage(text="m2"))
    pushed = subscriber.receive()
    return pulled is not None and pushed is not None


def _ogsi_delivery() -> bool:
    network = SimulatedNetwork(VirtualClock())
    source = NotificationSource(network, "http://t3-ogsi")
    source.declare_service_data("sd", text_element(QName("urn:t3", "v"), "0"))
    sink = NotificationSink(network, "http://t3-ogsi-sink")
    source.subscribe("sd", sink.epr())
    return source.set_service_data("sd", text_element(QName("urn:t3", "v"), "1")) == 1


# --- filter-language probes ---------------------------------------------------------------


def _corba_notif_filter() -> bool:
    filter_object = FilterObject()
    filter_object.add_constraint("$severity == 'major' and $progress > 10")
    return filter_object.match_structured(
        StructuredEvent(filterable_data={"severity": "major", "progress": 20})
    )


def _jms_filter() -> bool:
    from repro.filters.selector import MessageSelector

    return MessageSelector("JMSPriority > 3 AND kind LIKE 'err%'").matches(
        {"JMSPriority": 5, "kind": "error"}
    )


def _ogsi_filter() -> bool:
    # filtering is by serviceDataName string match
    network = SimulatedNetwork(VirtualClock())
    source = NotificationSource(network, "http://t3-ogsi-f")
    source.declare_service_data("wanted", text_element(QName("urn:t3", "v"), "0"))
    source.declare_service_data("other", text_element(QName("urn:t3", "v"), "0"))
    sink = NotificationSink(network, "http://t3-ogsi-f-sink")
    source.subscribe("wanted", sink.epr())
    source.set_service_data("other", text_element(QName("urn:t3", "v"), "1"))
    source.set_service_data("wanted", text_element(QName("urn:t3", "v"), "1"))
    return len(sink.received) == 1


def _xpath_boolean_filter() -> bool:
    from repro.filters.content import MessageContentFilter
    from repro.filters.base import FilterContext
    from repro.xmlkit.parser import parse_xml

    payload = parse_xml('<e:S xmlns:e="urn:t3"><e:p>9</e:p></e:S>')
    return MessageContentFilter("/e:S[e:p > 5]", {"e": "urn:t3"}).matches(
        FilterContext(payload)
    )


# --- QoS probes --------------------------------------------------------------------------------


def _corba_qos() -> bool:
    profile = QosProfile()
    # all 13 must be understood (gettable + settable with a valid value)
    probe_values = {
        "Priority": 3,
        "MaxEventsPerConsumer": 5,
        "MaximumBatchSize": 2,
        "EventReliability": "Persistent",
    }
    for name in CORBA_QOS_PROPERTIES:
        profile.get(name)  # must be understood
    for name, value in probe_values.items():
        profile.set(name, value)
    return len(CORBA_QOS_PROPERTIES) == 13


def _jms_qos() -> bool:
    # priority ordering + persistence across a crash, probed live
    provider = JmsProvider(VirtualClock())
    connection = Connection(provider, "t3q")
    connection.start()
    session = connection.create_session()
    queue = provider.queue("q")
    producer = session.create_producer(queue)
    producer.send(TextMessage(text="lo"), priority=1)
    producer.send(TextMessage(text="hi"), priority=8)
    provider.crash_and_recover()  # both persistent by default -> survive
    consumer = session.create_consumer(queue)
    return consumer.receive().text == "hi"


# --- timeout probes -------------------------------------------------------------------------------


def _ogsi_timeout() -> bool:
    network = SimulatedNetwork(VirtualClock())
    source = NotificationSource(network, "http://t3-ogsi-t")
    source.declare_service_data("sd", text_element(QName("urn:t3", "v"), "0"))
    sink = NotificationSink(network, "http://t3-ogsi-t-sink")
    source.subscribe("sd", sink.epr(), termination_time=30.0)
    network.clock.advance(60.0)
    return source.set_service_data("sd", text_element(QName("urn:t3", "v"), "1")) == 0


def _ws_timeout(version) -> bool:
    return probes.probe_duration_expiry(version)


# --- demand probes -----------------------------------------------------------------------------------


def _corba_suspend_resume() -> bool:
    orb = Orb()
    channel = NotificationChannel(orb)
    received = []
    proxy = channel.new_for_consumers().obtain_structured_push_supplier()
    proxy.connect_structured_push_consumer(
        orb.register(lambda op, args: received.append(args[0]))
    )
    supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
    proxy.suspend_connection()
    supplier.push_structured_event(StructuredEvent(type_name="T"))
    if received:
        return False
    proxy.resume_connection()
    return len(received) == 1


def _wsn_demand() -> bool:
    from repro.wsn.broker import NotificationBroker
    from repro.wsn.consumer import NotificationConsumer
    from repro.wsn.producer import NotificationProducer
    from repro.wsn.subscriber import WsnSubscriber

    network = SimulatedNetwork(VirtualClock())
    publisher = NotificationProducer(network, "http://t3-pub")
    broker = NotificationBroker(network, "http://t3-broker")
    registration = broker.register_publisher(publisher.epr(), topic="jobs", demand=True)
    if not registration.paused_upstream:
        return False
    consumer = NotificationConsumer(network, "http://t3-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
    return not registration.paused_upstream


# --- the tables -----------------------------------------------------------------------------------------


def build_table3() -> ComparisonTable:
    table = ComparisonTable(
        "Table 3: Comparison among specifications on event notifications (measured)",
        COLUMNS,
    )
    table.add_row(
        "First Release", "3/1995", "6/1997", "1998", "6/27/2003", "1/20/2004", "1/7/2004"
    )
    table.add_row(
        "Latest Release",
        "10/2/2004",
        "10/11/2004",
        "4/12/2002",
        "6/27/2003",
        "2/2006",
        "8/30/2004",
    )
    table.add_row(
        "Creator(s)",
        "OMG",
        "OMG",
        "Sun Microsystems",
        "Global Grid Forum",
        "IBM, Sonic, TIBCO, Akamai, SAP, CA, HP, Fujitsu, Globus",
        "IBM, BEA, CA, Sun, Microsoft, TIBCO",
    )
    table.add_row(
        "Message transport",
        "RPC",
        "RPC",
        "RPC",
        "HTTP RPC",
        "Transport independent",
        "Transport independent",
    )
    table.add_row(
        "Intermediary",
        "EventChannel object",
        "EventChannel object",
        "Message Queue, Pub/Sub broker",
        "directly or through intermediary",
        "directly or through broker",
        "directly or through broker",
    )
    table.add_row(
        "Delivery Mode",
        _checked(_corba_event_delivery, "Push, pull & both"),
        _checked(_corba_notif_delivery, "Push, pull & both"),
        _checked(_jms_delivery, "Pull, Push"),
        _checked(_ogsi_delivery, "Push"),
        _checked(lambda: probes.probe_pull_delivery(_WSN), "Push, Pull"),
        _checked(
            lambda: probes.probe_pull_delivery(_WSE),
            "Push by default, Can use Pull or other modes",
        ),
    )
    table.add_row(
        "Message Structure",
        "Generic (Anys), Typed",
        "Generic (Anys), Typed, Structured, sequences of structured",
        "TextMessage, ByteMessage, MapMessage, StreamMessage, ObjectMessage",
        "SOAP with Xml based Service data Elements",
        "SOAP (with Raw XML data or wrapped messages)",
        "SOAP (with Raw XML data only). Can use wrapped mode.",
    )
    table.add_row(
        "Filter",
        "No",
        _checked(_corba_notif_filter, "Channel, Filter Object."),
        _checked(_jms_filter, "Queue/topic name, message selector on header fields"),
        _checked(_ogsi_filter, "ServiceDataName. Can add other filter services."),
        "Hierarchy Topic tree; Content Selector. Producer properties.",
        "A “Filter” element for any filter. At most 1 filter.",
    )
    table.add_row(
        "Filter language",
        "No",
        _checked(_corba_notif_filter, "Extended Trader Constraint Language"),
        _checked(_jms_filter, "a subset of the SQL92 conditional expression syntax"),
        "ServicedDataName String or other expressions.",
        _checked(
            _xpath_boolean_filter,
            "Any expression (xsd:any) that evaluates to a Boolean. e.g. XPath",
        ),
        _checked(
            _xpath_boolean_filter,
            "Default XPath. Can use any expression (xsd:any) that evaluates to a Boolean.",
        ),
    )
    table.add_row(
        "QoS criteria",
        "Not defined",
        _checked(_corba_qos, "Defined 13 QoS properties, can be extended to others"),
        _checked(_jms_qos, "Priority; persistence; durable; transaction; message order"),
        "Not defined",
        "Depends on composition with other WS* specification",
        "Depends on composition with other WS* specification",
    )
    table.add_row(
        "Subscription Timeout",
        "No",
        "No",
        "No",
        _checked(_ogsi_timeout, "Absolute Time"),
        _checked(lambda: _ws_timeout(_WSN), "Absolute Time or duration"),
        _checked(lambda: _ws_timeout(_WSE), "Absolute time or duration"),
    )
    table.add_row(
        "Demand-based",
        "No",
        _checked(_corba_suspend_resume, "Defined"),
        "No",
        "No",
        _checked(_wsn_demand, "Defined"),
        "No",
    )
    table.add_row(
        "Management operations",
        "connect_*, obtain_(typed)_push/pull_supplier/consumer",
        "connect_*, obtain_notification_pull/push_supplier/consumer, "
        "suspend/resume_connection, get/set/validate_qos, "
        "add/remove/get/getAll/removeAll_filter, obtain_subscription/offered_types",
        "createSubscriber, createDurableSubscriber, unsubscribe",
        "Subscribe, requestTerminationAfter, requestTerminationBefore, destroy",
        "Subscribe, Renew, unsubscribe, Pause/resume subscription, "
        "get/getMultiple/set/query ResourceProperties, TerminationNotification, "
        "Destroy, SetTerminationTime",
        "Subscribe, Renew, GetStatus, Unsubscribe, SubscriptionEnd",
    )
    return table


#: the published Table 3 cell texts (transcription)
PAPER_TABLE3 = ComparisonTable(
    "Table 3: Comparison among specifications on event notifications (paper)",
    COLUMNS,
)
for _label, _cells in [
    ("First Release", ["3/1995", "6/1997", "1998", "6/27/2003", "1/20/2004", "1/7/2004"]),
    (
        "Latest Release",
        ["10/2/2004", "10/11/2004", "4/12/2002", "6/27/2003", "2/2006", "8/30/2004"],
    ),
    (
        "Creator(s)",
        [
            "OMG",
            "OMG",
            "Sun Microsystems",
            "Global Grid Forum",
            "IBM, Sonic, TIBCO, Akamai, SAP, CA, HP, Fujitsu, Globus",
            "IBM, BEA, CA, Sun, Microsoft, TIBCO",
        ],
    ),
    (
        "Message transport",
        ["RPC", "RPC", "RPC", "HTTP RPC", "Transport independent", "Transport independent"],
    ),
    (
        "Intermediary",
        [
            "EventChannel object",
            "EventChannel object",
            "Message Queue, Pub/Sub broker",
            "directly or through intermediary",
            "directly or through broker",
            "directly or through broker",
        ],
    ),
    (
        "Delivery Mode",
        [
            "Push, pull & both",
            "Push, pull & both",
            "Pull, Push",
            "Push",
            "Push, Pull",
            "Push by default, Can use Pull or other modes",
        ],
    ),
    (
        "Message Structure",
        [
            "Generic (Anys), Typed",
            "Generic (Anys), Typed, Structured, sequences of structured",
            "TextMessage, ByteMessage, MapMessage, StreamMessage, ObjectMessage",
            "SOAP with Xml based Service data Elements",
            "SOAP (with Raw XML data or wrapped messages)",
            "SOAP (with Raw XML data only). Can use wrapped mode.",
        ],
    ),
    (
        "Filter",
        [
            "No",
            "Channel, Filter Object.",
            "Queue/topic name, message selector on header fields",
            "ServiceDataName. Can add other filter services.",
            "Hierarchy Topic tree; Content Selector. Producer properties.",
            "A “Filter” element for any filter. At most 1 filter.",
        ],
    ),
    (
        "Filter language",
        [
            "No",
            "Extended Trader Constraint Language",
            "a subset of the SQL92 conditional expression syntax",
            "ServicedDataName String or other expressions.",
            "Any expression (xsd:any) that evaluates to a Boolean. e.g. XPath",
            "Default XPath. Can use any expression (xsd:any) that evaluates to a Boolean.",
        ],
    ),
    (
        "QoS criteria",
        [
            "Not defined",
            "Defined 13 QoS properties, can be extended to others",
            "Priority; persistence; durable; transaction; message order",
            "Not defined",
            "Depends on composition with other WS* specification",
            "Depends on composition with other WS* specification",
        ],
    ),
    (
        "Subscription Timeout",
        [
            "No",
            "No",
            "No",
            "Absolute Time",
            "Absolute Time or duration",
            "Absolute time or duration",
        ],
    ),
    ("Demand-based", ["No", "Defined", "No", "No", "Defined", "No"]),
    (
        "Management operations",
        [
            "connect_*, obtain_(typed)_push/pull_supplier/consumer",
            "connect_*, obtain_notification_pull/push_supplier/consumer, "
            "suspend/resume_connection, get/set/validate_qos, "
            "add/remove/get/getAll/removeAll_filter, obtain_subscription/offered_types",
            "createSubscriber, createDurableSubscriber, unsubscribe",
            "Subscribe, requestTerminationAfter, requestTerminationBefore, destroy",
            "Subscribe, Renew, unsubscribe, Pause/resume subscription, "
            "get/getMultiple/set/query ResourceProperties, TerminationNotification, "
            "Destroy, SetTerminationTime",
            "Subscribe, Renew, GetStatus, Unsubscribe, SubscriptionEnd",
        ],
    ),
]:
    PAPER_TABLE3.add_row(_label, *_cells)
