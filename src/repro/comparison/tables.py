"""A small comparison-table model with rendering and diffing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Cell = Union[bool, str]


def render_cell(cell: Cell) -> str:
    if cell is True:
        return "Yes"
    if cell is False:
        return "No"
    return str(cell)


@dataclass
class ComparisonTable:
    """Rows of labelled cells under named columns."""

    title: str
    columns: list[str]
    rows: list[tuple[str, list[Cell]]] = field(default_factory=list)

    def add_row(self, label: str, *cells: Cell) -> "ComparisonTable":
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append((label, list(cells)))
        return self

    def cell(self, row_label: str, column: str) -> Cell:
        column_index = self.columns.index(column)
        for label, cells in self.rows:
            if label == row_label:
                return cells[column_index]
        raise KeyError(row_label)

    def render(self, *, label_width: int = 46, cell_width: int = 22) -> str:
        lines = [self.title, "=" * len(self.title)]
        header = " " * label_width + "".join(
            column.ljust(cell_width)[:cell_width] for column in self.columns
        )
        lines.append(header)
        lines.append("-" * (label_width + cell_width * len(self.columns)))
        for label, cells in self.rows:
            line = label.ljust(label_width)[:label_width] + "".join(
                render_cell(cell).ljust(cell_width)[:cell_width] for cell in cells
            )
            lines.append(line)
        return "\n".join(lines)

    def diff(self, other: "ComparisonTable") -> "TableDiff":
        """Cell-by-cell comparison against an expected table (same shape)."""
        mismatches: list[str] = []
        if self.columns != other.columns:
            mismatches.append(f"columns differ: {self.columns} vs {other.columns}")
            return TableDiff(mismatches, 0)
        expected_rows = {label: cells for label, cells in other.rows}
        matched = 0
        for label, cells in self.rows:
            expected = expected_rows.get(label)
            if expected is None:
                mismatches.append(f"row {label!r} missing from expected table")
                continue
            for column, got, want in zip(self.columns, cells, expected):
                if got == want:
                    matched += 1
                else:
                    mismatches.append(
                        f"{label!r} / {column}: measured {render_cell(got)!r}, "
                        f"paper says {render_cell(want)!r}"
                    )
        return TableDiff(mismatches, matched)


@dataclass
class TableDiff:
    mismatches: list[str]
    matched_cells: int

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.clean:
            return f"all {self.matched_cells} cells match the paper"
        return (
            f"{self.matched_cells} cells match; {len(self.mismatches)} mismatches:\n  "
            + "\n  ".join(self.mismatches)
        )
