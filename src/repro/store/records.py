"""Typed log records — the durable vocabulary of the broker.

Every record is a frozen dataclass with a ``kind`` tag and a flat,
JSON-serializable ``to_dict`` form; :func:`record_from_dict` is the
inverse.  Timestamps are virtual-clock seconds, so a log replayed under
the same clock is bit-for-bit deterministic.

The records fall into three groups:

* **subscription lifecycle** — :class:`SubscribeRecorded` (with the
  original wire bytes *and* the granted subscription id, so replay can
  re-post the request while pinning the identifier and the manager
  EPR), :class:`RenewRecorded`, :class:`RemoveRecorded`,
  :class:`PauseRecorded`, :class:`PullDrainRecorded`;
* **publishes** — :class:`PublishRecorded`, appended *before* fan-out
  (the transactional outbox);
* **delivery outcomes** — :class:`OutcomeRecorded`, keyed by
  ``(message_id, sink)``: the idempotency key that makes crash-replay
  exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Type

#: outcome states a delivery obligation can settle into.  ``delivered``,
#: ``dead`` and ``drained`` are terminal; ``parked`` is an open obligation
#: waiting in a message box; ``replayed`` reopens a ``dead`` key (DLQ
#: replay); ``routed`` marks a publish forwarded to its owning mesh shard
#: (no local fan-out to reproduce).
OUTCOMES = frozenset(
    {"delivered", "parked", "dead", "drained", "replayed", "routed"}
)


@dataclass(frozen=True)
class SubscribeRecorded:
    """A granted Subscribe: wire bytes plus the identifier it minted."""

    kind: ClassVar[str] = "subscribe"
    at: float
    family: str  # "wse" | "wsn"
    tag: str  # version tag, e.g. "v2004_08" / "v1_3"
    sub_id: str
    action: str  # SOAPAction of the original request
    wire: str  # the original Subscribe envelope, serialized
    expires: Optional[float]  # granted *absolute* expiry (virtual seconds)

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class RenewRecorded:
    """A granted Renew / SetTerminationTime: new absolute expiry."""

    kind: ClassVar[str] = "renew"
    at: float
    family: str
    tag: str
    sub_id: str
    expires: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class RemoveRecorded:
    """A subscription leaving the store: unsubscribe, destroy or expiry."""

    kind: ClassVar[str] = "remove"
    at: float
    family: str
    tag: str
    sub_id: str
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class PauseRecorded:
    """A WSN subscription paused (``paused=True``) or resumed."""

    kind: ClassVar[str] = "pause"
    at: float
    tag: str
    sub_id: str
    paused: bool

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class PullDrainRecorded:
    """A pull-mode WSE subscription drained ``count`` queued messages."""

    kind: ClassVar[str] = "pull_drain"
    at: float
    tag: str
    sub_id: str
    count: int

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class PublishRecorded:
    """The transactional outbox entry: appended before any fan-out."""

    kind: ClassVar[str] = "publish"
    at: float
    message_id: str
    topic: Optional[str]
    payload: str  # serialized event XML
    lineage: Optional[str]  # encoded LineageContext, if instrumented

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


@dataclass(frozen=True)
class OutcomeRecorded:
    """A delivery obligation settling; key = ``(message_id, sink)``."""

    kind: ClassVar[str] = "outcome"
    at: float
    message_id: str
    sink: str
    outcome: str  # one of OUTCOMES
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return _to_dict(self)


_RECORD_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (
        SubscribeRecorded,
        RenewRecorded,
        RemoveRecorded,
        PauseRecorded,
        PullDrainRecorded,
        PublishRecorded,
        OutcomeRecorded,
    )
}


def _to_dict(record: Any) -> Dict[str, Any]:
    # every record is a flat dataclass of scalars; a __dict__ copy is ~5x
    # cheaper than dataclasses.asdict's recursive walk, and outcomes are
    # appended once per (message, sink) — this is the outbox's hot path
    doc = dict(record.__dict__)
    doc["kind"] = record.kind
    return doc


def record_from_dict(doc: Dict[str, Any]) -> Any:
    """Rebuild a typed record from its serialized form."""
    kind = doc.get("kind")
    cls = _RECORD_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown log record kind {kind!r}")
    names = {field.name for field in fields(cls)}
    return cls(**{key: value for key, value in doc.items() if key in names})
