"""``python -m repro store-demo``: crash a broker mid-workload, replay the log.

Self-contained: builds an instrumented, store-backed mediation broker with a
mixed consumer population (a reachable WSE sink, a WSN consumer, a consumer
behind an inbound-blocking firewall whose copies park in a message box, and
a dark consumer whose copies are mid-retry), kills the broker partway
through the publish stream, rebuilds it from the event log alone, and
finishes the stream.  The run asserts — and narrates — the store's
contract:

- subscription identifiers (and so the manager EPRs clients hold) survive;
- settled deliveries replay as suppressed obligations, never re-sent;
- parked message-box content is re-parked and still drainable;
- obligations stranded unsettled by the crash are explicitly failed
  (``reason="broker_crash"``), so the conservation audit balances.

Exit 1 if any invariant — or the final audit — fails.
"""

from __future__ import annotations

from repro.delivery import DeliveryPolicy, drain_message_box_wse
from repro.messenger.broker import WsMessenger
from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.store.core import BrokerStore
from repro.store.log import MemoryEventLog
from repro.store.recovery import recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse.sink import EventSink
from repro.wse.subscriber import WseSubscriber
from repro.wsn.consumer import NotificationConsumer
from repro.wsn.subscriber import WsnSubscriber
from repro.xmlkit import parse_xml

ZONE = "store-demo-zone"


def _event(n: int):
    return parse_xml(f'<d:Tick xmlns:d="urn:store-demo"><d:n>{n}</d:n></d:Tick>')


def store_demo_main(argv: "list[str] | None" = None) -> int:
    from repro.wsa.headers import reset_message_counter

    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    network.add_zone(ZONE, blocks_inbound=True)
    store = BrokerStore(MemoryEventLog())
    policy = DeliveryPolicy(max_attempts=3, base_backoff=5.0, jitter=0.0)
    broker = WsMessenger(
        network, "http://store-demo", store=store, delivery=policy
    )

    print("store-demo: event-sourced broker at http://store-demo")
    sink = EventSink(network, "http://demo-sink")
    consumer = NotificationConsumer(network, "http://demo-consumer")
    inside = EventSink(network, "http://demo-inside", zone=ZONE)
    dark = NotificationConsumer(network, "http://demo-dark")
    wse = WseSubscriber(network)
    wsn = WsnSubscriber(network)
    sink_handle = wse.subscribe(broker.epr(), notify_to=sink.epr())
    consumer_handle = wsn.subscribe(broker.epr(), consumer.epr(), topic="demo")
    WseSubscriber(network, zone=ZONE).subscribe(
        broker.epr(), notify_to=inside.epr()
    )
    wsn.subscribe(broker.epr(), dark.epr(), topic="demo")
    dark.close()
    print(
        f"  subscriptions: {sink_handle.sub_id} (push),"
        f" {consumer_handle.sub_id} (wsn), one firewalled, one dark"
    )

    for n in range(1, 4):
        broker.publish(_event(n), topic="demo")
    print(
        f"\npublished 3; delivered: sink={len(sink.received)}"
        f" consumer={len(consumer.received)}; parked for the firewalled"
        f" consumer: {len(broker.message_boxes.get('http://demo-inside'))};"
        f" dark copies mid-retry"
    )

    log = store.log
    print(f"\n--- crash: broker gone; the log ({len(log)} records) survives ---")
    broker.close()

    broker = recover_broker(network, "http://store-demo", log, delivery=policy)
    stats = broker.store.stats
    print(
        f"recovered: {stats.recovered_subscriptions} subscriptions,"
        f" {stats.suppressed} settled deliveries suppressed,"
        f" {stats.reparked} obligations re-parked,"
        f" {stats.crash_failures} stranded obligations failed closed"
    )
    failures = 0
    if broker.subscription_count() != 4:
        print(f"FAIL: expected 4 subscriptions, have {broker.subscription_count()}")
        failures += 1
    if len(sink.received) != 3:
        print(f"FAIL: sink got {len(sink.received)} deliveries, expected 3")
        failures += 1

    # the manager EPR minted before the crash still works
    wse.renew(sink_handle, "PT2H")
    print(f"  old manager EPR renews {sink_handle.sub_id}: ok")

    for n in range(4, 6):
        broker.publish(_event(n), topic="demo")
    broker.run_deliveries_until_idle()
    box = broker.message_boxes.get("http://demo-inside")
    drained = drain_message_box_wse(network, box.epr(), zone=ZONE)
    print(
        f"\npublished 2 more; sink={len(sink.received)}"
        f" consumer={len(consumer.received)};"
        f" firewalled consumer drained {len(drained)} from its box"
    )
    if [p.full_text() for p in drained] != ["1", "2", "3", "4", "5"]:
        print("FAIL: drained sequence wrong or duplicated")
        failures += 1
    if len(sink.received) != 5 or len(consumer.received) != 5:
        print("FAIL: post-recovery deliveries wrong")
        failures += 1

    result = audit(instrumentation, scenario="store-demo")
    print(f"\n{result.render()}")
    return 1 if failures or not result.passed else 0


if __name__ == "__main__":
    import sys

    sys.exit(store_demo_main())
