"""Event-log backends: in-memory (default) and deterministic file-backed.

Both store the serialized (dict) form of the typed records in
:mod:`repro.store.records` and hand typed records back out.  The file
backend writes one canonical JSON object per line (sorted keys, no
whitespace) and flushes after every append, so a log file is stable
across runs under the virtual clock and a crashed process can be
rebuilt from whatever made it to disk.

``segment(start)`` returns serialized records — the unit a mesh shard
hands to its successor instead of draining in-flight work.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.store.records import record_from_dict


class MemoryEventLog:
    """The default backend: an append-only list of serialized records."""

    def __init__(self, entries: Optional[Iterable[Dict[str, Any]]] = None):
        self._entries: List[Dict[str, Any]] = [dict(e) for e in entries or ()]

    def append(self, record: Any) -> int:
        """Append one typed record; returns its sequence number."""
        self._append_entry(record.to_dict())
        return len(self._entries) - 1

    def _append_entry(self, entry: Dict[str, Any]) -> None:
        self._entries.append(entry)

    def records(self) -> List[Any]:
        """A typed snapshot of the whole log (appends during iteration
        over the result are safe)."""
        return [record_from_dict(entry) for entry in self._entries]

    def segment(self, start: int = 0) -> List[Dict[str, Any]]:
        """Serialized records from ``start`` on — the handoff payload."""
        return [dict(entry) for entry in self._entries[start:]]

    def extend(self, entries: Iterable[Dict[str, Any]]) -> None:
        """Splice a serialized segment (e.g. a shard handoff) onto the log."""
        for entry in entries:
            self._append_entry(dict(entry))

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._entries)


class FileEventLog(MemoryEventLog):
    """JSON-lines log file; loads existing records on open, appends with
    a flush per record so every acknowledged append survives a crash."""

    def __init__(self, path):
        self.path = Path(path)
        entries: List[Dict[str, Any]] = []
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    entries.append(json.loads(line))
        super().__init__(entries)
        self._handle = None

    def _append_entry(self, entry: Dict[str, Any]) -> None:
        super()._append_entry(entry)
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
