"""Crash recovery: rebuild a broker mid-workload from its event log.

:func:`recover_broker` constructs a fresh :class:`WsMessenger` bound to
the same log and replays every record **in append order** — the
interleaving of lifecycle and publish records is exactly what makes the
rebuilt projections (subscription stores, topic indexes, pull queues,
message boxes, DLQ) converge on the pre-crash state:

* ``subscribe`` records re-post the original wire bytes with the
  subscription identifier pinned (``force_next_subscription_id``), so the
  manager EPRs clients hold — which embed the id — stay valid; the
  *granted absolute expiry* is then forced back, so a replay at a later
  virtual time never silently extends a lease (and an already-expired
  subscription replays as expired);
* ``publish`` records re-run fan-out with ``current_message_id`` pinned,
  and the delivery manager consults the store's settlement index per
  task: settled obligations are suppressed, pre-crash parked items are
  re-parked (same box addresses, since boxes are minted in first-park
  order), dead tasks are restored to the DLQ with a working send thunk,
  and only genuinely in-flight obligations are re-attempted;
* before each publish replays, its pre-crash ledger books are closed:
  any obligation the crash left dangling (opened, not closed, not
  parked) is marked ``failed(reason=broker_crash)`` so the mesh-wide
  conservation audit balances — the re-fan-out then opens a fresh,
  properly-closed obligation.

Known limits (documented in DESIGN.md): itemless control traffic
(SubscriptionEnd / TerminationNotification) carries no idempotency key
and is not replayed; a WSN pause/resume backlog delivered before the
crash is not re-delivered; manual wrapped-mode ``flush()`` calls between
publishes are not log events, so their batch boundaries are not
reproduced.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.propagation import LineageContext
from repro.store.core import BrokerStore
from repro.store.records import (
    PauseRecorded,
    PublishRecorded,
    PullDrainRecorded,
    RemoveRecorded,
    RenewRecorded,
    SubscribeRecorded,
)
from repro.transport.http import build_request, parse_response
from repro.xmlkit.parser import parse_xml


def recover_broker(network, address, log, **broker_kwargs):
    """Build a broker at ``address`` whose state is the replay of ``log``.

    Extra keyword arguments go to :class:`~repro.messenger.WsMessenger`
    verbatim (versions, delivery policy, topic namespace, ...) and must
    match the crashed broker's configuration.
    """
    from repro.messenger.broker import WsMessenger

    store = BrokerStore(log)
    broker = WsMessenger(network, address, store=store, **broker_kwargs)
    replay_log(broker)
    return broker


def replay_log(broker) -> None:
    """Replay the attached store's log into a freshly-built broker."""
    store = broker.store
    assert store is not None, "replay_log needs a store-backed broker"
    store.replaying = True
    saved_router, broker.publish_router = broker.publish_router, None
    try:
        for record in store.log.records():
            if isinstance(record, SubscribeRecorded):
                _replay_subscribe(broker, store, record)
            elif isinstance(record, RenewRecorded):
                _replay_renew(broker, record)
            elif isinstance(record, RemoveRecorded):
                _replay_remove(broker, record)
            elif isinstance(record, PauseRecorded):
                _replay_pause(broker, record)
            elif isinstance(record, PullDrainRecorded):
                _replay_pull_drain(broker, record)
            elif isinstance(record, PublishRecorded):
                _replay_publish(broker, store, record)
    finally:
        broker.publish_router = saved_router
        store.replaying = False
        store.current_message_id = None
        # replayed publishes may have compiled Notify byte-templates against
        # mid-replay subscription state; drop them so post-recovery traffic
        # recompiles against the converged stores (cheap: one compile each)
        for producer in broker.wsn_producers.values():
            producer.templates.clear()


def _wse_source(broker, tag: str):
    for version, source in broker.wse_sources.items():
        if version.name.lower() == tag:
            return source
    return None


def _wsn_producer(broker, tag: str):
    for version, producer in broker.wsn_producers.items():
        if version.name.lower() == tag:
            return producer
    return None


def _force_expiry(broker, family: str, tag: str, sub_id: str, expires) -> None:
    """Pin the *granted* absolute expiry from the record, overriding
    whatever a duration-based request re-granted relative to replay time."""
    if family == "wse":
        source = _wse_source(broker, tag)
        subscription = (
            source.store._subscriptions.get(sub_id) if source is not None else None
        )
        if subscription is not None:
            source.store.update_expiry(subscription, expires)
    else:
        producer = _wsn_producer(broker, tag)
        subscription = (
            producer._subscriptions.get(sub_id) if producer is not None else None
        )
        if subscription is not None:
            subscription.resource.termination_time = expires
            producer.registry.note_termination(subscription.resource)


def _replay_subscribe(broker, store, record: SubscribeRecorded) -> None:
    implementation = (
        _wse_source(broker, record.tag)
        if record.family == "wse"
        else _wsn_producer(broker, record.tag)
    )
    if implementation is None:
        return  # version not enabled on the recovering broker
    implementation.force_next_subscription_id(record.sub_id)
    wire = build_request(
        broker.address, record.wire.encode("utf-8"), soap_action=record.action
    )
    response = parse_response(broker.network.send_request(broker.address, wire))
    if response.ok:
        _force_expiry(broker, record.family, record.tag, record.sub_id, record.expires)
        store.stats.recovered_subscriptions += 1
    else:
        # the logged Subscribe no longer takes (e.g. a consumer EPR whose
        # zone vanished): count the dropped recovery instead of moving on
        # as if the subscription had been restored
        broker.network.instrumentation.count(
            "obs.swallowed_errors_total",
            site="store.recovery.replay_subscribe",
            status=str(response.status),
        )


def _replay_renew(broker, record: RenewRecorded) -> None:
    _force_expiry(broker, record.family, record.tag, record.sub_id, record.expires)


def _replay_remove(broker, record: RemoveRecorded) -> None:
    if record.family == "wse":
        source = _wse_source(broker, record.tag)
        if source is not None:
            source.store.remove(record.sub_id)
    else:
        producer = _wsn_producer(broker, record.tag)
        if producer is not None:
            # silent drop: no duplicate TerminationNotification on replay
            producer.forget_subscription(record.sub_id)


def _replay_pause(broker, record: PauseRecorded) -> None:
    producer = _wsn_producer(broker, record.tag)
    subscription = (
        producer._subscriptions.get(record.sub_id) if producer is not None else None
    )
    if subscription is None:
        return
    subscription.paused = record.paused
    if not record.paused:
        # the pre-crash resume already delivered this backlog (see module
        # docstring); replayed publishes after this point re-queue correctly
        subscription.paused_queue.clear()


def _replay_pull_drain(broker, record: PullDrainRecorded) -> None:
    source = _wse_source(broker, record.tag)
    subscription = (
        source.store._subscriptions.get(record.sub_id) if source is not None else None
    )
    if subscription is not None:
        del subscription.queue[: record.count]


def _close_books(broker, store, record: PublishRecorded) -> None:
    """Fail the obligations the crash left dangling for this publish, so
    the re-fan-out's fresh books balance under the conservation audit."""
    instr = broker.network.instrumentation
    if not instr.enabled or record.lineage is None:
        return
    context = LineageContext.decode(record.lineage)
    if context is None:
        return
    opened: dict[str, int] = {}
    closed: dict[str, int] = {}
    parked: dict[str, int] = {}
    pulled: dict[str, int] = {}
    for event in instr.ledger.events_of(context.lineage_id):
        sink = event.detail.get("sink")
        if sink is None:
            continue
        if event.state in ("enqueued", "replayed"):
            opened[sink] = opened.get(sink, 0) + 1
        elif event.state in ("delivered", "dead_lettered", "failed"):
            closed[sink] = closed.get(sink, 0) + 1
            if event.state == "delivered" and event.detail.get("via") == "pull":
                pulled[sink] = pulled.get(sink, 0) + 1
        elif event.state == "pending_pull":
            parked[sink] = parked.get(sink, 0) + 1
    for sink, count in sorted(opened.items()):
        dangling = count - closed.get(sink, 0) - (
            parked.get(sink, 0) - pulled.get(sink, 0)
        )
        for _ in range(dangling):
            instr.lineage_event(
                context.lineage_id, "failed", sink=sink, reason="broker_crash"
            )
            store.stats.crash_failures += 1


def _replay_publish(broker, store, record: PublishRecorded) -> None:
    if record.message_id in store._routed:
        return  # forwarded to its owning shard pre-crash: nothing local
    _close_books(broker, store, record)
    payload = parse_xml(record.payload).freeze()
    store.current_message_id = record.message_id
    store.stats.replayed_publishes += 1
    instr = broker.network.instrumentation
    context = (
        LineageContext.decode(record.lineage) if record.lineage is not None else None
    )
    try:
        if instr.enabled and context is not None:
            # resume the original lineage so replayed obligations ledger
            # under the pre-crash id — the audit sees one continuous story
            with instr.span(
                "store.replay_publish", remote=context, topic=record.topic or ""
            ):
                broker.publish(payload, topic=record.topic)
        else:
            broker.publish(payload, topic=record.topic)
    finally:
        store.current_message_id = None
