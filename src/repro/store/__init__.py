"""repro.store — event-sourced durable broker core.

A single append-only event log is the broker's source of truth: typed
records capture publishes, subscription lifecycle (subscribe / renew /
unsubscribe / expire), and delivery outcomes.  The live subscription
stores, topic indexes, message boxes, and the delivery manager's
obligation ledger become replayable *projections* over that log.

Publishing is transactional-outbox style: the publish record is appended
*before* fan-out, and every delivery item is stamped with the publish's
message id so the (message id, sink) pair is an idempotency key — a
crashed broker replayed from its log never double-delivers an outcome
the log already settled.

:func:`recover_broker` rebuilds a broker mid-workload from a log,
preserving subscription identifiers (and therefore subscription-manager
EPRs), parked obligations, and dead-letter entries.
"""

from repro.store.core import BrokerStore, StoreStats
from repro.store.log import FileEventLog, MemoryEventLog
from repro.store.records import (
    OutcomeRecorded,
    PauseRecorded,
    PublishRecorded,
    PullDrainRecorded,
    RemoveRecorded,
    RenewRecorded,
    SubscribeRecorded,
    record_from_dict,
)
from repro.store.recovery import recover_broker

__all__ = [
    "BrokerStore",
    "StoreStats",
    "MemoryEventLog",
    "FileEventLog",
    "SubscribeRecorded",
    "RenewRecorded",
    "RemoveRecorded",
    "PauseRecorded",
    "PublishRecorded",
    "OutcomeRecorded",
    "PullDrainRecorded",
    "record_from_dict",
    "recover_broker",
]
