"""The broker store: one append-only log as the broker's source of truth.

:class:`BrokerStore` sits between a :class:`~repro.messenger.WsMessenger`
and an event log (:mod:`repro.store.log`).  Attached to a live broker it
*records*: the front door appends a :class:`SubscribeRecorded` per granted
subscription, lifecycle listeners append renew/remove/pause/pull records,
``publish`` appends its outbox entry before fan-out, and the delivery
manager appends an :class:`OutcomeRecorded` per settled obligation.

The same object *projects*: rebuilt over an existing log (see
:mod:`repro.store.recovery`), its ``(message_id, sink)`` settlement index
tells the delivery manager which replayed obligations are already
delivered (suppress), parked (re-park without re-attempting), or dead
(restore to the DLQ) — which is what makes crash-replay exactly-once.

Crash model: a record append and the wire exchange it describes are
atomic in the simulation; crash points fall *between* operations, never
inside one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.store.log import MemoryEventLog
from repro.store.records import (
    OutcomeRecorded,
    PauseRecorded,
    PublishRecorded,
    PullDrainRecorded,
    RemoveRecorded,
    RenewRecorded,
    SubscribeRecorded,
)
from repro.xmlkit.writer import serialize_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delivery.task import DeliveryItem, DeliveryTask
    from repro.messenger.broker import WsMessenger

#: outcomes after which a (message_id, sink) obligation needs no further work
TERMINAL_OUTCOMES = frozenset({"delivered", "dead", "drained"})


@dataclass
class StoreStats:
    """Append/replay accounting (virtual-clock deterministic)."""

    appends: int = 0
    publishes: int = 0
    outcomes: int = 0
    #: replayed tasks skipped because the log had already settled them
    suppressed: int = 0
    #: replayed items re-parked into message boxes without a wire attempt
    reparked: int = 0
    #: replayed tasks restored straight to the dead-letter queue
    redead: int = 0
    replayed_publishes: int = 0
    recovered_subscriptions: int = 0
    #: pre-crash in-flight obligations closed as failed during recovery
    crash_failures: int = 0

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)


class BrokerStore:
    """Event-sourced state for one broker over one append-only log."""

    def __init__(self, log=None) -> None:
        self.log = log if log is not None else MemoryEventLog()
        self.stats = StoreStats()
        #: True while recovery replays the log: lifecycle and publish
        #: recording is muted (the log already has those records), while
        #: genuinely new delivery outcomes still append
        self.replaying = False
        self.broker: Optional["WsMessenger"] = None
        self.clock = None
        self._message_serial = 0
        #: settled obligations: (message_id, sink) -> (outcome, reason)
        self._settled: Dict[Tuple[str, str], Tuple[str, str]] = {}
        #: open parked obligations awaiting a pull drain
        self._parked: Set[Tuple[str, str]] = set()
        #: publishes forwarded to their owning mesh shard (no local fan-out)
        self._routed: Set[str] = set()
        #: message id stamped onto delivery items minted by the in-flight
        #: publish (set around fan-out, both live and during replay)
        self.current_message_id: Optional[str] = None
        for record in self.log.records():
            self._index(record)

    # --- settlement index --------------------------------------------------

    def _index(self, record: Any) -> None:
        if isinstance(record, PublishRecorded):
            tail = record.message_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                self._message_serial = max(self._message_serial, int(tail))
        elif isinstance(record, OutcomeRecorded):
            key = (record.message_id, record.sink)
            if record.outcome in TERMINAL_OUTCOMES:
                self._settled[key] = (record.outcome, record.reason)
                self._parked.discard(key)
            elif record.outcome == "parked":
                if key not in self._settled:
                    self._parked.add(key)
            elif record.outcome == "replayed":
                # DLQ replay reopens a dead obligation
                if self._settled.get(key, ("", ""))[0] == "dead":
                    del self._settled[key]
            elif record.outcome == "routed":
                self._routed.add(record.message_id)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _append(self, record: Any) -> None:
        self.log.append(record)
        self.stats.appends += 1
        self._index(record)
        broker = self.broker
        if broker is not None:
            instr = broker.network.instrumentation
            if instr.enabled:
                instr.count("store.log_appends", kind=type(record).__name__)
                flight = instr.flight
                if flight.enabled:
                    flight.record(
                        "log_append",
                        entry=type(record).__name__,
                        length=len(self.log),
                    )

    # --- wiring ------------------------------------------------------------

    def attach(self, broker: "WsMessenger") -> None:
        """Wire the store into a broker's sources, producers, delivery
        manager and message boxes.  Called from the broker constructor."""
        self.broker = broker
        self.clock = broker.network.clock
        for version, source in broker.wse_sources.items():
            tag = version.name.lower()
            source.store.on_removed.append(self._wse_removed_hook(tag))
            source.lifecycle_listeners.append(self._wse_lifecycle_hook(tag))
        for version, producer in broker.wsn_producers.items():
            tag = version.name.lower()
            producer.subscription_listeners.append(self._wsn_hook(tag))
        if broker.delivery_manager is not None:
            broker.delivery_manager.store = self
        if broker.message_boxes is not None:
            broker.message_boxes.on_drained = self._box_drained

    def _wse_removed_hook(self, tag: str):
        def on_removed(subscription) -> None:
            if self.replaying:
                return
            self._append(
                RemoveRecorded(
                    at=self._now(), family="wse", tag=tag, sub_id=subscription.id
                )
            )

        return on_removed

    def _wse_lifecycle_hook(self, tag: str):
        def on_event(event: str, subscription, detail: dict) -> None:
            if self.replaying:
                return
            if event == "renewed":
                self._append(
                    RenewRecorded(
                        at=self._now(),
                        family="wse",
                        tag=tag,
                        sub_id=subscription.id,
                        expires=subscription.expires,
                    )
                )
            elif event == "pulled" and detail.get("count"):
                self._append(
                    PullDrainRecorded(
                        at=self._now(),
                        tag=tag,
                        sub_id=subscription.id,
                        count=int(detail["count"]),
                    )
                )

        return on_event

    def _wsn_hook(self, tag: str):
        def on_event(event: str, subscription) -> None:
            if self.replaying:
                return
            if event == "renewed":
                self._append(
                    RenewRecorded(
                        at=self._now(),
                        family="wsn",
                        tag=tag,
                        sub_id=subscription.key,
                        expires=subscription.resource.termination_time,
                    )
                )
            elif event == "destroyed":
                self._append(
                    RemoveRecorded(
                        at=self._now(), family="wsn", tag=tag, sub_id=subscription.key
                    )
                )
            elif event in ("paused", "resumed"):
                self._append(
                    PauseRecorded(
                        at=self._now(),
                        tag=tag,
                        sub_id=subscription.key,
                        paused=event == "paused",
                    )
                )

        return on_event

    # --- recording: subscription lifecycle ---------------------------------

    def record_subscribe(self, envelope, action: str, granted) -> None:
        """Front-door hook after a granted Subscribe.  ``granted`` is the
        ``(family, tag, sub_id, expires)`` tuple the broker captured from
        the implementation's creation hook."""
        if self.replaying or granted is None:
            return
        from repro.soap.codec import serialize_envelope

        family, tag, sub_id, expires = granted
        self._append(
            SubscribeRecorded(
                at=self._now(),
                family=family,
                tag=tag,
                sub_id=sub_id,
                action=action,
                wire=serialize_envelope(envelope),
                expires=expires,
            )
        )

    # --- recording: the transactional outbox -------------------------------

    def record_publish(self, payload, topic: Optional[str], lineage) -> Optional[str]:
        """Append the outbox entry *before* fan-out and arm item stamping.
        Returns the minted message id (None while replaying: the replay
        loop pins ``current_message_id`` itself)."""
        if self.replaying:
            return None
        self._message_serial += 1
        message_id = f"msg-{self._message_serial}"
        self._append(
            PublishRecorded(
                at=self._now(),
                message_id=message_id,
                topic=topic,
                payload=serialize_xml(payload),
                lineage=lineage.encode() if lineage is not None else None,
            )
        )
        self.stats.publishes += 1
        self.current_message_id = message_id
        return message_id

    def record_routed(self) -> None:
        """The mesh router forwarded the in-flight publish to its owning
        shard: no local fan-out exists to reproduce on replay."""
        if self.replaying or self.current_message_id is None:
            return
        self._append(
            OutcomeRecorded(
                at=self._now(),
                message_id=self.current_message_id,
                sink="",
                outcome="routed",
            )
        )

    def end_publish(self) -> None:
        if not self.replaying:
            self.current_message_id = None

    def stamp_items(self, items: List["DeliveryItem"]) -> List["DeliveryItem"]:
        """Stamp the in-flight publish's message id onto delivery items —
        the idempotency key is born here."""
        if self.current_message_id is None:
            return items
        return [
            dataclasses.replace(item, message_id=self.current_message_id)
            if item.message_id is None
            else item
            for item in items
        ]

    # --- recording: delivery outcomes --------------------------------------

    def _record_outcome(
        self, message_id: str, sink: str, outcome: str, reason: str = ""
    ) -> None:
        key = (message_id, sink)
        settled = self._settled.get(key, ("", ""))[0]
        if settled in TERMINAL_OUTCOMES and outcome != "replayed":
            return  # already terminal: appending again would be noise
        if outcome == "parked" and key in self._parked:
            return
        self._append(
            OutcomeRecorded(
                at=self._now(),
                message_id=message_id,
                sink=sink,
                outcome=outcome,
                reason=reason,
            )
        )
        self.stats.outcomes += 1

    def _keyed_items(self, task: "DeliveryTask"):
        for item in task.items:
            if item.message_id is not None:
                yield item

    def task_delivered(self, task: "DeliveryTask") -> None:
        for item in self._keyed_items(task):
            self._record_outcome(item.message_id, task.sink, "delivered")

    def task_parked(self, task: "DeliveryTask") -> None:
        self.items_parked(task, list(self._keyed_items(task)))

    def items_parked(self, task: "DeliveryTask", items: List["DeliveryItem"]) -> None:
        """Park outcomes for a subset of a task's items (the rest may have
        overflowed the box and been shed instead)."""
        for item in items:
            if item.message_id is not None:
                self._record_outcome(item.message_id, task.sink, "parked")

    def items_shed(
        self, task: "DeliveryTask", items: List["DeliveryItem"], reason: str
    ) -> None:
        """Terminal outcomes for QoS-shed items.

        Recorded as ``dead`` with a ``shed:`` reason so crash replay treats
        them as settled (a shed message must not resurrect as a fresh wire
        attempt) while the reason keeps the distinction auditable."""
        for item in items:
            if item.message_id is not None:
                self._record_outcome(
                    item.message_id, task.sink, "dead", f"shed:{reason}"
                )

    def task_dead(self, task: "DeliveryTask", reason: str) -> None:
        for item in self._keyed_items(task):
            self._record_outcome(item.message_id, task.sink, "dead", reason)

    def task_replayed(self, task: "DeliveryTask") -> None:
        for item in self._keyed_items(task):
            self._record_outcome(item.message_id, task.sink, "replayed")

    def _box_drained(self, box, batch: List["DeliveryItem"]) -> None:
        for item in batch:
            if item.message_id is not None:
                self._record_outcome(item.message_id, box.sink, "drained")

    # --- replay routing (consulted by the delivery manager) ------------------

    def resolve_replay(self, task: "DeliveryTask") -> Optional[Tuple[str, str]]:
        """Route one replayed submission by its idempotency keys.

        Returns ``("suppress", "")`` when the log already settled every
        item, ``("park", "")`` when the open items were parked pre-crash,
        ``("dead", reason)`` when the task died pre-crash, or None for a
        live re-attempt (the obligation was genuinely in flight)."""
        keys = [(item.message_id, task.sink) for item in self._keyed_items(task)]
        if not keys:
            return None
        open_keys = [key for key in keys if key not in self._settled]
        if not open_keys:
            outcomes = [self._settled[key] for key in keys]
            dead = [reason for outcome, reason in outcomes if outcome == "dead"]
            if dead and not any(o in ("delivered", "drained") for o, _ in outcomes):
                return ("dead", dead[0])
            return ("suppress", "")
        if all(key in self._parked for key in open_keys):
            return ("park", "")
        return None

    def replay_park_items(self, task: "DeliveryTask") -> List["DeliveryItem"]:
        """The items of a "park"-routed task that are still owed a drain."""
        return [
            item
            for item in self._keyed_items(task)
            if (item.message_id, task.sink) in self._parked
            and (item.message_id, task.sink) not in self._settled
        ]

    # --- projections ---------------------------------------------------------

    def projection(self, broker: Optional["WsMessenger"] = None) -> dict:
        """Canonical snapshot of the broker state the log determines.

        The durability conformance engine's fixpoint: a projection taken
        from the live broker must equal the projection of a fresh broker
        rebuilt from the log alone."""
        broker = broker if broker is not None else self.broker
        assert broker is not None
        subscriptions: Dict[str, dict] = {}
        for version, source in broker.wse_sources.items():
            tag = version.name.lower()
            for sub in source.store.live():
                subscriptions[f"wse:{tag}:{sub.id}"] = {
                    "sink": sub.notify_to.address if sub.notify_to else None,
                    "mode": sub.mode.value,
                    "expires": sub.expires,
                    "queued": len(sub.queue),
                }
        for version, producer in broker.wsn_producers.items():
            tag = version.name.lower()
            for sub in producer.live_subscriptions():
                subscriptions[f"wsn:{tag}:{sub.key}"] = {
                    "sink": sub.consumer.address,
                    "expires": sub.resource.termination_time,
                    "paused": sub.paused,
                    "queued": len(sub.paused_queue),
                }
        boxes = {}
        if broker.message_boxes is not None:
            for box in broker.message_boxes.boxes():
                boxes[box.sink] = {"address": box.address, "pending": len(box)}
        dead = 0
        if broker.delivery_manager is not None:
            dead = len(broker.delivery_manager.dlq)
        return {
            "subscriptions": subscriptions,
            "boxes": boxes,
            "dead_letters": dead,
        }

    def snapshot(self) -> dict:
        """Deterministic store state for reports and tests."""
        return {
            "log_records": len(self.log),
            "settled": len(self._settled),
            "parked_open": len(self._parked),
            "stats": self.stats.snapshot(),
        }
