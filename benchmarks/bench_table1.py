"""Experiment E1 — regenerate Table 1 (version-evolution feature matrix).

Every cell is probed against the live implementations; the benchmark body
asserts a clean diff against the published table and prints both on the
first run.
"""

from repro.comparison import PAPER_TABLE1, build_table1

_printed = False


def test_table1_regeneration(benchmark):
    def run():
        return build_table1()

    measured = benchmark(run)
    diff = measured.diff(PAPER_TABLE1)
    assert diff.clean, diff.summary()
    global _printed
    if not _printed:
        _printed = True
        print()
        print(measured.render(label_width=52, cell_width=14))
        print()
        print("Table 1:", diff.summary())
