"""Experiment E7 — WS-Messenger mediation (section VII claims, measured).

Verifies, then times, the broker's three claims:

1. spec auto-detection on a mixed workload of all five versions;
2. responses follow the request's specification;
3. cross-spec delivery — a WSN publication reaching a WSE sink and vice
   versa — plus the mediation overhead relative to a same-spec direct
   source->sink exchange.
"""

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, WseSubscriber, WseVersion
from repro.wsn import NotificationConsumer, WsnSubscriber, WsnVersion
from repro.xmlkit import parse_xml

_printed = False


def _event(n=0):
    return parse_xml(f'<ev:E xmlns:ev="urn:e7"><ev:n>{n}</ev:n></ev:E>')


def _mixed_subscribe_workload():
    """All five spec versions subscribe at one broker front door."""
    network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker")
    for version in WseVersion:
        sink = EventSink(network, f"http://sink-{version.name}", version=version)
        WseSubscriber(network, version=version).subscribe(
            broker.epr(), notify_to=sink.epr()
        )
    for version in WsnVersion:
        consumer = NotificationConsumer(
            network, f"http://consumer-{version.name}", version=version
        )
        WsnSubscriber(network, version=version).subscribe(
            broker.epr(), consumer.epr(), topic="e7"
        )
    return broker


def test_spec_detection_mixed_workload(benchmark):
    broker = benchmark(_mixed_subscribe_workload)
    assert broker.stats.detection_failures == 0
    assert len(broker.stats.detected) == 5  # every version seen exactly once
    assert all(count == 1 for count in broker.stats.detected.values())
    assert broker.subscription_count() == 5


def test_cross_spec_delivery_through_broker(benchmark):
    network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker")
    sink = EventSink(network, "http://sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="e7")

    def publish_round():
        broker.publish(_event(), topic="e7")

    benchmark(publish_round)
    assert len(sink.received) == len(consumer.received) >= 1
    assert consumer.received[0].wrapped and not sink.received[0].wrapped


def test_direct_wse_delivery_baseline(benchmark):
    """Same-spec direct exchange: the no-mediation baseline for overhead."""
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://direct-source")
    sink = EventSink(network, "http://direct-sink")
    WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())

    def publish_round():
        source.publish(_event())

    benchmark(publish_round)
    assert sink.received


def test_mediation_overhead_report(benchmark):
    """Broker fan-out to 2 consumers costs no more than ~4x a single direct
    delivery in wire bytes (two deliveries, one of them wrapped)."""
    benchmark(lambda: None)  # byte accounting below is the payload
    network_direct = SimulatedNetwork(VirtualClock())
    source = EventSource(network_direct, "http://s")
    sink = EventSink(network_direct, "http://k")
    WseSubscriber(network_direct).subscribe(source.epr(), notify_to=sink.epr())
    network_direct.stats.reset()
    source.publish(_event())
    direct_bytes = network_direct.stats.bytes_sent

    network_broker = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network_broker, "http://b")
    sink2 = EventSink(network_broker, "http://k2")
    WseSubscriber(network_broker).subscribe(broker.epr(), notify_to=sink2.epr())
    consumer = NotificationConsumer(network_broker, "http://c2")
    WsnSubscriber(network_broker).subscribe(broker.epr(), consumer.epr(), topic="e7")
    network_broker.stats.reset()
    broker.publish(_event(), topic="e7")
    broker_bytes = network_broker.stats.bytes_sent

    assert broker_bytes <= 4 * direct_bytes, (direct_bytes, broker_bytes)
    global _printed
    if not _printed:
        _printed = True
        print()
        print(f"direct WSE delivery: {direct_bytes} wire bytes/event")
        print(f"broker fan-out (1 WSE + 1 WSN consumer): {broker_bytes} wire bytes/event")
        print(f"overhead factor: {broker_bytes / direct_bytes:.2f}x for 2x consumers")
