"""Benchmark — mesh fan-out: shard-parallel publish throughput.

Runs the same workload — 32 topic roots x 3 subscribers each (96 total,
fixed across every configuration) x 2 publishes per topic — against a plain
one-broker :class:`WsMessenger` baseline and against 1/4/8-shard
:class:`~repro.mesh.MeshCluster` configurations, with publishers and
subscribers co-located with each topic's owning shard (the mesh fast path:
no federation hops inside the measured loop).

Throughput uses the **parallel-shard model**: the simulation is single-
process, so each publish's cost (virtual seconds: the simulated wire +
processing time the clock advances during the publish) is attributed to the
topic's owning shard, and a configuration's makespan is its busiest shard's
total — exactly the wall time an N-process deployment would take, with zero
measurement noise because the virtual clock is deterministic.  Wall seconds
are recorded per cell for reference but play no part in acceptance.

Delivery fidelity is checked with a digest over every consumer's full
delivery sequence (address, order, payload bytes, topic): all four
configurations must produce the byte-identical digest, so the speedup is
never bought with lost, duplicated, or reordered notifications.

Writes ``BENCH_mesh_fanout.json``; CI replays the smoke test and checks the
committed artifact against the schema below.
"""

import hashlib
import json
import time
from pathlib import Path

from repro.mesh import MeshCluster
from repro.obs import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.artifacts import SCHEMA_VERSION, write_artifact
from repro.wsa.headers import reset_message_counter
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.messenger import WsMessenger
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import serialize_xml

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_mesh_fanout.json"

SEED = 20060813
SHARD_GRID = [1, 4, 8]
TOPIC_ROOTS = [f"t{i:02d}" for i in range(32)]
SUBSCRIBERS_PER_TOPIC = 3
PUBLISHES_PER_TOPIC = 2
TOTAL_SUBSCRIBERS = len(TOPIC_ROOTS) * SUBSCRIBERS_PER_TOPIC
TOTAL_PUBLISHES = len(TOPIC_ROOTS) * PUBLISHES_PER_TOPIC

CELL_KEYS = frozenset(
    {
        "shards",
        "publishes",
        "deliveries",
        "delivery_digest",
        "busy_virtual_seconds",
        "makespan_virtual_seconds",
        "throughput_per_virtual_second",
        "wall_seconds",
    }
)
TOP_KEYS = frozenset(
    {
        "benchmark",
        "seed",
        "total_subscribers",
        "topics",
        "publishes",
        "baseline",
        "grid",
        "acceptance",
        "schema_version",
    }
)


def _event(topic: str, round_index: int):
    return parse_xml(
        f'<ev:Tick xmlns:ev="urn:bench-mesh"><ev:topic>{topic}</ev:topic>'
        f"<ev:round>{round_index}</ev:round></ev:Tick>"
    )


def _consumers(network):
    """The fixed consumer population: addresses identical in every config."""
    return {
        topic: [
            NotificationConsumer(network, f"http://bench-mesh-c/{topic}/{j}")
            for j in range(SUBSCRIBERS_PER_TOPIC)
        ]
        for topic in TOPIC_ROOTS
    }


def _delivery_digest(consumers) -> str:
    """One digest over every consumer's full in-order delivery sequence."""
    record = []
    for topic in TOPIC_ROOTS:
        for consumer in consumers[topic]:
            record.append(
                [
                    (serialize_xml(item.payload), item.topic)
                    for item in consumer.received
                ]
            )
    blob = json.dumps(record, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def measure_baseline() -> dict:
    """The 1-broker WsMessenger reference: fidelity anchor for every cell."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    Instrumentation.attach(network)
    broker = WsMessenger(network, "http://bench-mesh-baseline")
    consumers = _consumers(network)
    subscriber = WsnSubscriber(network)
    for topic in TOPIC_ROOTS:
        for consumer in consumers[topic]:
            subscriber.subscribe(broker.epr(), consumer.epr(), topic=topic)
    virtual_start = network.clock.now()
    for round_index in range(PUBLISHES_PER_TOPIC):
        for topic in TOPIC_ROOTS:
            broker.publish(_event(topic, round_index), topic=topic)
    return {
        "deliveries": sum(
            len(c.received) for group in consumers.values() for c in group
        ),
        "delivery_digest": _delivery_digest(consumers),
        "virtual_seconds": round(network.clock.now() - virtual_start, 6),
    }


def measure_cell(shards: int) -> dict:
    """One mesh configuration: same workload, per-shard cost attribution."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    Instrumentation.attach(network)
    mesh = MeshCluster(network, shards, base_address="http://bench-mesh")
    consumers = _consumers(network)
    for topic in TOPIC_ROOTS:
        for consumer in consumers[topic]:
            mesh.subscribe_wsn(consumer.address, topic=topic)  # home = owner
    busy: dict[str, float] = {node.name: 0.0 for node in mesh}
    wall_start = time.perf_counter()
    for round_index in range(PUBLISHES_PER_TOPIC):
        for topic in TOPIC_ROOTS:
            owner = mesh.owner_node_of_topic(topic).name
            before = network.clock.now()
            mesh.publish(_event(topic, round_index), topic=topic)  # via owner
            busy[owner] += network.clock.now() - before
    wall_seconds = time.perf_counter() - wall_start
    makespan = max(busy.values())
    return {
        "shards": shards,
        "publishes": TOTAL_PUBLISHES,
        "deliveries": sum(
            len(c.received) for group in consumers.values() for c in group
        ),
        "delivery_digest": _delivery_digest(consumers),
        "busy_virtual_seconds": {
            name: round(seconds, 6) for name, seconds in sorted(busy.items())
        },
        "makespan_virtual_seconds": round(makespan, 6),
        "throughput_per_virtual_second": round(TOTAL_PUBLISHES / makespan, 3),
        "wall_seconds": round(wall_seconds, 6),
    }


def build_report() -> dict:
    baseline = measure_baseline()
    grid = [measure_cell(shards) for shards in SHARD_GRID]
    by_shards = {cell["shards"]: cell for cell in grid}
    one, four = by_shards[1], by_shards[4]
    acceptance = {
        "throughput_1_shard": one["throughput_per_virtual_second"],
        "throughput_4_shard": four["throughput_per_virtual_second"],
        "speedup_4_over_1": round(
            four["throughput_per_virtual_second"]
            / one["throughput_per_virtual_second"],
            3,
        ),
        "payloads_identical": all(
            cell["delivery_digest"] == baseline["delivery_digest"] for cell in grid
        ),
    }
    return {
        "benchmark": "mesh_fanout",
        "seed": SEED,
        "total_subscribers": TOTAL_SUBSCRIBERS,
        "topics": len(TOPIC_ROOTS),
        "publishes": TOTAL_PUBLISHES,
        "baseline": baseline,
        "grid": grid,
        "acceptance": acceptance,
    }


# --- pytest entry points -------------------------------------------------------------


def test_smoke_single_shard_matches_baseline():
    """CI smoke: the 1-shard mesh is delivery-identical to the plain broker."""
    baseline = measure_baseline()
    cell = measure_cell(1)
    assert set(cell) == CELL_KEYS
    assert cell["deliveries"] == baseline["deliveries"] == (
        TOTAL_PUBLISHES * SUBSCRIBERS_PER_TOPIC
    )
    assert cell["delivery_digest"] == baseline["delivery_digest"]


def test_four_shards_double_throughput():
    """Acceptance: 4 shards >= 2x the 1-shard publish throughput, same bytes."""
    baseline = measure_baseline()
    one, four = measure_cell(1), measure_cell(4)
    assert four["delivery_digest"] == baseline["delivery_digest"]
    assert one["delivery_digest"] == baseline["delivery_digest"]
    assert (
        four["throughput_per_virtual_second"]
        >= 2 * one["throughput_per_virtual_second"]
    )


def test_schema_matches_committed_artifact():
    """CI smoke: fail on schema drift between the code and the artifact."""
    committed = json.loads(RESULT_FILE.read_text())
    assert set(committed) == TOP_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert committed["total_subscribers"] == TOTAL_SUBSCRIBERS
    assert [cell["shards"] for cell in committed["grid"]] == SHARD_GRID
    for cell in committed["grid"]:
        assert set(cell) == CELL_KEYS
    acceptance = committed["acceptance"]
    assert acceptance["speedup_4_over_1"] >= 2.0
    assert acceptance["payloads_identical"] is True


def test_write_mesh_fanout_report():
    report = build_report()
    assert report["acceptance"]["speedup_4_over_1"] >= 2.0
    assert report["acceptance"]["payloads_identical"] is True
    write_artifact(RESULT_FILE, report)
    print(f"\nwrote {RESULT_FILE}")
    acceptance = report["acceptance"]
    print(
        f"  {TOTAL_SUBSCRIBERS} subscribers, {TOTAL_PUBLISHES} publishes:"
        f" 1-shard {acceptance['throughput_1_shard']}/vs,"
        f" 4-shard {acceptance['throughput_4_shard']}/vs"
        f" ({acceptance['speedup_4_over_1']}x), payloads identical:"
        f" {acceptance['payloads_identical']}"
    )
