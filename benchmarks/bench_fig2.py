"""Experiment E5 — regenerate Fig. 2 (WS-BaseNotification architecture).

Traces the WSN lifecycle (subscribe, pause/resume, publish through the
separate publisher role, GetCurrentMessage, renew, unsubscribe) and asserts
the entity graph, including the producer/publisher separation WS-Eventing
lacks.
"""

from repro.comparison import trace_wsn_architecture
from repro.wsn.versions import WsnVersion

_printed = False


def test_fig2_trace(benchmark):
    trace = benchmark(trace_wsn_architecture, WsnVersion.V1_3)
    assert "Publisher" in trace.entities
    assert trace.operations_between("Publisher", "Notification Producer") == ["publish"]
    assert "Subscribe" in trace.operations_between("Subscriber", "Notification Producer")
    assert {"PauseSubscription", "ResumeSubscription"} <= set(
        trace.operations_between("Subscriber", "Subscription Manager")
    )
    assert trace.operations_between("Notification Producer", "Notification Consumer") == [
        "Notify"
    ]
    global _printed
    if not _printed:
        _printed = True
        print()
        print(trace.render())
        print()
        print(trace_wsn_architecture(WsnVersion.V1_0).render())
