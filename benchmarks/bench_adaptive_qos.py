"""Adaptive QoS under sustained overload — graceful degradation, quantified.

The scenario: every consumer goes dark for a fixed overload window while the
publisher keeps publishing at a steady rate, then the consumers recover.

1. **Baseline** (no QoS): the delivery pipeline queues everything.  The
   ``delivery.pending`` gauge grows on *every* probe sweep of the window —
   the unbounded-growth signature :meth:`GaugeProbes.growth_anomalies`
   flags — and the queue-lag p99 blows up to the window length, because the
   oldest message waits out the whole outage.
2. **Adaptive** (bounded queues + token buckets): per-sink queues cap at
   ``max_sink_queue``; everything beyond the cap is shed *with its books
   kept* (the conservation audit balances ``opened == delivered + shed +
   ...`` in every cell), and the survivors drain at the paced rate, so the
   *median* queue lag stays near the pacing interval instead of the outage
   length.  (The adaptive p99 is the in-flight queue head: it is never
   shed, so it honestly rides out the window.)

A third cell drives the WS-BrokeredNotification demand mechanism from the
same backlog signal: the broker pauses its upstream demand subscription when
``delivery.pending`` crosses the high-water mark and resumes below the
low-water mark — publisher-side load leveling through a stock WSN wire
operation.

Every number derives from the virtual clock and seeded RNGs, so two runs at
the same seed must produce a byte-identical artifact — asserted below.
"""

from __future__ import annotations

from pathlib import Path

from repro.delivery import DeliveryManager, DeliveryPolicy
from repro.messenger import WsMessenger
from repro.obs import Instrumentation
from repro.obs.audit import audit
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.probes import GaugeProbes
from repro.obs.slo import bucket_percentile
from repro.qos import AdaptiveQosPolicy
from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
from repro.util.artifacts import render_artifact
from repro.wsa.headers import reset_message_counter
from repro.wsn import (
    NotificationBroker,
    NotificationConsumer,
    NotificationProducer,
    WsnSubscriber,
)
from repro.xmlkit import parse_xml

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_adaptive_qos.json"

SEED = 20060813  # ICPP 2006 opened August 13
EVENTS = 120  # publishes per overload cell
CONSUMERS = 3
RATES = (20.0, 40.0)  # publish rates (events per virtual second)
SAMPLES = 8  # probe sweeps armed across the overload window

#: generous retry budget with a tight backoff cap: overload must queue (not
#: dead-letter) and recovery must be prompt once the outage lifts, so the
#: lag contrast measures queueing policy, not backoff alignment
POLICY = DeliveryPolicy(
    max_attempts=30,
    base_backoff=0.25,
    backoff_multiplier=2.0,
    max_backoff=0.5,
    jitter=0.0,
    breaker_failure_threshold=100,
)
ADAPTIVE = AdaptiveQosPolicy(
    max_sink_queue=4,
    per_sink_rate=25.0,
    per_sink_burst=5.0,
)
#: the hard bound every adaptive cell must respect: no sink queue beyond the
#: cap, so aggregate pending never exceeds cap x consumers (CI-gated)
PENDING_CEILING = ADAPTIVE.max_sink_queue * CONSUMERS

_results: dict[str, dict] = {}


def _event(n: int):
    return parse_xml(f'<ev:E xmlns:ev="urn:qos-bench"><ev:n>{n}</ev:n></ev:E>')


def _queue_lag_percentile(instrumentation, q: float) -> float:
    """A quantile of ``delivery.queue_lag_seconds`` merged across families,
    computed from cumulative bucket counts exactly like the SLO summaries."""
    counts = [0] * (len(DEFAULT_BUCKETS) + 1)
    maximum = None
    for _, histogram in instrumentation.metrics.histogram_series(
        "delivery.queue_lag_seconds"
    ):
        for i, n in enumerate(histogram.counts):
            counts[i] += n
        if histogram.maximum is not None:
            maximum = (
                histogram.maximum
                if maximum is None
                else max(maximum, histogram.maximum)
            )
    value = bucket_percentile(DEFAULT_BUCKETS, counts, q, maximum)
    return round(value, 9) if value is not None else 0.0


def run_overload_cell(*, adaptive: bool, rate: float, seed: int = SEED) -> dict:
    """Publish EVENTS notifications at ``rate`` while every consumer is dark,
    then recover and drain; return deterministic outcome numbers."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock(), seed=seed)
    instrumentation = Instrumentation.attach(network)
    broker = WsMessenger(
        network,
        "http://bench-broker",
        delivery=POLICY,
        delivery_seed=seed,
        qos=ADAPTIVE if adaptive else None,
    )
    consumers = []
    for n in range(CONSUMERS):
        consumer = NotificationConsumer(network, f"http://bench-consumer-{n}")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="bench")
        consumers.append(consumer)
    addresses = {c.address for c in consumers}
    dark = {"on": True}

    def outage(address, request):
        if dark["on"] and address in addresses:
            raise MessageLost(address)

    network.observers.append(outage)
    manager = broker.delivery_manager
    probes = GaugeProbes(instrumentation)
    probes.watch_broker(broker)
    window = EVENTS / rate
    probes.schedule(manager.scheduler, interval=window / SAMPLES, count=SAMPLES)
    for n in range(EVENTS):
        broker.publish(_event(n), topic="bench")
        network.clock.advance(1.0 / rate)
        manager.run_due()
    dark["on"] = False
    broker.run_deliveries_until_idle()

    pending_series = [
        [round(at, 9), value]
        for at, value in probes.series("delivery.pending")
    ]
    expected = EVENTS * CONSUMERS
    delivered = sum(len(c.received) for c in consumers)
    result = audit(instrumentation)
    stats = manager.stats
    return {
        "expected": expected,
        "delivered": delivered,
        "shed": stats.shed,
        "throttled": stats.throttled,
        "dead_lettered": stats.dead_lettered,
        "peak_pending": max(value for _, value in pending_series),
        "final_pending": manager.pending(),
        "pending_series": pending_series,
        "growth_anomalies": probes.growth_anomalies(min_samples=4),
        "queue_lag_p50_seconds": _queue_lag_percentile(instrumentation, 0.50),
        "queue_lag_p99_seconds": _queue_lag_percentile(instrumentation, 0.99),
        "audit": {
            "passed": result.passed,
            "opened": result.opened,
            "delivered": result.delivered,
            "shed": result.shed,
            "pending": result.pending,
        },
        "virtual_seconds": round(network.clock.now(), 9),
    }


def run_demand_scenario(*, seed: int = SEED) -> dict:
    """Backlog-driven demand publishing: the broker pauses its upstream
    subscription at the high-water mark and resumes once drained."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock(), seed=seed)
    instrumentation = Instrumentation.attach(network)
    manager = DeliveryManager(network, policy=POLICY)
    broker = NotificationBroker(
        network,
        "http://bench-broker",
        delivery_manager=manager,
        qos=AdaptiveQosPolicy(pause_pending_above=6, resume_pending_below=1),
    )
    publisher = NotificationProducer(network, "http://bench-publisher")
    broker.register_publisher(publisher.epr(), topic="bench", demand=True)
    consumer = NotificationConsumer(network, "http://bench-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="bench")
    dark = {"on": True}

    def outage(address, request):
        if dark["on"] and address == consumer.address:
            raise MessageLost(address)

    network.observers.append(outage)
    for n in range(8):
        broker.publish(_event(n), topic="bench")
    paused_at_pending = manager.pending()
    # events the publisher emits while lag-paused buffer upstream: the
    # broker's backlog must not grow
    for n in range(3):
        publisher.publish(_event(100 + n), topic="bench")
    pending_during_pause = manager.pending()
    dark["on"] = False
    manager.run_until_idle()
    result = audit(instrumentation)
    (registration,) = broker.registrations()
    return {
        "published_at_broker": 8,
        "published_upstream_while_paused": 3,
        "paused_at_pending": paused_at_pending,
        "pending_during_pause": pending_during_pause,
        "publisher_pauses": broker.publisher_pauses,
        "publisher_resumes": broker.publisher_resumes,
        "upstream_paused_after_drain": registration.paused_upstream,
        "delivered": len(consumer.received),
        "audit_passed": result.passed,
        "virtual_seconds": round(network.clock.now(), 9),
    }


def _cell_key(rate: float) -> str:
    return f"rate={rate:g}"


def test_baseline_unbounded_growth():
    """No QoS: pending grows on every sweep and p99 spans the outage."""
    for rate in RATES:
        cell = run_overload_cell(adaptive=False, rate=rate)
        _results[f"baseline/{_cell_key(rate)}"] = cell
        assert cell["delivered"] == cell["expected"]  # retries recover all
        assert cell["shed"] == 0
        assert any(
            anomaly["gauge"] == "delivery.pending"
            for anomaly in cell["growth_anomalies"]
        ), "the overload window must show the unbounded-growth signature"
        assert cell["peak_pending"] > PENDING_CEILING
        # the oldest message waited out most of the outage window
        assert cell["queue_lag_p99_seconds"] > (EVENTS / rate) / 2
        assert cell["audit"]["passed"]


def test_adaptive_bounds_queues_and_accounts_for_shed():
    """Bounded queues: pending stays under the cap, the overflow is shed,
    and the conservation audit still balances in every cell."""
    for rate in RATES:
        cell = run_overload_cell(adaptive=True, rate=rate)
        _results[f"adaptive/{_cell_key(rate)}"] = cell
        baseline = _results[f"baseline/{_cell_key(rate)}"]
        assert cell["peak_pending"] <= PENDING_CEILING
        assert not any(
            anomaly["gauge"] == "delivery.pending"
            for anomaly in cell["growth_anomalies"]
        ), "a bounded queue must not trip the growth probe"
        assert cell["shed"] > 0
        assert cell["delivered"] + cell["shed"] == cell["expected"]
        assert cell["audit"]["passed"], "conservation must include shed"
        assert cell["audit"]["shed"] == cell["shed"]
        assert cell["audit"]["pending"] == 0
        # graceful degradation: the typical survivor clears fast instead of
        # queueing behind the outage (the p99 tail is the in-flight queue
        # head, which is never shed and rides out the window)
        assert cell["queue_lag_p50_seconds"] <= 1.0
        assert (
            cell["queue_lag_p50_seconds"] * 2
            < baseline["queue_lag_p50_seconds"]
        )
        assert (
            cell["queue_lag_p99_seconds"]
            <= baseline["queue_lag_p99_seconds"]
        )


def test_demand_based_publisher_pause_resume():
    outcome = run_demand_scenario()
    _results["demand"] = outcome
    assert outcome["publisher_pauses"] == 1
    assert outcome["publisher_resumes"] == 1
    assert outcome["paused_at_pending"] >= 6
    # the lag pause kept upstream traffic out of the backlog
    assert outcome["pending_during_pause"] == outcome["paused_at_pending"]
    assert not outcome["upstream_paused_after_drain"]
    # broker-side events and the buffered upstream events all arrive
    assert outcome["delivered"] == 8 + 3
    assert outcome["audit_passed"]


def test_smoke_adaptive_smallest_point():
    """CI smoke: one adaptive cell at the lowest rate, bounded and balanced."""
    cell = run_overload_cell(adaptive=True, rate=RATES[0])
    assert cell["peak_pending"] <= PENDING_CEILING
    assert cell["audit"]["passed"]
    assert cell["delivered"] + cell["shed"] == cell["expected"]


def test_write_adaptive_qos_report():
    """Determinism gate + artifact: byte-identical at the same seed."""
    expected_keys = {f"{mode}/{_cell_key(rate)}" for mode in ("baseline", "adaptive") for rate in RATES}
    assert set(_results) == expected_keys | {"demand"}

    def document() -> str:
        payload = {
            "benchmark": "adaptive_qos",
            "seed": SEED,
            "events": EVENTS,
            "consumers": CONSUMERS,
            "rates": list(RATES),
            "policy": {
                "max_attempts": POLICY.max_attempts,
                "base_backoff": POLICY.base_backoff,
                "backoff_multiplier": POLICY.backoff_multiplier,
            },
            "qos": {
                "max_sink_queue": ADAPTIVE.max_sink_queue,
                "per_sink_rate": ADAPTIVE.per_sink_rate,
                "per_sink_burst": ADAPTIVE.per_sink_burst,
                "discard_policy": ADAPTIVE.discard_policy.value,
                "pending_ceiling": PENDING_CEILING,
            },
            "grid": {
                _cell_key(rate): {
                    "baseline": run_overload_cell(adaptive=False, rate=rate),
                    "adaptive": run_overload_cell(adaptive=True, rate=rate),
                }
                for rate in RATES
            },
            "demand": run_demand_scenario(),
        }
        return render_artifact(payload)

    first, second = document(), document()
    assert first == second, "artifact must be byte-identical at the same seed"
    RESULT_FILE.write_text(first)
    for rate in RATES:
        baseline = _results[f"baseline/{_cell_key(rate)}"]
        adaptive = _results[f"adaptive/{_cell_key(rate)}"]
        print()
        print(
            f"rate={rate:g}/s baseline: peak_pending={baseline['peak_pending']:g}"
            f" p50={baseline['queue_lag_p50_seconds']:g}s"
            f" p99={baseline['queue_lag_p99_seconds']:g}s"
        )
        print(
            f"rate={rate:g}/s adaptive: peak_pending={adaptive['peak_pending']:g}"
            f" p50={adaptive['queue_lag_p50_seconds']:g}s"
            f" p99={adaptive['queue_lag_p99_seconds']:g}s"
            f" shed={adaptive['shed']}"
        )


def test_schema_matches_committed_artifact():
    """The committed artifact must carry exactly the keys this bench writes
    and respect the bounded-queue ceiling (CI regenerates nothing; it
    rejects drift instead)."""
    import json

    committed = json.loads(RESULT_FILE.read_text())
    assert set(committed) == {
        "benchmark",
        "seed",
        "events",
        "consumers",
        "rates",
        "policy",
        "qos",
        "grid",
        "demand",
        "schema_version",
    }
    assert set(committed["grid"]) == {_cell_key(rate) for rate in RATES}
    ceiling = committed["qos"]["pending_ceiling"]
    for key, cells in committed["grid"].items():
        assert set(cells) == {"baseline", "adaptive"}
        assert cells["adaptive"]["peak_pending"] <= ceiling
        assert cells["adaptive"]["audit"]["passed"]
        assert cells["adaptive"]["shed"] > 0
        assert any(
            anomaly["gauge"] == "delivery.pending"
            for anomaly in cells["baseline"]["growth_anomalies"]
        )
    assert committed["demand"]["publisher_pauses"] == 1
    assert committed["demand"]["audit_passed"]
