"""Benchmark — the notification fan-out hot path.

Sweeps {10, 100, 1000} subscribers x {100%, 10%, 1%} topic selectivity over a
WSN producer and measures BOTH fan-out paths in the same run: the pre-index
linear matcher (``debug_linear_match=True``) and the topic-indexed /
frozen-payload / spliced-serialization fast path.  Per cell it records filter
evaluations, payload copies, index hits/skips, envelope serializations
(frozen splice hits vs refills), wire requests, and virtual/wall time per
publish — all sourced from ``repro.obs`` counters and the writer's stats.

Writes ``BENCH_fanout_hotpath.json``; the CI smoke step replays the smallest
sweep point and fails on artifact-schema drift.
"""

import json
import time
from pathlib import Path

from repro.obs import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.artifacts import SCHEMA_VERSION, write_artifact
from repro.transport.endpoint import SoapEndpoint
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import reset_message_counter
from repro.wsn.messages import WsnFilterSpec, WsnSubscribeRequest
from repro.wsn.producer import NotificationProducer
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import WRITER_STATS

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_fanout_hotpath.json"

SEED = 20060813
SUBSCRIBER_GRID = [10, 100, 1000]
SELECTIVITY_GRID = [1.0, 0.1, 0.01]
PUBLISHES = 3
HOT_TOPIC = "bench/hot"
SMOKE_POINT = (10, 1.0)
ACCEPTANCE_POINT = (1000, 0.01)

#: every per-mode measurement carries exactly these keys (schema contract)
MODE_KEYS = frozenset(
    {
        "filter_evals",
        "payload_copies",
        "index_hits",
        "index_skips",
        "matched_total",
        "wire_requests",
        "frozen_serializations",
        "frozen_splices",
        "virtual_seconds",
        "wall_seconds",
    }
)
CELL_KEYS = frozenset(
    {"subscribers", "selectivity", "matching", "publishes", "linear", "indexed"}
)
TOP_KEYS = frozenset(
    {
        "benchmark",
        "seed",
        "publishes",
        "hot_topic",
        "grid",
        "acceptance",
        "schema_version",
    }
)


def _event(i: int):
    return parse_xml(
        f'<ev:Load xmlns:ev="urn:bench"><ev:host>node-{i}</ev:host>'
        f"<ev:cpu>0.{i % 10}</ev:cpu></ev:Load>"
    )


def _build_stack(subscribers: int, selectivity: float, *, linear: bool):
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    Instrumentation.attach(network)
    sink = SoapEndpoint(network, "http://bench-sink")
    sink.on_any(lambda envelope, headers: None)
    producer = NotificationProducer(
        network, "http://bench-producer", debug_linear_match=linear
    )
    matching = max(1, int(subscribers * selectivity))
    consumer = EndpointReference("http://bench-sink")
    for i in range(subscribers):
        topic = HOT_TOPIC if i < matching else f"bench/cold-{i}"
        producer.create_subscription(
            WsnSubscribeRequest(
                consumer=consumer,
                filter=WsnFilterSpec(topic_expression=topic),
                initial_termination_text=None,
                use_raw=False,
            )
        )
    return network, producer, matching


def _counter_total(counters: dict, name: str) -> int:
    prefix_a, prefix_b = f"{name}{{", name
    return sum(
        value
        for key, value in counters.items()
        if key == prefix_b or key.startswith(prefix_a)
    )


def measure(subscribers: int, selectivity: float, *, linear: bool) -> dict:
    """One (subscribers, selectivity, mode) cell: PUBLISHES hot publishes."""
    network, producer, matching = _build_stack(
        subscribers, selectivity, linear=linear
    )
    instr = network.instrumentation
    instr.reset()
    network.stats.reset()
    WRITER_STATS.reset()
    virtual_start = network.clock.now()
    matched_total = 0
    wall_start = time.perf_counter()
    for i in range(PUBLISHES):
        matched_total += producer.publish(_event(i), topic=HOT_TOPIC)
    wall_seconds = time.perf_counter() - wall_start
    counters = instr.snapshot()["metrics"]["counters"]
    assert matched_total == matching * PUBLISHES
    return {
        "filter_evals": _counter_total(counters, "fanout.filter_evals"),
        "payload_copies": _counter_total(counters, "fanout.payload_copies"),
        "index_hits": _counter_total(counters, "fanout.index_hits"),
        "index_skips": _counter_total(counters, "fanout.index_skips"),
        "matched_total": matched_total,
        "wire_requests": network.stats.requests,
        "frozen_serializations": WRITER_STATS.frozen_serializations,
        "frozen_splices": WRITER_STATS.frozen_splices,
        "virtual_seconds": round(network.clock.now() - virtual_start, 6),
        "wall_seconds": round(wall_seconds, 6),
    }


def measure_cell(subscribers: int, selectivity: float) -> dict:
    """Both fan-out paths at one sweep point, same run."""
    return {
        "subscribers": subscribers,
        "selectivity": selectivity,
        "matching": max(1, int(subscribers * selectivity)),
        "publishes": PUBLISHES,
        "linear": measure(subscribers, selectivity, linear=True),
        "indexed": measure(subscribers, selectivity, linear=False),
    }


def build_report() -> dict:
    grid = [
        measure_cell(subscribers, selectivity)
        for subscribers in SUBSCRIBER_GRID
        for selectivity in SELECTIVITY_GRID
    ]
    target = next(
        cell
        for cell in grid
        if (cell["subscribers"], cell["selectivity"]) == ACCEPTANCE_POINT
    )
    linear, indexed = target["linear"], target["indexed"]
    acceptance = {
        "point": {"subscribers": target["subscribers"], "selectivity": target["selectivity"]},
        "filter_evals_linear": linear["filter_evals"],
        "filter_evals_indexed": indexed["filter_evals"],
        "filter_evals_ratio": round(
            linear["filter_evals"] / max(1, indexed["filter_evals"]), 2
        ),
        "payload_copies_linear": linear["payload_copies"],
        "payload_copies_indexed": indexed["payload_copies"],
        "payload_copies_reduction": round(
            1.0 - indexed["payload_copies"] / max(1, linear["payload_copies"]), 4
        ),
    }
    return {
        "benchmark": "fanout_hotpath",
        "seed": SEED,
        "publishes": PUBLISHES,
        "hot_topic": HOT_TOPIC,
        "grid": grid,
        "acceptance": acceptance,
    }


# --- pytest entry points -------------------------------------------------------------


def test_smoke_smallest_point():
    """CI smoke: the smallest sweep point runs and both paths agree."""
    cell = measure_cell(*SMOKE_POINT)
    linear, indexed = cell["linear"], cell["indexed"]
    assert set(linear) == MODE_KEYS
    assert set(indexed) == MODE_KEYS
    # both paths deliver the same notifications over the wire
    assert indexed["matched_total"] == linear["matched_total"]
    assert indexed["wire_requests"] == linear["wire_requests"]
    # at 100% selectivity the index can't skip anyone...
    assert indexed["index_skips"] == 0
    # ...but serialization is still once-per-publish: every wire push after
    # the first splices the cached body
    assert indexed["frozen_serializations"] == PUBLISHES
    assert indexed["frozen_splices"] == (linear["wire_requests"] - PUBLISHES)


def test_fast_path_reduces_work_at_scale():
    """Acceptance: >=5x fewer filter evals, >=50% fewer copies at 1000/1%."""
    cell = measure_cell(*ACCEPTANCE_POINT)
    linear, indexed = cell["linear"], cell["indexed"]
    assert indexed["matched_total"] == linear["matched_total"]
    assert indexed["wire_requests"] == linear["wire_requests"]
    assert linear["filter_evals"] >= 5 * max(1, indexed["filter_evals"])
    assert indexed["payload_copies"] <= linear["payload_copies"] / 2


def test_schema_matches_committed_artifact():
    """CI smoke: fail on schema drift between the code and the artifact."""
    committed = json.loads(RESULT_FILE.read_text())
    assert set(committed) == TOP_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert len(committed["grid"]) == len(SUBSCRIBER_GRID) * len(SELECTIVITY_GRID)
    for cell in committed["grid"]:
        assert set(cell) == CELL_KEYS
        assert set(cell["linear"]) == MODE_KEYS
        assert set(cell["indexed"]) == MODE_KEYS
    acceptance = committed["acceptance"]
    assert acceptance["filter_evals_ratio"] >= 5.0
    assert acceptance["payload_copies_reduction"] >= 0.5


def test_write_fanout_report():
    report = build_report()
    assert report["acceptance"]["filter_evals_ratio"] >= 5.0
    assert report["acceptance"]["payload_copies_reduction"] >= 0.5
    write_artifact(RESULT_FILE, report)
    print(f"\nwrote {RESULT_FILE}")
    point = report["acceptance"]
    print(
        f"  1000 subs / 1% selectivity: filter evals {point['filter_evals_linear']}"
        f" -> {point['filter_evals_indexed']} ({point['filter_evals_ratio']}x),"
        f" payload copies {point['payload_copies_linear']}"
        f" -> {point['payload_copies_indexed']}"
        f" (-{point['payload_copies_reduction'] * 100:.1f}%)"
    )
