"""Benchmark — the notification fan-out hot path.

Sweeps {10, 100, 1000} subscribers x {100%, 10%, 1%} topic selectivity over a
WSN producer and measures FOUR fan-out paths in the same run:

- ``linear``    — the pre-index linear matcher (``debug_linear_match=True``),
  tree-serializing every envelope (``debug_no_templates=True``);
- ``indexed``   — the PR 3 fast path: topic index + frozen payload + spliced
  serialization, but a full envelope tree built and walked per send
  (``debug_no_templates=True``);
- ``templated`` — per-(sink, shape) envelope byte-templates: steady-state
  sends are a ``str.join`` over cached segments, zero tree walks;
- ``batched``   — byte-templates plus per-sink delivery batching
  (``BatchingPolicy(window=0.0, max_batch=100)``): same-sink notifications
  within one publish coalesce into one multi-message ``Notify``.

Two big cells — (10_000, 1%) and (100_000, 1%) — extend the sweep for the
non-linear modes (the linear matcher at 100k subscribers is pointless
cruelty).  Per cell it records filter evaluations, payload copies, index
hits/skips, template hits/misses, batched submissions, envelope
serializations (frozen splice hits vs refills, full tree walks), wire
requests and bytes, and virtual/wall time per publish — all sourced from
``repro.obs`` counters, the writer's stats and the network's stats.

Writes ``BENCH_fanout_hotpath.json``; the CI smoke step replays the 10k
sweep point with a wall-time regression gate and fails on artifact-schema
drift.
"""

import gc
import json
import time
from pathlib import Path

from repro.delivery.policy import BatchingPolicy
from repro.obs import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.artifacts import SCHEMA_VERSION, write_artifact
from repro.transport.endpoint import SoapEndpoint
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import reset_message_counter
from repro.wsn.messages import WsnFilterSpec, WsnSubscribeRequest
from repro.wsn.producer import NotificationProducer
from repro.xmlkit import parse_xml
from repro.xmlkit.template import TEMPLATE_STATS
from repro.xmlkit.writer import WRITER_STATS

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_fanout_hotpath.json"

SEED = 20060813
SUBSCRIBER_GRID = [10, 100, 1000]
SELECTIVITY_GRID = [1.0, 0.1, 0.01]
#: the scale extension: non-linear modes only (the linear matcher would
#: dominate the run without changing any conclusion)
BIG_CELLS = [(10_000, 0.01), (100_000, 0.01)]
PUBLISHES = 3
HOT_TOPIC = "bench/hot"
BATCH_POLICY = BatchingPolicy(window=0.0, max_batch=100)
SMOKE_POINT = (10, 1.0)
CI_POINT = (10_000, 0.01)
ACCEPTANCE_POINT = (100_000, 0.01)

MODE_NAMES = ("linear", "indexed", "templated", "batched")

#: every per-mode measurement carries exactly these keys (schema contract)
MODE_KEYS = frozenset(
    {
        "filter_evals",
        "payload_copies",
        "index_hits",
        "index_skips",
        "matched_total",
        "wire_requests",
        "bytes_sent",
        "frozen_serializations",
        "frozen_splices",
        "tree_serializations",
        "template_hits",
        "template_misses",
        "batched_total",
        "virtual_seconds",
        "wall_seconds",
        "wall_seconds_best_publish",
    }
)
CELL_KEYS = frozenset(
    {"subscribers", "selectivity", "matching", "publishes", "modes"}
)
TOP_KEYS = frozenset(
    {
        "benchmark",
        "seed",
        "publishes",
        "hot_topic",
        "grid",
        "acceptance",
        "schema_version",
    }
)


def _event(i: int):
    return parse_xml(
        f'<ev:Load xmlns:ev="urn:bench"><ev:host>node-{i}</ev:host>'
        f"<ev:cpu>0.{i % 10}</ev:cpu></ev:Load>"
    )


def _build_stack(subscribers: int, selectivity: float, *, mode: str):
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    Instrumentation.attach(network)
    sink = SoapEndpoint(network, "http://bench-sink")
    sink.on_any(lambda envelope, headers: None)
    producer = NotificationProducer(
        network,
        "http://bench-producer",
        debug_linear_match=(mode == "linear"),
        debug_no_templates=(mode in ("linear", "indexed")),
        batching=BATCH_POLICY if mode == "batched" else None,
    )
    matching = max(1, int(subscribers * selectivity))
    consumer = EndpointReference("http://bench-sink")
    for i in range(subscribers):
        topic = HOT_TOPIC if i < matching else f"bench/cold-{i}"
        producer.create_subscription(
            WsnSubscribeRequest(
                consumer=consumer,
                filter=WsnFilterSpec(topic_expression=topic),
                initial_termination_text=None,
                use_raw=False,
            )
        )
    return network, producer, matching


def _counter_total(counters: dict, name: str) -> int:
    prefix_a, prefix_b = f"{name}{{", name
    return sum(
        value
        for key, value in counters.items()
        if key == prefix_b or key.startswith(prefix_a)
    )


def measure(subscribers: int, selectivity: float, *, mode: str) -> dict:
    """One (subscribers, selectivity, mode) cell: PUBLISHES hot publishes."""
    network, producer, matching = _build_stack(subscribers, selectivity, mode=mode)
    instr = network.instrumentation
    instr.reset()
    network.stats.reset()
    WRITER_STATS.reset()
    TEMPLATE_STATS.reset()
    virtual_start = network.clock.now()
    matched_total = 0
    # GC hygiene: collect the previous cell's cyclic garbage up front and
    # keep the collector out of the measured window, so cells are
    # order-independent (a gen2 pass over a 100k-subscriber heap otherwise
    # lands arbitrarily inside whichever mode runs last)
    gc.collect()
    gc.disable()
    publish_walls: list[float] = []
    try:
        for i in range(PUBLISHES):
            wall_start = time.perf_counter()
            matched_total += producer.publish(_event(i), topic=HOT_TOPIC)
            publish_walls.append(time.perf_counter() - wall_start)
    finally:
        gc.enable()
    wall_seconds = sum(publish_walls)
    counters = instr.snapshot()["metrics"]["counters"]
    assert matched_total == matching * PUBLISHES
    return {
        "filter_evals": _counter_total(counters, "fanout.filter_evals"),
        "payload_copies": _counter_total(counters, "fanout.payload_copies"),
        "index_hits": _counter_total(counters, "fanout.index_hits"),
        "index_skips": _counter_total(counters, "fanout.index_skips"),
        "matched_total": matched_total,
        "wire_requests": network.stats.requests,
        "bytes_sent": network.stats.bytes_sent,
        "frozen_serializations": WRITER_STATS.frozen_serializations,
        "frozen_splices": WRITER_STATS.frozen_splices,
        "tree_serializations": WRITER_STATS.tree_serializations,
        "template_hits": _counter_total(counters, "fanout.template_hits"),
        "template_misses": _counter_total(counters, "fanout.template_misses"),
        "batched_total": _counter_total(counters, "delivery.batched_total"),
        "virtual_seconds": round(network.clock.now() - virtual_start, 6),
        "wall_seconds": round(wall_seconds, 6),
        # the noise-resistant statistic: external contention only ever
        # inflates a publish, so the fastest of the PUBLISHES runs is the
        # best estimate of the true per-publish cost
        "wall_seconds_best_publish": round(min(publish_walls), 6),
    }


def measure_cell(subscribers: int, selectivity: float, *, modes=MODE_NAMES) -> dict:
    """Every requested fan-out path at one sweep point, same run."""
    return {
        "subscribers": subscribers,
        "selectivity": selectivity,
        "matching": max(1, int(subscribers * selectivity)),
        "publishes": PUBLISHES,
        "modes": {
            mode: measure(subscribers, selectivity, mode=mode) for mode in modes
        },
    }


def _wall_per_matched(measurement: dict) -> float:
    matched_per_publish = measurement["matched_total"] / PUBLISHES
    return measurement["wall_seconds_best_publish"] / max(1.0, matched_per_publish)


def build_report() -> dict:
    grid = [
        measure_cell(subscribers, selectivity)
        for subscribers in SUBSCRIBER_GRID
        for selectivity in SELECTIVITY_GRID
    ]
    grid.extend(
        measure_cell(subscribers, selectivity, modes=("indexed", "templated", "batched"))
        for subscribers, selectivity in BIG_CELLS
    )
    target = next(
        cell
        for cell in grid
        if (cell["subscribers"], cell["selectivity"]) == ACCEPTANCE_POINT
    )
    indexed = target["modes"]["indexed"]
    templated = target["modes"]["templated"]
    batched = target["modes"]["batched"]
    acceptance = {
        "point": {
            "subscribers": target["subscribers"],
            "selectivity": target["selectivity"],
        },
        "wall_us_per_matched_indexed": round(_wall_per_matched(indexed) * 1e6, 2),
        "wall_us_per_matched_templated": round(_wall_per_matched(templated) * 1e6, 2),
        "wall_us_per_matched_batched": round(_wall_per_matched(batched) * 1e6, 2),
        "speedup_templated_vs_indexed": round(
            _wall_per_matched(indexed) / _wall_per_matched(templated), 2
        ),
        "speedup_batched_vs_indexed": round(
            _wall_per_matched(indexed) / _wall_per_matched(batched), 2
        ),
        "template_hits_batched": batched["template_hits"],
        "template_misses_batched": batched["template_misses"],
        "tree_serializations_batched": batched["tree_serializations"],
        "wire_requests_indexed": indexed["wire_requests"],
        "wire_requests_batched": batched["wire_requests"],
    }
    return {
        "benchmark": "fanout_hotpath",
        "seed": SEED,
        "publishes": PUBLISHES,
        "hot_topic": HOT_TOPIC,
        "grid": grid,
        "acceptance": acceptance,
    }


# --- pytest entry points -------------------------------------------------------------


def test_smoke_smallest_point():
    """CI smoke: the smallest sweep point runs and all four paths agree."""
    cell = measure_cell(*SMOKE_POINT)
    modes = cell["modes"]
    linear, indexed = modes["linear"], modes["indexed"]
    templated, batched = modes["templated"], modes["batched"]
    for measurement in modes.values():
        assert set(measurement) == MODE_KEYS
    # every path delivers the same notifications
    matched = linear["matched_total"]
    assert all(m["matched_total"] == matched for m in modes.values())
    # unbatched paths agree on the wire — request-for-request, byte-for-byte
    assert indexed["wire_requests"] == linear["wire_requests"]
    assert templated["wire_requests"] == indexed["wire_requests"]
    assert templated["bytes_sent"] == indexed["bytes_sent"]
    # batching coalesces each publish's same-sink sends into one request
    assert batched["wire_requests"] == PUBLISHES
    assert batched["batched_total"] == matched
    # the template compiles once, then every send is a segment join: the only
    # full tree walk in the measured window is that one compile
    assert templated["template_misses"] == 1
    assert templated["template_hits"] == matched - 1
    assert templated["tree_serializations"] == 1
    assert batched["tree_serializations"] == 1
    # the PR 3 invariants still hold on the indexed path
    assert indexed["index_skips"] == 0
    assert indexed["frozen_serializations"] == PUBLISHES


def test_fast_path_reduces_work_at_scale():
    """Index acceptance: >=5x fewer filter evals, >=50% fewer copies (1000/1%)."""
    cell = measure_cell(1000, 0.01, modes=("linear", "indexed"))
    linear, indexed = cell["modes"]["linear"], cell["modes"]["indexed"]
    assert indexed["matched_total"] == linear["matched_total"]
    assert indexed["wire_requests"] == linear["wire_requests"]
    assert linear["filter_evals"] >= 5 * max(1, indexed["filter_evals"])
    assert indexed["payload_copies"] <= linear["payload_copies"] / 2


def test_ci_smoke_10k_point():
    """CI gate at (10_000, 1%): templates + batching must beat the PR 3
    baseline on wall time, with zero tree serializations after warm-up."""
    cell = measure_cell(*CI_POINT, modes=("indexed", "templated", "batched"))
    indexed = cell["modes"]["indexed"]
    templated = cell["modes"]["templated"]
    batched = cell["modes"]["batched"]
    assert batched["matched_total"] == indexed["matched_total"]
    # repeated shapes never re-serialize a tree: one compile, then joins only
    assert templated["tree_serializations"] == 1
    assert batched["tree_serializations"] == 1
    assert templated["template_misses"] == 1
    # wall-time regression gate on the noise-resistant best-publish stat
    # (conservative: the artifact records ~5x+ at 100k; 2x here keeps CI
    # green on noisy shared runners)
    assert (
        batched["wall_seconds_best_publish"] * 2
        <= indexed["wall_seconds_best_publish"]
    ), (
        f"batched fan-out regressed: {batched['wall_seconds_best_publish']}s vs "
        f"indexed {indexed['wall_seconds_best_publish']}s per publish"
    )


def test_schema_matches_committed_artifact():
    """CI smoke: fail on schema drift between the code and the artifact."""
    committed = json.loads(RESULT_FILE.read_text())
    assert set(committed) == TOP_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    expected_cells = len(SUBSCRIBER_GRID) * len(SELECTIVITY_GRID) + len(BIG_CELLS)
    assert len(committed["grid"]) == expected_cells
    big_points = {point for point in BIG_CELLS}
    for cell in committed["grid"]:
        assert set(cell) == CELL_KEYS
        point = (cell["subscribers"], cell["selectivity"])
        expected_modes = (
            {"indexed", "templated", "batched"}
            if point in big_points
            else set(MODE_NAMES)
        )
        assert set(cell["modes"]) == expected_modes
        for measurement in cell["modes"].values():
            assert set(measurement) == MODE_KEYS
    acceptance = committed["acceptance"]
    assert acceptance["speedup_batched_vs_indexed"] >= 5.0
    assert acceptance["tree_serializations_batched"] <= PUBLISHES


def test_write_fanout_report():
    report = build_report()
    assert report["acceptance"]["speedup_batched_vs_indexed"] >= 5.0
    write_artifact(RESULT_FILE, report)
    print(f"\nwrote {RESULT_FILE}")
    point = report["acceptance"]
    print(
        f"  100k subs / 1% selectivity:"
        f" {point['wall_us_per_matched_indexed']}us/notification indexed"
        f" -> {point['wall_us_per_matched_templated']}us templated"
        f" ({point['speedup_templated_vs_indexed']}x)"
        f" -> {point['wall_us_per_matched_batched']}us batched"
        f" ({point['speedup_batched_vs_indexed']}x)"
    )
