"""Experiment E6 — section V.4's six message-format difference categories.

Builds the corresponding WSE and WSN messages for the same semantic exchange
(a subscribe response and a topic-tagged notification), serializes both to
the wire, and measures the differences with the mediation analyzer.  The
assertion: all six published categories are detected on live messages.
"""

from repro.messenger.mediation import WSE_TOPIC_HEADER, compare_message_pair
from repro.soap import SoapEnvelope, SoapVersion
from repro.soap.codec import parse_envelope, serialize_envelope
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse import messages as wse_messages
from repro.wse.source import DEFAULT_NOTIFY_ACTION
from repro.wse.versions import WseVersion
from repro.wsn import messages as wsn_messages
from repro.wsn.messages import NotificationMessage
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element

WSE = WseVersion.V2004_08
WSN = WsnVersion.V1_3
#: the category-1 example in section V.4 ("ReferenceParameters ... while
#: WS-BaseNotification encloses it in the ReferenceProperties element")
#: describes the pre-1.3 WSN the paper's authors implemented against
WSN_OLD = WsnVersion.V1_0

_printed = False


def _payload():
    return parse_xml('<ev:E xmlns:ev="urn:e6"><ev:n>1</ev:n></ev:E>')


def _envelope(body, wsa_version, action, extra_headers=()):
    envelope = SoapEnvelope(SoapVersion.V11)
    apply_headers(envelope, MessageHeaders(to="http://x", action=action), wsa_version)
    for header in extra_headers:
        envelope.add_header(header)
    envelope.add_body(body)
    return parse_envelope(serialize_envelope(envelope))


def _message_pairs():
    # pair 1: SubscribeResponse — category 1 (id enclosure), 2, 3, 4
    wse_response = _envelope(
        wse_messages.build_subscribe_response(
            WSE, sub_id="s-1", manager_address="http://mgr", expires_text="PT1H"
        ),
        WSE.wsa_version,
        WSE.action("SubscribeResponse"),
    )
    wsn_response = _envelope(
        wsn_messages.build_subscribe_response(
            WSN_OLD, manager_address="http://mgr", sub_id="s-1"
        ),
        WSN_OLD.wsa_version,
        WSN_OLD.action("SubscribeResponse"),
    )
    # pair 2: a topic-tagged notification — categories 5 and 6
    wse_notification = _envelope(
        _payload(),
        WSE.wsa_version,
        DEFAULT_NOTIFY_ACTION,
        extra_headers=[text_element(WSE_TOPIC_HEADER, "jobs/status")],
    )
    wsn_notification = _envelope(
        wsn_messages.build_notify(
            WSN, [NotificationMessage(_payload(), topic="jobs/status")]
        ),
        WSN.wsa_version,
        WSN.action("Notify"),
    )
    return (wse_response, wsn_response), (wse_notification, wsn_notification)


def _analyze():
    (subscribe_pair, notify_pair) = _message_pairs()
    response_report = compare_message_pair(*subscribe_pair)
    notify_report = compare_message_pair(*notify_pair)
    return response_report, notify_report


def test_message_format_differences(benchmark):
    response_report, notify_report = benchmark(_analyze)
    all_categories = set(response_report.categories_present()) | set(
        notify_report.categories_present()
    )
    assert all_categories == {1, 2, 3, 4, 5, 6}, f"found only {sorted(all_categories)}"
    # category 1 specifically includes the reference parameter/property split
    names = set(response_report.element_name_differences)
    assert "ReferenceParameters" in names and "ReferenceProperties" in names
    global _printed
    if not _printed:
        _printed = True
        print()
        print("SubscribeResponse pair categories:", response_report.categories_present())
        print("  element names:", response_report.element_name_differences)
        print("  WSA versions:", response_report.wsa_version_difference)
        print("Notification pair categories:", notify_report.categories_present())
        print("  structure:", notify_report.structure_depth_difference)
        print("  content location:", notify_report.content_location_difference)
