"""Experiment E3 — regenerate Table 3 (six-specification comparison).

Behavioural cells (delivery modes, filter languages, QoS, timeouts,
demand-based publishing) come from live probes of all six implementations:
CORBA Event Service, CORBA Notification Service, JMS, OGSI, WSN 1.3 and
WSE 08/2004.
"""

from repro.comparison import PAPER_TABLE3, build_table3

_printed = False


def test_table3_regeneration(benchmark):
    measured = benchmark(build_table3)
    diff = measured.diff(PAPER_TABLE3)
    assert diff.clean, diff.summary()
    global _printed
    if not _printed:
        _printed = True
        print()
        print(measured.render(label_width=22, cell_width=28))
        print()
        print("Table 3:", diff.summary())
