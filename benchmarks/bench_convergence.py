"""Experiment E9 (extension) — the WS-EventNotification prototype.

The paper's conclusion anticipates a converged WS-EventNotification
standard.  This bench verifies the prototype's capability dominance (every
Table-1 capability of either parent, no obligation beyond their
intersection) and measures a full converged lifecycle, comparing its wire
cost against serving the same mixed consumer population through WS-Messenger
mediation.
"""

from repro.convergence import (
    MODE_PULL,
    ConvergedConsumer,
    ConvergedProfile,
    ConvergedSource,
    ConvergedSubscriber,
)
from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

_printed = False


def _event(n=1):
    return parse_xml(f'<ev:E xmlns:ev="urn:e9"><ev:n>{n}</ev:n></ev:E>')


def test_capability_dominance(benchmark):
    profile = benchmark(ConvergedProfile)
    assert profile.dominates_parents()


def _converged_lifecycle():
    network = SimulatedNetwork(VirtualClock())
    source = ConvergedSource(network, "http://e9-src")
    consumer = ConvergedConsumer(network, "http://e9-consumer")
    subscriber = ConvergedSubscriber(network)
    handle = subscriber.subscribe(
        source.epr(), consumer=consumer.epr(), topic="t", expires="PT1H"
    )
    puller = subscriber.subscribe(source.epr(), mode=MODE_PULL, topic="t")
    source.publish(_event(), topic="t")
    assert subscriber.get_status(handle) == "Active"
    assert len(subscriber.pull(puller)) == 1
    subscriber.pause(handle)
    subscriber.resume(handle)
    subscriber.renew(handle, "PT2H")
    subscriber.unsubscribe(handle)
    assert len(consumer.received) == 1
    return network


def test_converged_lifecycle(benchmark):
    benchmark(_converged_lifecycle)


def test_converged_vs_mediated_wire_cost(benchmark):
    """Serving 2 consumers natively (converged) vs via mediation (broker)."""
    benchmark(lambda: None)
    # converged: both consumers speak the one converged spec
    network_c = SimulatedNetwork(VirtualClock())
    source = ConvergedSource(network_c, "http://c-src")
    subscriber = ConvergedSubscriber(network_c)
    consumers = [ConvergedConsumer(network_c, f"http://c-{i}") for i in range(2)]
    for consumer in consumers:
        subscriber.subscribe(source.epr(), consumer=consumer.epr(), topic="t")
    network_c.stats.reset()
    source.publish(_event(), topic="t")
    converged_bytes = network_c.stats.bytes_sent

    # mediated: one WSE + one WSN consumer through WS-Messenger
    network_m = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network_m, "http://m-broker")
    sink = EventSink(network_m, "http://m-sink")
    WseSubscriber(network_m).subscribe(broker.epr(), notify_to=sink.epr())
    wsn_consumer = NotificationConsumer(network_m, "http://m-consumer")
    WsnSubscriber(network_m).subscribe(broker.epr(), wsn_consumer.epr(), topic="t")
    network_m.stats.reset()
    broker.publish(_event(), topic="t")
    mediated_bytes = network_m.stats.bytes_sent

    # shape: one converged spec serves a uniform population at least as
    # cheaply as mediating between two coexisting specs
    assert converged_bytes <= mediated_bytes * 1.1, (converged_bytes, mediated_bytes)
    global _printed
    if not _printed:
        _printed = True
        print()
        print(f"converged (2 native consumers): {converged_bytes} bytes/event")
        print(f"mediated  (1 WSE + 1 WSN):      {mediated_bytes} bytes/event")
