"""Observability overhead — the cost of the repro.obs layer, quantified.

Two questions:

1. **Null-instrumentation overhead**: with the default null object (no
   Instrumentation installed), how much slower is a mediated publish round
   than the same hot path cost before the obs layer existed?  The null
   path adds only attribute reads and no-op context managers.
2. **Full-instrumentation overhead**: with metrics + tracer + wire capture
   + lineage ledger all live, what does a fully traced publish round cost
   relative to null?  The fast-path work (splice-inject serialization,
   direct ledger records, inlined span allocation) holds this at
   ``instrumented_over_null <= 1.25`` — a hard, CI-gated ceiling.

Timing methodology (the ratio is the contract, so it must be noise-proof):

- **interleaved best-of**: the null and instrumented stacks are timed in
  alternating order across ``REPS`` repetitions, and the ratio is taken
  between the *minimum* per-publish times.  Minima estimate the true cost
  floor; interleaving cancels thermal/frequency drift between the stacks.
- the GC is collected then disabled around every timed loop, so a
  generational collection landing inside one stack's loop cannot skew the
  ratio; instrumentation state is reset after each rep to keep the
  instrumented stack's span/frame buffers from growing across reps.

The benchmark also exercises the report end-to-end (connected span tree,
per-family counters, deterministic JSON), and embeds the *deterministic*
telemetry evidence — queue-depth/lag gauge series and phase counts from
the scripted ``obs-health`` minute — in ``BENCH_observability.json``.
"""

from __future__ import annotations

import gc
import math
import time
from pathlib import Path

from repro.messenger import WsMessenger
from repro.obs import Instrumentation, build_report, render_json_report, slo_summary
from repro.obs.health import SAMPLE_INTERVAL, build_health_report, run_health_scenario
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.artifacts import write_artifact
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_observability.json"
ROUNDS = 400  # publishes per timed repetition
REPS = 16  # alternating-order repetitions; best-of wins
OVERHEAD_CEILING = 1.25  # hard gate on instrumented/null (CI-enforced)
#: the gauge families trended in the artifact: queue depths and lag across
#: the broker, the delivery layer, the mesh, and the store backlogs
GAUGE_PREFIXES = ("broker.", "delivery.", "mesh.", "store.")

_results: dict[str, object] = {}


def _event(n: int = 0):
    return parse_xml(f'<ev:E xmlns:ev="urn:obs-bench"><ev:n>{n}</ev:n></ev:E>')


def _mediation_stack(instrumented: bool):
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network) if instrumented else None
    broker = WsMessenger(network, "http://bench-broker")
    sink = EventSink(network, "http://bench-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://bench-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="bench")
    return network, broker, instrumentation


def _time_rounds(broker, rounds: int = ROUNDS) -> float:
    """Seconds per publish over one GC-quiesced loop of ``rounds``."""
    event = _event()
    publish = broker.publish
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(rounds):
            publish(event, topic="bench")
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed / rounds


def _measure_overhead() -> tuple[float, float]:
    """Best-of-``REPS`` interleaved per-publish times: (null, instrumented)."""
    _, null_broker, _ = _mediation_stack(instrumented=False)
    _, broker, instrumentation = _mediation_stack(instrumented=True)
    # warm both stacks (caches, allocator arenas) before anything is timed
    _time_rounds(null_broker, 50)
    _time_rounds(broker, 50)
    instrumentation.reset()

    null_best = instrumented_best = math.inf
    for rep in range(REPS):
        if rep % 2 == 0:  # alternate order so drift hits both stacks equally
            null_best = min(null_best, _time_rounds(null_broker))
            instrumented_best = min(instrumented_best, _time_rounds(broker))
        else:
            instrumented_best = min(instrumented_best, _time_rounds(broker))
            null_best = min(null_best, _time_rounds(null_broker))
        instrumentation.reset()  # bound span/frame buffers across reps
    return null_best, instrumented_best


def test_overhead_fast_path_ratio():
    """The tentpole gate: fully-live instrumentation costs <= 1.25x null."""
    null, instrumented = _measure_overhead()
    overhead = instrumented / null
    if overhead > OVERHEAD_CEILING:  # one re-measure absorbs a noise spike
        null, instrumented = _measure_overhead()
        overhead = instrumented / null
    _results["null_seconds_per_publish"] = null
    _results["instrumented_seconds_per_publish"] = instrumented
    _results["instrumented_over_null"] = overhead
    print()
    print(f"null instrumentation:  {null * 1e6:.1f} us/publish")
    print(f"full instrumentation:  {instrumented * 1e6:.1f} us/publish ({overhead:.3f}x)")
    assert overhead <= OVERHEAD_CEILING, (
        f"instrumentation fast path regressed: {overhead:.3f}x >"
        f" {OVERHEAD_CEILING}x ceiling"
    )


def test_instrumented_report_pipeline():
    """Metrics + tracing + wire capture all live; the report works end-to-end."""
    network, broker, instrumentation = _mediation_stack(instrumented=True)
    event = _event()
    for _ in range(ROUNDS):
        broker.publish(event, topic="bench")
    assert network.instrumentation is instrumentation

    report = build_report(instrumentation)
    assert report["summary"]["spans"] > 0
    assert report["summary"]["wire_frames"] > 0
    counters = instrumentation.metrics.counter_values("notifications.delivered")
    assert any("family=wse" in key for key in counters)
    assert any("family=wsn" in key for key in counters)
    _results["spans_per_publish"] = report["summary"]["spans"] / ROUNDS
    _results["metric_series"] = len(instrumentation.metrics)
    _results["wire_frames_per_publish"] = report["summary"]["wire_frames"] / ROUNDS

    # end-to-end delivery latency (publish -> delivered on the virtual
    # clock) per family, from the lineage-fed SLO histograms
    latency = slo_summary(instrumentation.metrics)
    assert latency, "instrumented publishes must feed the latency histograms"
    for family in ("wse", "wsn"):
        assert family in latency["per_family"]
    _results["delivery_latency"] = latency["per_family"]

    # determinism: rendering twice yields byte-identical JSON
    assert render_json_report(instrumentation) == render_json_report(instrumentation)


def test_null_stack_stays_inert():
    """The default path installs no observers and reports disabled."""
    network, broker, _ = _mediation_stack(instrumented=False)
    broker.publish(_event(), topic="bench")
    assert network.instrumentation.enabled is False
    assert network.wire_observers == []


def test_gauge_series_from_the_health_minute():
    """Queue-depth/lag trajectories for the artifact — fully deterministic:
    the scripted obs-health scenario runs on the virtual clock, so these
    series are byte-stable across machines (unlike the timing fields)."""
    run = run_health_scenario()
    health = build_health_report(run)
    series = {
        key: [[round(at, 9), value] for at, value in run.probes.series(key)]
        for key in sorted(run.probes.history)
        if key.startswith(GAUGE_PREFIXES)
    }
    assert any(key.startswith("broker.sub_queue_depth") for key in series)
    assert any(
        key.startswith("delivery.oldest_queued_age_seconds") for key in series
    ), "lag series missing"
    assert any(key.startswith("mesh.") for key in series)
    assert any(key.startswith("store.parked_open") for key in series)
    assert all(len(points) == health["samples"] for points in series.values())
    _results["gauges"] = {
        "source": "obs-health scripted scenario (virtual clock, deterministic)",
        "samples": health["samples"],
        "interval_seconds": SAMPLE_INTERVAL,
        "series": series,
    }
    _results["phase_counts"] = health["phases"]["counts"]
    _results["health_anomalies"] = health["anomalies"]


def test_write_overhead_report():
    """Persist the trajectory artifact from the measurements above."""
    null = _results.get("null_seconds_per_publish")
    instrumented = _results.get("instrumented_seconds_per_publish")
    assert null and instrumented, "ordering: the ratio test must run first"
    assert "gauges" in _results, "ordering: the gauge-series test must run first"
    document = {
        "benchmark": "observability",
        "rounds": ROUNDS,
        "reps": REPS,
        "methodology": "interleaved best-of reps, GC disabled in timed loops",
        "null_seconds_per_publish": round(null, 9),
        "instrumented_seconds_per_publish": round(instrumented, 9),
        "instrumented_over_null": round(_results["instrumented_over_null"], 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "spans_per_publish": _results["spans_per_publish"],
        "wire_frames_per_publish": _results["wire_frames_per_publish"],
        "metric_series": _results["metric_series"],
        "delivery_latency": _results["delivery_latency"],
        "gauges": _results["gauges"],
        "phase_counts": _results["phase_counts"],
        "health_anomalies": _results["health_anomalies"],
    }
    write_artifact(RESULT_FILE, document)


def test_schema_matches_committed_artifact():
    """The committed artifact must carry exactly the keys this bench writes
    (CI regenerates nothing; it rejects drift instead)."""
    import json

    committed = json.loads(RESULT_FILE.read_text())
    expected = {
        "benchmark",
        "rounds",
        "reps",
        "methodology",
        "null_seconds_per_publish",
        "instrumented_seconds_per_publish",
        "instrumented_over_null",
        "overhead_ceiling",
        "spans_per_publish",
        "wire_frames_per_publish",
        "metric_series",
        "delivery_latency",
        "gauges",
        "phase_counts",
        "health_anomalies",
        "schema_version",
    }
    assert set(committed) == expected
    assert committed["instrumented_over_null"] <= OVERHEAD_CEILING
    assert set(committed["gauges"]) == {
        "source",
        "samples",
        "interval_seconds",
        "series",
    }
