"""Observability overhead — the cost of the repro.obs layer, quantified.

Two questions:

1. **Null-instrumentation overhead**: with the default null object (no
   Instrumentation installed), how much slower is a mediated publish round
   than the same hot path cost before the obs layer existed?  The null
   path adds only attribute reads and no-op context managers, so the
   acceptance bar is "well under 5%" — asserted loosely here (timing noise
   on shared CI easily exceeds 5%) and recorded precisely in
   ``BENCH_observability.json`` for the perf trajectory.
2. **Full-instrumentation overhead**: with metrics + tracer + wire capture
   live, what does a fully traced publish round cost relative to null?

The benchmark also exercises the report end-to-end: the instrumented phase
must produce a connected span tree and per-family counters, and the JSON
exporter must render deterministically.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.messenger import WsMessenger
from repro.obs import Instrumentation, build_report, render_json_report, slo_summary
from repro.util.artifacts import write_artifact
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_observability.json"
ROUNDS = 200

_results: dict[str, float] = {}


def _event(n: int = 0):
    return parse_xml(f'<ev:E xmlns:ev="urn:obs-bench"><ev:n>{n}</ev:n></ev:E>')


def _mediation_stack(instrumented: bool):
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network) if instrumented else None
    broker = WsMessenger(network, "http://bench-broker")
    sink = EventSink(network, "http://bench-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://bench-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="bench")
    return network, broker, instrumentation


def _time_publish_rounds(broker, rounds: int = ROUNDS) -> float:
    event = _event()
    started = time.perf_counter()
    for _ in range(rounds):
        broker.publish(event, topic="bench")
    return (time.perf_counter() - started) / rounds


def test_null_instrumentation_publish(benchmark):
    """The default path: no Instrumentation installed anywhere."""
    network, broker, _ = _mediation_stack(instrumented=False)
    event = _event()
    benchmark(lambda: broker.publish(event, topic="bench"))
    _results["null_seconds_per_publish"] = _time_publish_rounds(broker)
    # the obs layer must stay inert by default
    assert network.instrumentation.enabled is False
    assert network.wire_observers == []


def test_instrumented_publish(benchmark):
    """Metrics + tracing + wire capture all live on the same stack."""
    network, broker, instrumentation = _mediation_stack(instrumented=True)
    event = _event()

    def publish_round():
        broker.publish(event, topic="bench")
        if len(instrumentation.tracer.spans) > 5000:
            instrumentation.reset()  # bound memory across benchmark warmup

    benchmark(publish_round)
    instrumentation.reset()
    _results["instrumented_seconds_per_publish"] = _time_publish_rounds(broker)

    # the report pipeline works end-to-end on the data just gathered
    report = build_report(instrumentation)
    assert report["summary"]["spans"] > 0
    assert report["summary"]["wire_frames"] > 0
    counters = instrumentation.metrics.counter_values("notifications.delivered")
    assert any("family=wse" in key for key in counters)
    assert any("family=wsn" in key for key in counters)
    _results["spans_per_publish"] = report["summary"]["spans"] / ROUNDS
    _results["metric_series"] = len(instrumentation.metrics)
    _results["wire_frames_per_publish"] = report["summary"]["wire_frames"] / ROUNDS

    # end-to-end delivery latency (publish -> delivered on the virtual
    # clock) per family, from the lineage-fed SLO histograms
    latency = slo_summary(instrumentation.metrics)
    assert latency, "instrumented publishes must feed the latency histograms"
    for family in ("wse", "wsn"):
        assert family in latency["per_family"]
    _results["delivery_latency"] = latency["per_family"]

    # determinism: rendering twice yields byte-identical JSON
    assert render_json_report(instrumentation) == render_json_report(instrumentation)


def test_write_overhead_report(benchmark):
    """Persist the trajectory file; loose sanity bound on the ratios."""
    benchmark(lambda: None)  # the artifact below is the payload
    null = _results.get("null_seconds_per_publish")
    instrumented = _results.get("instrumented_seconds_per_publish")
    assert null and instrumented, "ordering: timing tests must run first"
    overhead = instrumented / null
    document = {
        "benchmark": "observability",
        "rounds": ROUNDS,
        "null_seconds_per_publish": round(null, 9),
        "instrumented_seconds_per_publish": round(instrumented, 9),
        "instrumented_over_null": round(overhead, 4),
        "spans_per_publish": _results["spans_per_publish"],
        "wire_frames_per_publish": _results["wire_frames_per_publish"],
        "metric_series": _results["metric_series"],
        "delivery_latency": _results["delivery_latency"],
    }
    write_artifact(RESULT_FILE, document)
    print()
    print(f"null instrumentation:  {null * 1e6:.1f} us/publish")
    print(f"full instrumentation:  {instrumented * 1e6:.1f} us/publish ({overhead:.2f}x)")
    # full tracing of a ~10-hop fan-out should still be same order of magnitude
    assert overhead < 5.0, f"instrumentation overhead blew up: {overhead:.2f}x"
