"""Ablation — broker fan-out scalability.

Sweeps the subscriber population (1, 10, 50 mixed-spec consumers) and the
filter selectivity, measuring per-publication cost at the broker.  Shape
claims: cost grows linearly in *matching* subscribers, and non-matching
subscriptions are cheap (filter evaluation only, no wire traffic).
"""

import pytest

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

def _event():
    return parse_xml('<ev:E xmlns:ev="urn:sc"><ev:n>1</ev:n></ev:E>')


def _stack(consumers: int):
    network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker")
    for i in range(consumers):
        if i % 2 == 0:
            sink = EventSink(network, f"http://sink-{i}")
            WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        else:
            consumer = NotificationConsumer(network, f"http://consumer-{i}")
            WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="sc")
    return network, broker


@pytest.fixture(scope="module")
def fanout_costs():
    """Per-publication wire cost, measured lazily and cached per module run."""
    costs: dict[int, int] = {}

    def cost_of(consumers: int) -> int:
        if consumers not in costs:
            network, broker = _stack(consumers)
            network.stats.reset()
            broker.publish(_event(), topic="sc")
            costs[consumers] = network.stats.requests
        return costs[consumers]

    return cost_of


@pytest.mark.parametrize("consumers", [1, 10, 50])
def test_fanout_scaling(benchmark, consumers):
    network, broker = _stack(consumers)

    def publish():
        broker.publish(_event(), topic="sc")

    benchmark(publish)


def test_fanout_requests_linear(benchmark, fanout_costs):
    benchmark(lambda: None)
    # wire requests == matching consumers, exactly
    assert fanout_costs(1) == 1
    assert fanout_costs(10) == 10
    assert fanout_costs(50) == 50
    print()
    for consumers in (1, 10, 50):
        print(
            f"  {consumers:3d} consumers -> {fanout_costs(consumers):3d}"
            " wire requests/publication"
        )


def test_non_matching_subscribers_cost_no_wire_traffic(benchmark):
    network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker")
    # 20 subscribers, all filtered onto a different topic
    for i in range(20):
        consumer = NotificationConsumer(network, f"http://c-{i}")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="other")

    def publish():
        broker.publish(_event(), topic="sc")

    benchmark(publish)
    network.stats.reset()
    publish()
    assert network.stats.requests == 0
