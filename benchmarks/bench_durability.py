"""Benchmark — durability: outbox publish overhead and recovery time.

Two questions the event-sourced store (:mod:`repro.store`) must answer with
numbers:

1. **What does the transactional outbox cost on the hot path?**  The same
   workload — 1000 WSN subscribers on one topic, 8 publishes — runs against
   a plain :class:`WsMessenger` baseline and against store-backed brokers
   (in-memory log and file-backed log).  The virtual clock is unaffected by
   the store (appends are broker-local work, not wire traffic), so the cost
   is *wall* seconds of the publish loop; acceptance is the in-memory
   backend's overhead <= 15% over the baseline.  A delivery digest over
   every consumer's full sequence proves the store changed nothing about
   what was delivered.

2. **What does recovery cost as the log grows?**  Brokers with a fixed
   20-subscription population publish until their logs reach ~100/400/1600
   records, then crash; each cell records the wall seconds
   :func:`repro.store.recover_broker` takes to rebuild and asserts the
   projection fixpoint (rebuilt state == pre-crash state).

Writes ``BENCH_durability.json``; CI replays the smoke test and checks the
committed artifact against the schema below.
"""

import hashlib
import json
import time
from pathlib import Path

from repro.delivery import DeliveryPolicy
from repro.messenger import WsMessenger
from repro.store import BrokerStore, FileEventLog, MemoryEventLog, recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.artifacts import SCHEMA_VERSION, write_artifact
from repro.wsa.headers import reset_message_counter
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import serialize_xml

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_durability.json"

SEED = 20060813
SUBSCRIBERS = 1000
PUBLISHES = 8
REPEATS = 3  # publish loops are wall-timed; keep each config's best run
BACKENDS = ["none", "memory", "file"]
RECOVERY_TARGETS = [100, 400, 1600]
RECOVERY_SUBSCRIBERS = 20

CONFIG_KEYS = frozenset(
    {
        "backend",
        "deliveries",
        "delivery_digest",
        "publish_wall_seconds",
        "virtual_seconds",
        "log_records",
        "overhead_vs_baseline",
    }
)
RECOVERY_KEYS = frozenset(
    {
        "log_records",
        "publishes",
        "subscriptions",
        "recovery_wall_seconds",
        "fixpoint",
    }
)
TOP_KEYS = frozenset(
    {
        "benchmark",
        "seed",
        "subscribers",
        "publishes",
        "configs",
        "recovery",
        "acceptance",
        "schema_version",
    }
)


def _event(round_index: int):
    return parse_xml(
        f'<ev:Tick xmlns:ev="urn:bench-dur"><ev:round>{round_index}</ev:round>'
        "</ev:Tick>"
    )


def _store_for(backend: str, tmp_dir):
    if backend == "none":
        return None
    if backend == "memory":
        return BrokerStore(MemoryEventLog())
    return BrokerStore(FileEventLog(str(Path(tmp_dir) / "bench-broker.log")))


def _delivery_digest(consumers) -> str:
    record = [
        [(serialize_xml(item.payload), item.topic) for item in consumer.received]
        for consumer in consumers
    ]
    blob = json.dumps(record, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def measure_publish(backend: str, tmp_dir, *, subscribers=SUBSCRIBERS) -> dict:
    """One configuration: wall-time the publish loop under the given log."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    store = _store_for(backend, tmp_dir)
    broker = WsMessenger(
        network, "http://bench-dur", delivery=DeliveryPolicy(), store=store
    )
    consumers = [
        NotificationConsumer(network, f"http://bench-dur-c/{i}")
        for i in range(subscribers)
    ]
    subscriber = WsnSubscriber(network)
    for consumer in consumers:
        subscriber.subscribe(broker.epr(), consumer.epr(), topic="dur")
    virtual_start = network.clock.now()
    wall_start = time.perf_counter()
    for round_index in range(PUBLISHES):
        broker.publish(_event(round_index), topic="dur")
    broker.run_deliveries_until_idle()
    wall_seconds = time.perf_counter() - wall_start
    if store is not None:
        store.log.close()
    return {
        "backend": backend,
        "deliveries": sum(len(c.received) for c in consumers),
        "delivery_digest": _delivery_digest(consumers),
        "publish_wall_seconds": round(wall_seconds, 6),
        "virtual_seconds": round(network.clock.now() - virtual_start, 6),
        "log_records": len(store.log) if store is not None else 0,
        "overhead_vs_baseline": None,  # filled in by build_report
    }


def measure_recovery(target_records: int) -> dict:
    """One recovery cell: crash at ~target log length, wall-time the rebuild."""
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    store = BrokerStore(MemoryEventLog())
    broker = WsMessenger(
        network, "http://bench-dur", delivery=DeliveryPolicy(), store=store
    )
    consumers = [
        NotificationConsumer(network, f"http://bench-dur-c/{i}")
        for i in range(RECOVERY_SUBSCRIBERS)
    ]
    subscriber = WsnSubscriber(network)
    for consumer in consumers:
        subscriber.subscribe(broker.epr(), consumer.epr(), topic="dur")
    # each publish appends 1 publish record + one outcome per subscriber
    publishes = 0
    while len(store.log) < target_records:
        broker.publish(_event(publishes), topic="dur")
        broker.run_deliveries_until_idle()
        publishes += 1
    live = store.projection(broker)
    broker.close()
    wall_start = time.perf_counter()
    recovered = recover_broker(network, "http://bench-dur", store.log)
    wall_seconds = time.perf_counter() - wall_start
    rebuilt = recovered.store.projection(recovered)
    recovered.close()
    return {
        "log_records": len(store.log),
        "publishes": publishes,
        "subscriptions": RECOVERY_SUBSCRIBERS,
        "recovery_wall_seconds": round(wall_seconds, 6),
        "fixpoint": rebuilt == live,
    }


def _best_of(backend: str, tmp_dir) -> dict:
    """Repeat the wall-timed run; the minimum is the least-noise estimate."""
    runs = [measure_publish(backend, tmp_dir) for _ in range(REPEATS)]
    return min(runs, key=lambda cell: cell["publish_wall_seconds"])


def build_report(tmp_dir) -> dict:
    configs = [_best_of(backend, tmp_dir) for backend in BACKENDS]
    by_backend = {cell["backend"]: cell for cell in configs}
    baseline_wall = by_backend["none"]["publish_wall_seconds"]
    for cell in configs:
        cell["overhead_vs_baseline"] = round(
            cell["publish_wall_seconds"] / baseline_wall - 1.0, 4
        )
    recovery = [measure_recovery(target) for target in RECOVERY_TARGETS]
    acceptance = {
        "outbox_overhead_memory": by_backend["memory"]["overhead_vs_baseline"],
        "outbox_overhead_limit": 0.15,
        "payloads_identical": all(
            cell["delivery_digest"] == by_backend["none"]["delivery_digest"]
            for cell in configs
        ),
        "recovery_fixpoints": all(cell["fixpoint"] for cell in recovery),
    }
    return {
        "benchmark": "durability",
        "seed": SEED,
        "subscribers": SUBSCRIBERS,
        "publishes": PUBLISHES,
        "configs": configs,
        "recovery": recovery,
        "acceptance": acceptance,
    }


# --- pytest entry points -------------------------------------------------------------


def test_smoke_store_is_delivery_invisible(tmp_path):
    """CI smoke: store-backed brokers deliver byte-identically (small scale)."""
    baseline = measure_publish("none", tmp_path, subscribers=40)
    memory = measure_publish("memory", tmp_path, subscribers=40)
    file_backed = measure_publish("file", tmp_path, subscribers=40)
    for cell in (baseline, memory, file_backed):
        assert set(cell) == CONFIG_KEYS
        assert cell["deliveries"] == 40 * PUBLISHES
    assert memory["delivery_digest"] == baseline["delivery_digest"]
    assert file_backed["delivery_digest"] == baseline["delivery_digest"]
    # the outbox appended one publish record + one outcome per delivery
    assert memory["log_records"] == file_backed["log_records"] > 0


def test_smoke_recovery_fixpoint():
    """CI smoke: the smallest recovery cell rebuilds to the same projection."""
    cell = measure_recovery(RECOVERY_TARGETS[0])
    assert set(cell) == RECOVERY_KEYS
    assert cell["fixpoint"] is True
    assert cell["log_records"] >= RECOVERY_TARGETS[0]


def test_schema_matches_committed_artifact():
    """CI smoke: fail on schema drift between the code and the artifact."""
    committed = json.loads(RESULT_FILE.read_text())
    assert set(committed) == TOP_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert committed["subscribers"] == SUBSCRIBERS
    assert [cell["backend"] for cell in committed["configs"]] == BACKENDS
    for cell in committed["configs"]:
        assert set(cell) == CONFIG_KEYS
    assert [cell["log_records"] >= target for cell, target in zip(
        committed["recovery"], RECOVERY_TARGETS
    )] == [True] * len(RECOVERY_TARGETS)
    for cell in committed["recovery"]:
        assert set(cell) == RECOVERY_KEYS
    acceptance = committed["acceptance"]
    assert acceptance["outbox_overhead_memory"] <= acceptance["outbox_overhead_limit"]
    assert acceptance["payloads_identical"] is True
    assert acceptance["recovery_fixpoints"] is True


def test_write_durability_report(tmp_path):
    report = build_report(tmp_path)
    acceptance = report["acceptance"]
    assert acceptance["outbox_overhead_memory"] <= acceptance["outbox_overhead_limit"]
    assert acceptance["payloads_identical"] is True
    assert acceptance["recovery_fixpoints"] is True
    write_artifact(RESULT_FILE, report)
    print(f"\nwrote {RESULT_FILE}")
    print(
        f"  {SUBSCRIBERS} subscribers, {PUBLISHES} publishes:"
        f" memory outbox overhead {acceptance['outbox_overhead_memory']:+.1%}"
        f" (limit {acceptance['outbox_overhead_limit']:.0%});"
        f" recovery fixpoints: {acceptance['recovery_fixpoints']}"
    )
