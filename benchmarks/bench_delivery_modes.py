"""Ablation — push vs pull vs wrapped delivery (WSE 08/2004).

The paper motivates wrapped mode as "pack several notification messages
into one message for efficient delivery" and pull mode for firewalled
consumers.  This bench measures per-event wall time and wire bytes for the
three modes at a fixed batch size, confirming the expected shape: wrapped
spends fewer wire bytes and round trips per event than push; pull trades
latency for reachability.
"""

from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import DeliveryMode, EventSink, EventSource, WseSubscriber
from repro.xmlkit import parse_xml

BATCH = 50

_report: dict[str, tuple[int, int]] = {}
_printed = False


def _event(n):
    return parse_xml(f'<ev:E xmlns:ev="urn:dm"><ev:n>{n}</ev:n></ev:E>')


def _push_stack():
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://src")
    sink = EventSink(network, "http://snk")
    WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
    return network, source, sink, None


def _wrapped_stack():
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://src", wrapped_batch_size=10)
    sink = EventSink(network, "http://snk")
    WseSubscriber(network).subscribe(
        source.epr(), notify_to=sink.epr(), mode=DeliveryMode.WRAPPED
    )
    return network, source, sink, None


def _pull_stack():
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://src")
    subscriber = WseSubscriber(network)
    handle = subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
    return network, source, subscriber, handle


def _run_push(stack):
    network, source, sink, _ = stack
    sink.received.clear()
    network.stats.reset()
    for n in range(BATCH):
        source.publish(_event(n))
    assert len(sink.received) == BATCH
    return network.stats


def _run_wrapped(stack):
    network, source, sink, _ = stack
    sink.received.clear()
    network.stats.reset()
    for n in range(BATCH):
        source.publish(_event(n))
    source.flush()
    assert len(sink.received) == BATCH
    return network.stats


def _run_pull(stack):
    network, source, subscriber, handle = stack
    network.stats.reset()
    for n in range(BATCH):
        source.publish(_event(n))
    pulled = subscriber.pull(handle)
    assert len(pulled) == BATCH
    return network.stats


def test_push_mode(benchmark):
    stack = _push_stack()
    stats = benchmark(_run_push, stack)
    _report["push"] = (stats.requests, stats.bytes_sent)


def test_wrapped_mode(benchmark):
    stack = _wrapped_stack()
    stats = benchmark(_run_wrapped, stack)
    _report["wrapped"] = (stats.requests, stats.bytes_sent)


def test_pull_mode(benchmark):
    stack = _pull_stack()
    stats = benchmark(_run_pull, stack)
    _report["pull"] = (stats.requests, stats.bytes_sent)


def test_delivery_mode_shape(benchmark):
    """The paper's qualitative claims, checked quantitatively."""
    benchmark(lambda: None)  # shape check; the timing above is the data
    for name, runner, stack_fn in [
        ("push", _run_push, _push_stack),
        ("wrapped", _run_wrapped, _wrapped_stack),
        ("pull", _run_pull, _pull_stack),
    ]:
        if name not in _report:
            stats = runner(stack_fn())
            _report[name] = (stats.requests, stats.bytes_sent)
    push_requests, push_bytes = _report["push"]
    wrapped_requests, wrapped_bytes = _report["wrapped"]
    pull_requests, pull_bytes = _report["pull"]
    # wrapped batches: ~1/10th the requests and strictly fewer bytes than push
    assert wrapped_requests < push_requests / 2
    assert wrapped_bytes < push_bytes
    # pull: one poll round-trip regardless of batch
    assert pull_requests == 1
    global _printed
    if not _printed:
        _printed = True
        print()
        print(f"{BATCH} events per round:")
        for name in ("push", "wrapped", "pull"):
            requests, sent = _report[name]
            print(f"  {name:8s}: {requests:3d} wire requests, {sent:7d} bytes sent")
