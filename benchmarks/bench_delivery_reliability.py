"""Reliable delivery under loss — the repro.delivery pipeline, quantified.

Three questions:

1. **Eventual delivery**: under 10% seeded message loss, what fraction of
   published notifications eventually reach their consumers with a retry
   :class:`DeliveryPolicy`, versus the historical best-effort push (where
   the first lost notification kills the subscription)?  Acceptance: the
   reliable run delivers >= 99%.
2. **Cost**: how many wire attempts does that reliability buy, and how much
   virtual time does the retry schedule span?
3. **Store-and-forward**: how many messages park for a firewalled consumer
   and how many come back out through the WSN ``GetMessages`` drain?

Every number in ``BENCH_delivery_reliability.json`` derives from the virtual
clock and seeded RNGs, so two runs at the same seed must produce a
byte-identical artifact — asserted below.
"""

from __future__ import annotations

from pathlib import Path

from repro.delivery import DeliveryPolicy
from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber
from repro.util.artifacts import render_artifact
from repro.xmlkit import parse_xml

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_delivery_reliability.json"

SEED = 20060813  # ICPP 2006 opened August 13
LOSS_RATE = 0.10
EVENTS = 40
WSN_CONSUMERS = 3
WSE_SINKS = 2

RELIABLE = DeliveryPolicy(
    max_attempts=8, base_backoff=0.25, backoff_multiplier=2.0, jitter=0.2
)

_results: dict[str, dict] = {}


def _event(n: int):
    return parse_xml(f'<ev:E xmlns:ev="urn:rel-bench"><ev:n>{n}</ev:n></ev:E>')


def run_lossy_scenario(*, reliable: bool, seed: int = SEED) -> dict:
    """Publish EVENTS notifications to a mixed-spec population over a lossy
    wire; return deterministic (virtual-clock-only) outcome numbers."""
    network = SimulatedNetwork(VirtualClock(), seed=seed)
    broker = WsMessenger(
        network,
        "http://bench-broker",
        delivery=RELIABLE if reliable else None,
        delivery_seed=seed,
    )
    consumers = []
    for n in range(WSN_CONSUMERS):
        consumer = NotificationConsumer(network, f"http://bench-consumer-{n}")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="bench")
        consumers.append(consumer)
    sinks = []
    for n in range(WSE_SINKS):
        sink = EventSink(network, f"http://bench-sink-{n}")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        sinks.append(sink)
    # loss starts after setup: subscriptions are established reliably
    network.loss_rate = LOSS_RATE
    for n in range(EVENTS):
        broker.publish(_event(n), topic="bench")
    if reliable:
        broker.run_deliveries_until_idle()
    network.loss_rate = 0.0
    expected = EVENTS * (WSN_CONSUMERS + WSE_SINKS)
    delivered = sum(len(c.received) for c in consumers) + sum(
        len(s.received) for s in sinks
    )
    outcome = {
        "expected": expected,
        "delivered": delivered,
        "delivered_fraction": round(delivered / expected, 6),
        "wire_lost": network.stats.lost,
        "virtual_seconds": round(network.clock.now(), 9),
        "surviving_subscriptions": broker.subscription_count(),
    }
    if reliable:
        outcome["pipeline"] = broker.delivery_manager.stats.snapshot()
        outcome["dlq_depth"] = len(broker.delivery_manager.dlq)
    return outcome


def run_firewall_scenario(*, seed: int = SEED) -> dict:
    """A firewalled consumer misses every push; content parks broker-side
    and drains through the stock WSN pull client."""
    network = SimulatedNetwork(VirtualClock(), seed=seed)
    network.add_zone("corp-lan", blocks_inbound=True)
    broker = WsMessenger(
        network, "http://bench-broker", delivery=RELIABLE, delivery_seed=seed
    )
    consumer = NotificationConsumer(network, "http://fw-consumer", zone="corp-lan")
    WsnSubscriber(network, zone="corp-lan").subscribe(
        broker.epr(), consumer.epr(), topic="bench"
    )
    for n in range(EVENTS):
        broker.publish(_event(n), topic="bench")
    broker.run_deliveries_until_idle()
    box = broker.message_boxes.get("http://fw-consumer")
    parked = len(box) if box else 0
    drained = (
        len(PullPointClient(network, zone="corp-lan").get_messages(box.epr()))
        if box
        else 0
    )
    return {
        "published": EVENTS,
        "pushed_through_firewall": len(consumer.received),
        "parked": parked,
        "drained_by_pull": drained,
        "wire_refusals": network.stats.firewall_blocked,
        "breaker_state": broker.delivery_manager.breaker_state("http://fw-consumer"),
        "virtual_seconds": round(network.clock.now(), 9),
    }


def test_lossy_baseline(benchmark):
    """Best-effort push under 10% loss: most traffic never arrives."""
    benchmark(lambda: run_lossy_scenario(reliable=False))
    outcome = run_lossy_scenario(reliable=False)
    _results["baseline"] = outcome
    # the first lost notification kills its subscription, so the broker
    # bleeds consumers and the delivered fraction collapses
    assert outcome["delivered_fraction"] < 0.9
    assert outcome["surviving_subscriptions"] < WSN_CONSUMERS + WSE_SINKS


def test_lossy_reliable(benchmark):
    """The same wire with a retry policy: >= 99% eventual delivery."""
    benchmark(lambda: run_lossy_scenario(reliable=True))
    outcome = run_lossy_scenario(reliable=True)
    _results["reliable"] = outcome
    assert outcome["delivered_fraction"] >= 0.99
    assert outcome["surviving_subscriptions"] == WSN_CONSUMERS + WSE_SINKS
    assert outcome["pipeline"]["retries"] > 0


def test_firewall_store_and_forward(benchmark):
    benchmark(lambda: run_firewall_scenario())
    outcome = run_firewall_scenario()
    _results["firewall"] = outcome
    assert outcome["pushed_through_firewall"] == 0
    assert outcome["parked"] == EVENTS
    assert outcome["drained_by_pull"] == EVENTS


def test_write_reliability_report(benchmark):
    """Determinism gate + artifact: byte-identical at the same seed."""
    benchmark(lambda: None)  # the artifact below is the payload
    assert set(_results) == {"baseline", "reliable", "firewall"}

    def document() -> str:
        payload = {
            "benchmark": "delivery_reliability",
            "seed": SEED,
            "loss_rate": LOSS_RATE,
            "events": EVENTS,
            "consumers": {"wsn": WSN_CONSUMERS, "wse": WSE_SINKS},
            "policy": {
                "max_attempts": RELIABLE.max_attempts,
                "base_backoff": RELIABLE.base_backoff,
                "backoff_multiplier": RELIABLE.backoff_multiplier,
                "jitter": RELIABLE.jitter,
            },
            "baseline": run_lossy_scenario(reliable=False),
            "reliable": run_lossy_scenario(reliable=True),
            "firewall": run_firewall_scenario(),
        }
        return render_artifact(payload)

    first, second = document(), document()
    assert first == second, "artifact must be byte-identical at the same seed"
    RESULT_FILE.write_text(first)
    reliable = _results["reliable"]
    baseline = _results["baseline"]
    print()
    print(
        f"baseline delivered {baseline['delivered']}/{baseline['expected']}"
        f" ({baseline['delivered_fraction']:.1%})"
    )
    print(
        f"reliable delivered {reliable['delivered']}/{reliable['expected']}"
        f" ({reliable['delivered_fraction']:.1%},"
        f" {reliable['pipeline']['retries']} retries,"
        f" dlq={reliable['dlq_depth']})"
    )
