"""Ablation — one filtered publish->deliver round across all six systems.

Times an end-to-end notify (publish at the producer side, observed at the
consumer side, through each system's real marshalling path: CDR+GIOP for
CORBA, in-VM JMS dispatch, SOAP-over-simulated-HTTP for OGSI/WSE/WSN/broker)
and records the per-event wire cost.  The shape claim, matching Table 3's
architecture rows: binary RPC (CORBA) and in-VM JMS are cheaper per event
than XML-over-HTTP; the WS stacks buy interoperability with that overhead.
"""

from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.notification_service import FilterObject, NotificationChannel
from repro.baselines.corba.orb import Orb
from repro.baselines.jms.messages import TextMessage
from repro.baselines.jms.provider import JmsProvider
from repro.baselines.jms.session import Connection
from repro.baselines.ogsi.grid_service import NotificationSink, NotificationSource
from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

_wire_bytes: dict[str, int] = {}
_printed = False


def _payload(n=1):
    return parse_xml(f'<ev:E xmlns:ev="urn:bb"><ev:n>{n}</ev:n></ev:E>')


def test_corba_notification_roundtrip(benchmark):
    orb = Orb()
    channel = NotificationChannel(orb)
    received = []
    proxy = channel.new_for_consumers().obtain_structured_push_supplier()
    filter_object = FilterObject()
    filter_object.add_constraint("$kind == 'status'")
    proxy.add_filter(filter_object)
    proxy.connect_structured_push_consumer(
        orb.register(lambda op, args: received.append(args[0]))
    )
    supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
    event = StructuredEvent(type_name="E", filterable_data={"kind": "status"}, payload="<x/>")

    def round_trip():
        supplier.push_structured_event(event)

    benchmark(round_trip)
    assert received
    orb.bytes_routed = 0
    round_trip()
    _wire_bytes["corba"] = orb.bytes_routed


def test_jms_roundtrip(benchmark):
    provider = JmsProvider(VirtualClock())
    connection = Connection(provider, "bench")
    connection.start()
    session = connection.create_session()
    topic = provider.topic("bench")
    consumer = session.create_consumer(topic, "kind = 'status'")
    producer = session.create_producer(topic)

    def round_trip():
        message = TextMessage(text="<x/>")
        message.set_property("kind", "status")
        producer.send(message)
        assert consumer.receive() is not None

    benchmark(round_trip)
    _wire_bytes["jms"] = len("<x/>")  # in-VM dispatch; payload only


def test_ogsi_roundtrip(benchmark):
    network = SimulatedNetwork(VirtualClock())
    source = NotificationSource(network, "http://ogsi")
    source.declare_service_data("sd", text_element(QName("urn:bb", "v"), "0"))
    sink = NotificationSink(network, "http://ogsi-sink")
    source.subscribe("sd", sink.epr())
    counter = [0]

    def round_trip():
        counter[0] += 1
        assert source.set_service_data(
            "sd", text_element(QName("urn:bb", "v"), str(counter[0]))
        ) == 1

    benchmark(round_trip)
    network.stats.reset()
    round_trip()
    _wire_bytes["ogsi"] = network.stats.bytes_sent


def test_wse_roundtrip(benchmark):
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://wse")
    sink = EventSink(network, "http://wse-sink")
    WseSubscriber(network).subscribe(
        source.epr(),
        notify_to=sink.epr(),
        filter="/ev:E[ev:n >= 0]",
        filter_namespaces={"ev": "urn:bb"},
    )

    def round_trip():
        assert source.publish(_payload()) == 1

    benchmark(round_trip)
    network.stats.reset()
    round_trip()
    _wire_bytes["wse"] = network.stats.bytes_sent


def test_wsn_roundtrip(benchmark):
    network = SimulatedNetwork(VirtualClock())
    producer = NotificationProducer(network, "http://wsn")
    consumer = NotificationConsumer(network, "http://wsn-consumer")
    WsnSubscriber(network).subscribe(producer.epr(), consumer.epr(), topic="bench")

    def round_trip():
        assert producer.publish(_payload(), topic="bench") == 1

    benchmark(round_trip)
    network.stats.reset()
    round_trip()
    _wire_bytes["wsn"] = network.stats.bytes_sent


def test_broker_roundtrip(benchmark):
    network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker")
    sink = EventSink(network, "http://b-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())

    def round_trip():
        broker.publish(_payload())

    benchmark(round_trip)
    network.stats.reset()
    round_trip()
    _wire_bytes["broker"] = network.stats.bytes_sent


def test_wire_cost_shape(benchmark):
    """Binary CORBA frames beat XML-over-HTTP per event; the wrapped WSN
    Notify is heavier than the raw WSE body; the broker adds no wire cost
    over a direct WSE source for one WSE consumer."""
    benchmark(lambda: None)  # shape check over the numbers collected above
    needed = {"corba", "wse", "wsn", "broker"}
    assert needed <= set(_wire_bytes), "roundtrip benches must run first"
    assert _wire_bytes["corba"] < _wire_bytes["wse"]
    assert _wire_bytes["wse"] < _wire_bytes["wsn"]  # raw < wrapped
    assert _wire_bytes["broker"] <= _wire_bytes["wse"] * 1.2
    global _printed
    if not _printed:
        _printed = True
        print()
        for name, count in sorted(_wire_bytes.items(), key=lambda kv: kv[1]):
            print(f"  {name:8s}: {count:6d} bytes/event on the wire")
