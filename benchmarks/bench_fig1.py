"""Experiment E4 — regenerate Fig. 1 (WS-Eventing architecture).

Traces a full lifecycle (subscribe, renew, get-status, notify, unsubscribe,
source shutdown with SubscriptionEnd) and asserts the recorded entity graph
matches the paper's figure for both WSE versions.
"""

from repro.comparison import trace_wse_architecture
from repro.wse.versions import WseVersion

_printed = False


def test_fig1_trace(benchmark):
    trace = benchmark(trace_wse_architecture, WseVersion.V2004_08)
    assert trace.entities == [
        "Subscriber",
        "Event Source",
        "Subscription Manager",
        "Event Sink",
    ]
    assert trace.operations_between("Subscriber", "Event Source") == ["Subscribe"]
    assert set(trace.operations_between("Subscriber", "Subscription Manager")) == {
        "Renew",
        "GetStatus",
        "Unsubscribe",
    }
    assert "SubscriptionEnd" in trace.operations_between("Event Source", "Event Sink")
    global _printed
    if not _printed:
        _printed = True
        print()
        print(trace.render())
        print()
        print(trace_wse_architecture(WseVersion.V2004_01).render())
