"""Ablation — the cost of WS-* composition (experiment E10).

Measures per-delivery overhead of layering WS-Security-style signing and
WS-Reliability-style sequencing around an unmodified WS-Eventing exchange.
Shape claim: composition costs are bounded header-processing overhead — the
architectural reason the WS generation could afford to *remove* QoS from the
core specifications (section VI observation 4).
"""

from repro.composition import ReliableChannel, make_reliable, secure_endpoint, sign_envelope
from repro.transport import SimulatedNetwork, SoapClient, SoapEndpoint, VirtualClock
from repro.wsa import EndpointReference
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.xmlkit import parse_xml

KEY = b"bench-secret"
_bytes: dict[str, int] = {}
_printed = False


def _event():
    return parse_xml('<e:V xmlns:e="urn:bc"><e:n>1</e:n></e:V>')


def test_plain_delivery(benchmark):
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://plain-src")
    sink = EventSink(network, "http://plain-sink")
    WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())

    benchmark(lambda: source.publish(_event()))
    network.stats.reset()
    source.publish(_event())
    _bytes["plain"] = network.stats.bytes_sent


def test_signed_delivery(benchmark):
    network = SimulatedNetwork(VirtualClock())
    source = EventSource(network, "http://signed-src")
    source._client.envelope_filter = lambda envelope: sign_envelope(envelope, KEY)
    sink = EventSink(network, "http://signed-sink")
    secure_endpoint(sink.endpoint, KEY)
    subscriber = WseSubscriber(network)
    subscriber._client.envelope_filter = lambda envelope: sign_envelope(envelope, KEY)
    subscriber.subscribe(source.epr(), notify_to=sink.epr())

    def publish():
        assert source.publish(_event()) == 1

    benchmark(publish)
    assert sink.received
    network.stats.reset()
    publish()
    _bytes["signed"] = network.stats.bytes_sent


def test_reliable_delivery(benchmark):
    network = SimulatedNetwork(VirtualClock())
    received = []
    endpoint = SoapEndpoint(network, "http://rel-sink")
    endpoint.on_any(lambda envelope, headers: received.append(1) or None)
    make_reliable(endpoint)
    channel = ReliableChannel(SoapClient(network), EndpointReference("http://rel-sink"))

    benchmark(lambda: channel.send("urn:bc:Notify", _event()))
    assert received
    network.stats.reset()
    channel.send("urn:bc:Notify", _event())
    _bytes["reliable"] = network.stats.bytes_sent


def test_composition_overhead_bounded(benchmark):
    benchmark(lambda: None)
    assert {"plain", "signed", "reliable"} <= set(_bytes)
    # signing/sequencing add headers, not a new protocol: <60% byte overhead
    assert _bytes["signed"] < _bytes["plain"] * 1.6
    assert _bytes["reliable"] < _bytes["plain"] * 1.6
    global _printed
    if not _printed:
        _printed = True
        print()
        for name, count in sorted(_bytes.items(), key=lambda kv: kv[1]):
            factor = count / _bytes["plain"]
            print(f"  {name:9s}: {count:6d} bytes/event ({factor:.2f}x plain)")
