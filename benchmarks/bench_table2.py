"""Experiment E2 — regenerate Table 2 (function comparison).

Each row's mapping is *executed* (Subscribe/Renew/Unsubscribe natively;
GetStatus and SubscriptionEnd through WSRF on the WSN side; Pause/Resume and
GetCurrentMessage confirmed WSN-only) before its cell text is emitted.
"""

from repro.comparison import PAPER_TABLE2, build_table2

_printed = False


def test_table2_regeneration(benchmark):
    measured = benchmark(build_table2)
    diff = measured.diff(PAPER_TABLE2)
    assert diff.clean, diff.summary()
    global _printed
    if not _printed:
        _printed = True
        print()
        print(measured.render(label_width=28, cell_width=52))
        print()
        print("Table 2:", diff.summary())
