"""Ablation — evaluation cost of the four filter languages of Table 3.

Times a matching filter of each generation against a representative event:
topic-tree matching (WS-Topics Full dialect), XPath content filtering
(WSE/WSN), the JMS SQL92-subset selector, and the CORBA extended-TCL
constraint.  The shape claim: topic matching is the cheapest (string
hierarchy walk), content-based XPath the most expensive (document walk) —
the expressiveness/cost trade-off behind the paper's observation (3).
"""

from repro.filters import FilterContext, MessageContentFilter, TopicDialect, TopicExpression
from repro.filters.selector import MessageSelector
from repro.filters.tcl import TclConstraint
from repro.xmlkit import parse_xml

PAYLOAD = parse_xml(
    '<ev:Status xmlns:ev="urn:bf"><ev:job>job-42</ev:job>'
    "<ev:progress>75</ev:progress><ev:severity>warning</ev:severity></ev:Status>"
)
CONTEXT = FilterContext(PAYLOAD, topic="jobs/job-42/status")
JMS_FIELDS = {"JMSPriority": 5, "progress": 75, "severity": "warning"}
CORBA_EVENT = {
    "header": {
        "fixed_header": {"event_type": {"domain_name": "grid", "type_name": "Status"}, "event_name": "s"},
        "variable_header": {},
    },
    "filterable_data": {"progress": 75, "severity": "warning"},
    "variable_header": {},
}

_timings = {}
_printed = False


def test_topic_expression_matching(benchmark):
    expression = TopicExpression("jobs/*/status | system//.", TopicDialect.FULL)
    result = benchmark(expression.matches, "jobs/job-42/status")
    assert result


def test_xpath_content_filter(benchmark):
    content = MessageContentFilter(
        "/ev:Status[ev:progress > 50 and contains(ev:job, 'job')]", {"ev": "urn:bf"}
    )
    result = benchmark(content.matches, CONTEXT)
    assert result


def test_jms_selector(benchmark):
    selector = MessageSelector("progress > 50 AND severity IN ('warning', 'error')")
    result = benchmark(selector.matches, JMS_FIELDS)
    assert result


def test_corba_tcl_constraint(benchmark):
    constraint = TclConstraint("$progress > 50 and $severity == 'warning'")
    result = benchmark(constraint.matches, CORBA_EVENT)
    assert result


def test_filter_cost_shape(benchmark):
    """Topic matching must be the cheapest; XPath the most expensive."""
    benchmark(lambda: None)  # shape check; timings measured below with timeit
    import timeit

    topic = TopicExpression("jobs/*/status", TopicDialect.FULL)
    xpath = MessageContentFilter("/ev:Status[ev:progress > 50]", {"ev": "urn:bf"})
    selector = MessageSelector("progress > 50")
    constraint = TclConstraint("$progress > 50")
    runs = 2000
    timings = {
        "topic": timeit.timeit(lambda: topic.matches("jobs/job-42/status"), number=runs),
        "xpath": timeit.timeit(lambda: xpath.matches(CONTEXT), number=runs),
        "selector": timeit.timeit(lambda: selector.matches(JMS_FIELDS), number=runs),
        "tcl": timeit.timeit(lambda: constraint.matches(CORBA_EVENT), number=runs),
    }
    assert timings["topic"] < timings["xpath"], timings
    global _printed
    if not _printed:
        _printed = True
        print()
        for name, seconds in sorted(timings.items(), key=lambda kv: kv[1]):
            print(f"  {name:9s}: {seconds / runs * 1e6:8.2f} us/match")
