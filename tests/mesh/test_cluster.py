"""Mesh delivery semantics: exactly-once, byte-fidelity, any entry node.

The mesh's contract (see the conformance ``mesh`` engine for the fuzzed
version): wherever a publish enters and wherever a subscription lives, every
matching consumer sees each message exactly once, payload byte-identical,
topic preserved.
"""

from repro.mesh import MeshCluster
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink
from repro.wsn import NotificationConsumer
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import serialize_xml


def make_mesh(shards=3):
    network = SimulatedNetwork(VirtualClock())
    return network, MeshCluster(network, shards, base_address="http://clustest")


def test_cross_shard_publish_delivers_exactly_once_from_any_entry():
    network, mesh = make_mesh()
    owner = mesh.owner_node_of_topic("jobs/status")
    home = next(node for node in mesh if node.name != owner.name)
    consumer = NotificationConsumer(network, "http://clus-consumer")
    mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=home.name)

    payload = parse_xml('<job xmlns="urn:x"><id>7</id></job>')
    for entry in list(mesh):  # one publish at every entry node
        mesh.publish(payload.copy(), topic="jobs/status", via=entry.name)

    assert len(consumer.received) == len(mesh.nodes)
    for item in consumer.received:
        assert serialize_xml(item.payload) == serialize_xml(payload)
        assert item.topic == "jobs/status"


def test_colocated_consumer_is_not_double_delivered():
    network, mesh = make_mesh()
    owner = mesh.owner_node_of_topic("jobs/status")
    consumer = NotificationConsumer(network, "http://clus-local")
    mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=owner.name)
    other = next(node for node in mesh if node.name != owner.name)

    mesh.publish(parse_xml("<a/>"), topic="jobs/status", via=owner.name)
    mesh.publish(parse_xml("<b/>"), topic="jobs/status", via=other.name)

    # one delivery per publish: local fan-out and federation never overlap
    assert len(consumer.received) == 2


def test_topicless_publishes_reach_a_broadcast_wse_sink_once():
    network, mesh = make_mesh()
    sink = EventSink(network, "http://clus-sink")
    mesh.subscribe_wse(sink.address, home=1)

    tick, tock = parse_xml("<tick/>"), parse_xml("<tock/>")
    mesh.publish(tick.copy(), via=0)  # no topic: routes by the reserved key
    mesh.publish(tock.copy(), via=2)

    assert [serialize_xml(item.payload) for item in sink.received] == [
        serialize_xml(tick),
        serialize_xml(tock),
    ]


def test_non_matching_topics_stay_silent():
    network, mesh = make_mesh()
    consumer = NotificationConsumer(network, "http://clus-quiet")
    mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=0)
    mesh.publish(parse_xml("<x/>"), topic="billing/run", via=0)
    mesh.publish(parse_xml("<y/>"), topic="billing/run", via=1)
    assert consumer.received == []


def test_default_entry_is_the_owner():
    from repro.obs.instrument import Instrumentation

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    mesh = MeshCluster(network, 3, base_address="http://clusdefault")
    mesh.publish(parse_xml("<z/>"), topic="grid/load")
    # default via is the topic's owner: the fast path never forwards
    forwarded = instrumentation.metrics.counter_values("mesh.forwarded_publishes")
    owned = instrumentation.metrics.counter_values("mesh.owned_publishes")
    assert sum(forwarded.values()) == 0
    assert sum(owned.values()) == 1
