"""Rebalancing under live traffic: join/leave must lose and duplicate nothing.

Each test drives real publishes on the virtual clock around a membership
change and then asks ``obs-audit``'s :func:`~repro.obs.audit.audit` — with
the cluster's federation sinks, so the mesh-wide invariants are on — to
certify conservation before *and* after the cutover.  The moved-key sets
returned by ``join``/``leave`` are asserted against the consistent-hashing
guarantee (movement only toward the joiner / away from the leaver).
"""

from repro.mesh import MeshCluster
from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa.headers import reset_message_counter
from repro.wse import EventSink
from repro.wsn import NotificationConsumer
from repro.xmlkit import parse_xml

TOPICS = ("jobs/status", "billing/run", None, "jobs/status")


def make_instrumented_mesh(shards):
    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    mesh = MeshCluster(network, shards, base_address="http://rebal")
    return network, instrumentation, mesh


def run_traffic(mesh, tag):
    """One round: every topic published once, entry nodes rotating."""
    members = [node.name for node in mesh]
    for index, topic in enumerate(TOPICS):
        payload = parse_xml(f'<m tag="{tag}" n="{index}"/>')
        mesh.publish(payload, topic=topic, via=members[index % len(members)])
    mesh.quiesce()


def assert_green(instrumentation, mesh, scenario):
    result = audit(
        instrumentation,
        scenario=scenario,
        federation_sinks=mesh.federation_sinks(),
    )
    assert result.passed, [finding.render() for finding in result.findings]
    return result


def test_join_under_live_traffic_conserves_every_message():
    network, instrumentation, mesh = make_instrumented_mesh(2)
    consumer = NotificationConsumer(network, "http://rebal-consumer")
    mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=0)
    sink = EventSink(network, "http://rebal-sink")
    mesh.subscribe_wse(sink.address, home=1)

    run_traffic(mesh, "before")
    assert_green(instrumentation, mesh, "before-join")

    joiner, moved = mesh.join()
    # consistent hashing: keys only ever move *to* the joining shard
    assert all(new == joiner.name for _, new in moved.values())
    assert len(mesh.nodes) == 3

    run_traffic(mesh, "after")
    result = assert_green(instrumentation, mesh, "after-join")

    # zero lost, zero duplicated: 2 jobs publishes per round for the WSN
    # consumer, every publish for the unfiltered WSE sink
    assert len(consumer.received) == 4
    assert len(sink.received) == 2 * len(TOPICS)
    assert result.opened == result.delivered
    assert result.pending == 0


def test_leave_rehomes_subscriptions_and_conserves():
    network, instrumentation, mesh = make_instrumented_mesh(3)
    departing = mesh.node(2)
    consumer = NotificationConsumer(network, "http://rebal-leave-consumer")
    record = mesh.subscribe_wsn(
        consumer.address, topic="jobs/status", home=departing.name
    )
    sink = EventSink(network, "http://rebal-leave-sink")
    wse_record = mesh.subscribe_wse(sink.address, home=departing.name)

    run_traffic(mesh, "before")
    assert_green(instrumentation, mesh, "before-leave")
    received_before = len(consumer.received)

    moved = mesh.leave(departing.name)
    # keys only ever move *away from* the leaving shard
    assert all(old == departing.name for old, _ in moved.values())
    assert departing.name not in mesh.nodes
    assert record.home != departing.name
    assert wse_record.home != departing.name

    run_traffic(mesh, "after")
    result = assert_green(instrumentation, mesh, "after-leave")

    assert len(consumer.received) == 2 * received_before
    assert len(sink.received) == 2 * len(TOPICS)
    assert result.opened == result.delivered
    assert result.pending == 0


def test_join_then_leave_round_trip_keeps_delivering():
    network, instrumentation, mesh = make_instrumented_mesh(2)
    consumer = NotificationConsumer(network, "http://rebal-rt-consumer")
    mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=1)

    run_traffic(mesh, "r1")
    joiner, _ = mesh.join()
    run_traffic(mesh, "r2")
    mesh.leave(joiner.name)
    run_traffic(mesh, "r3")

    assert len(consumer.received) == 3 * 2  # 2 jobs publishes per round
    assert_green(instrumentation, mesh, "round-trip")
