"""Routing keys and the versioned shard-map registry."""

import pytest

from repro.filters.topics import TopicDialect, TopicExpression
from repro.mesh.shardmap import (
    ShardMapRegistry,
    TOPICLESS_KEY,
    routing_key_of_topic,
    routing_keys_of_expression,
)

KEYS = [f"k{i}" for i in range(100)] + [TOPICLESS_KEY]


class TestRoutingKeys:
    def test_topic_routes_by_its_root(self):
        assert routing_key_of_topic("jobs") == "jobs"
        assert routing_key_of_topic("jobs/status/ok") == "jobs"
        assert routing_key_of_topic("/jobs/status") == "jobs"

    def test_topicless_routes_by_the_reserved_key(self):
        assert routing_key_of_topic(None) == TOPICLESS_KEY
        assert routing_key_of_topic("   ") == TOPICLESS_KEY

    def test_no_filter_needs_every_shard(self):
        assert routing_keys_of_expression(None) is None

    def test_concrete_expression_pins_one_root(self):
        expr = TopicExpression("jobs/status", TopicDialect.CONCRETE)
        assert routing_keys_of_expression(expr) == {"jobs"}

    def test_full_union_pins_each_branch_root(self):
        expr = TopicExpression("jobs//.|billing/run", TopicDialect.FULL)
        assert routing_keys_of_expression(expr) == {"jobs", "billing"}

    def test_root_wildcard_needs_every_shard(self):
        assert (
            routing_keys_of_expression(TopicExpression("*/status", TopicDialect.FULL))
            is None
        )

    def test_one_wild_branch_poisons_the_union(self):
        expr = TopicExpression("jobs/x|*/y", TopicDialect.FULL)
        assert routing_keys_of_expression(expr) is None


class TestRegistry:
    def test_versions_are_monotonic(self):
        registry = ShardMapRegistry(["a", "b"], vnodes=8)
        assert registry.current.version == 1
        assert registry.join("c").version == 2
        assert registry.leave("a").version == 3
        assert registry.version_at(2).members == ("a", "b", "c")

    def test_duplicate_join_and_unknown_leave_rejected(self):
        registry = ShardMapRegistry(["a"], vnodes=8)
        with pytest.raises(ValueError):
            registry.join("a")
        with pytest.raises(ValueError):
            registry.leave("zzz")

    def test_join_moves_keys_only_to_the_joiner(self):
        registry = ShardMapRegistry(["a", "b"], vnodes=8)
        registry.join("c")
        moved = registry.moved_keys(KEYS)
        assert all(new == "c" for _, new in moved.values())

    def test_moved_keys_since_spans_versions(self):
        registry = ShardMapRegistry(["a", "b"], vnodes=8)
        registry.join("c")
        registry.leave("c")
        # v1 -> v3 is the same membership: nothing moved end to end
        assert registry.moved_keys(KEYS, since=1) == {}
        # v2 -> v3 undoes the join: everything that moves leaves "c"
        assert all(
            old == "c" for old, _ in registry.moved_keys(KEYS, since=2).values()
        )

    def test_single_version_has_no_movement(self):
        assert ShardMapRegistry(["a"], vnodes=8).moved_keys(KEYS) == {}

    def test_maps_are_immutable_snapshots(self):
        registry = ShardMapRegistry(["a", "b"], vnodes=8)
        snapshot = registry.fetch()
        registry.join("c")
        assert snapshot.members == ("a", "b")
        assert registry.current.members == ("a", "b", "c")
