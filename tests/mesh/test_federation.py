"""Federation links: coverage aggregation and link lifecycle.

Links are derived state — a pure function of the node's local subscription
needs and the current ring — so the tests assert the derived link set after
each subscribe/unsubscribe, plus the teardown path against a peer that
vanished without a goodbye.
"""

from repro.mesh import MeshCluster, aggregate_coverage, link_topic_expression
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink
from repro.wsn import NotificationConsumer


def counter_total(instrumentation, site):
    values = instrumentation.metrics.counter_values("obs.swallowed_errors_total")
    return sum(v for k, v in values.items() if f"site={site}" in k)


class TestCoverage:
    def test_expression_unions_sorted_roots(self):
        assert link_topic_expression(None) is None
        assert link_topic_expression(frozenset({"b", "a"})) == "a//.|b//."

    def test_roots_group_by_owner_skipping_self(self):
        owner_of = {"jobs": "n0", "billing": "n1", "grid": "n2"}.__getitem__
        coverage = aggregate_coverage(
            {"s1": {"jobs", "billing"}, "s2": {"grid"}},
            owner_of,
            self_name="n0",
            peers=["n0", "n1", "n2"],
        )
        assert coverage == {"n1": frozenset({"billing"}), "n2": frozenset({"grid"})}

    def test_one_wildcard_need_forces_broadcast_to_all_peers(self):
        coverage = aggregate_coverage(
            {"s1": {"jobs"}, "s2": None},
            lambda root: "n0",
            self_name="n0",
            peers=["n0", "n1", "n2"],
        )
        assert coverage == {"n1": None, "n2": None}

    def test_no_needs_no_links(self):
        assert aggregate_coverage({}, lambda r: "n0", self_name="n0", peers=["n0"]) == {}


class TestLinkLifecycle:
    def make_mesh(self, shards=3):
        network = SimulatedNetwork(VirtualClock())
        return network, MeshCluster(network, shards, base_address="http://fedtest")

    def test_cross_shard_subscription_creates_one_root_link(self):
        network, mesh = self.make_mesh()
        owner = mesh.owner_node_of_topic("jobs/status")
        home = next(node for node in mesh if node.name != owner.name)
        consumer = NotificationConsumer(network, "http://fed-consumer")
        record = mesh.subscribe_wsn(
            consumer.address, topic="jobs/status", home=home.name
        )
        assert home.links.links() == {owner.name: frozenset({"jobs"})}
        assert owner.exchange.has_subscriptions()

        mesh.unsubscribe(record)
        assert home.links.links() == {}

    def test_colocated_subscription_needs_no_link(self):
        network, mesh = self.make_mesh()
        owner = mesh.owner_node_of_topic("jobs/status")
        consumer = NotificationConsumer(network, "http://fed-local")
        mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=owner.name)
        assert owner.links.links() == {}

    def test_wse_subscription_broadcast_links_to_every_peer(self):
        network, mesh = self.make_mesh()
        sink = EventSink(network, "http://fed-sink")
        record = mesh.subscribe_wse(sink.address, home=0)
        home = mesh.node(record.home)
        peers = [node.name for node in mesh if node.name != home.name]
        assert home.links.links() == {peer: None for peer in peers}

    def test_broadcast_subsumes_root_links(self):
        network, mesh = self.make_mesh()
        home = mesh.node(0)
        owner = mesh.owner_node_of_topic("jobs/x")
        if owner.name == home.name:  # make the topic link cross-shard
            home = mesh.node(1)
        consumer = NotificationConsumer(network, "http://fed-both")
        mesh.subscribe_wsn(consumer.address, topic="jobs/x", home=home.name)
        mesh.subscribe_wse("http://fed-both-sink", home=home.name)
        # one link per peer, all broadcast — never a second overlapping link
        assert all(coverage is None for coverage in home.links.links().values())

    def test_dropping_link_to_a_dead_peer_counts_the_swallow(self):
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        mesh = MeshCluster(network, 2, base_address="http://fedswallow")
        owner = mesh.owner_node_of_topic("jobs/x")
        home = next(node for node in mesh if node.name != owner.name)
        consumer = NotificationConsumer(network, "http://fed-dead-consumer")
        mesh.subscribe_wsn(consumer.address, topic="jobs/x", home=home.name)
        assert list(home.links.links()) == [owner.name]

        owner.exchange.close()  # the peer vanishes without a goodbye
        home.links.sync({})  # ...the teardown still completes
        assert home.links.links() == {}
        assert counter_total(instrumentation, "mesh.federation.unsubscribe") == 1
