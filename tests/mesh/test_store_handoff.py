"""Durable shard handoff: a departing node ships its event log segment.

With ``store_factory`` every mesh node appends its shard's history to an
event log.  When a node dies, its successor does not need the old process:
it replays the shipped log segment (:func:`repro.store.recover_broker`) and
takes over the shard's front door with the subscription population — and
identifiers — intact, so peers' forwarded publishes keep landing.
"""

from repro.mesh import MeshCluster
from repro.store import BrokerStore, MemoryEventLog, recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import NotificationConsumer
from repro.xmlkit import parse_xml


def make_mesh(network):
    return MeshCluster(
        network,
        3,
        base_address="http://hand",
        store_factory=lambda name: BrokerStore(MemoryEventLog()),
    )


def payload(n):
    return parse_xml(f'<m xmlns="urn:hand"><n>{n}</n></m>')


def test_every_node_gets_its_own_log():
    network = SimulatedNetwork(VirtualClock())
    mesh = make_mesh(network)
    logs = {node.name: node.broker.store.log for node in mesh}
    assert len(logs) == 3
    assert len({id(log) for log in logs.values()}) == 3


def test_forwarded_publish_is_routed_at_origin_and_owned_at_owner():
    network = SimulatedNetwork(VirtualClock())
    mesh = make_mesh(network)
    owner = mesh.owner_node_of_topic("hand/t")
    origin = next(node for node in mesh if node.name != owner.name)
    consumer = NotificationConsumer(network, "http://hand-consumer")
    mesh.subscribe_wsn(consumer.address, topic="hand/t", home=owner.name)
    mesh.publish(payload(1), topic="hand/t", via=origin.name)
    assert len(consumer.received) == 1
    origin_kinds = [entry["kind"] for entry in origin.log_segment()]
    assert "publish" in origin_kinds
    # the origin settled its copy as routed: the owner is responsible now
    routed = [
        entry
        for entry in origin.log_segment()
        if entry["kind"] == "outcome" and entry["outcome"] == "routed"
    ]
    assert len(routed) == 1
    # the owner's log carries the ingested publish and the real delivery
    owner_outcomes = {
        entry["outcome"]
        for entry in owner.log_segment()
        if entry["kind"] == "outcome"
    }
    assert owner_outcomes == {"delivered"}


def test_successor_takes_over_the_shard_from_the_log_segment():
    network = SimulatedNetwork(VirtualClock())
    mesh = make_mesh(network)
    owner = mesh.owner_node_of_topic("hand/t")
    origin = next(node for node in mesh if node.name != owner.name)
    consumer = NotificationConsumer(network, "http://hand-consumer")
    mesh.subscribe_wsn(consumer.address, topic="hand/t", home=owner.name)
    mesh.publish(payload(1), topic="hand/t", via=origin.name)
    assert len(consumer.received) == 1

    # the owner dies; the segment it shipped is all the successor needs
    segment = owner.log_segment()
    owner.close()
    handoff_log = MemoryEventLog()
    handoff_log.extend(segment)
    successor = recover_broker(network, owner.address, handoff_log)
    assert successor.subscription_count() == 1
    # pre-crash messages are settled history, not re-deliveries
    assert len(consumer.received) == 1

    # peers still forward to the same front door; traffic flows again
    mesh.publish(payload(2), topic="hand/t", via=origin.name)
    assert len(consumer.received) == 2
    texts = [item.payload.full_text() for item in consumer.received]
    assert texts == ["1", "2"]


def test_replaying_origin_log_does_not_double_publish():
    """A routed publish replays as settled: the owner handled it."""
    network = SimulatedNetwork(VirtualClock())
    mesh = make_mesh(network)
    owner = mesh.owner_node_of_topic("hand/t")
    origin = next(node for node in mesh if node.name != owner.name)
    consumer = NotificationConsumer(network, "http://hand-consumer")
    mesh.subscribe_wsn(consumer.address, topic="hand/t", home=owner.name)
    mesh.publish(payload(1), topic="hand/t", via=origin.name)
    assert len(consumer.received) == 1
    # rebuild the *origin* from its own log: its routed publish must not
    # fan out again anywhere (locally or via a second forward)
    segment = origin.log_segment()
    origin.close()
    log = MemoryEventLog()
    log.extend(segment)
    recover_broker(network, origin.address, log)
    assert len(consumer.received) == 1
