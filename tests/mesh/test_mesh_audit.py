"""The mesh-wide audit invariants: per-sink conservation, federation
continuity, and hop classification.

Unit level: each new invariant firing on a hand-built ledger whose *global*
books balance — exactly the violations the single-broker audit cannot see.
Integration level: a real cross-shard flow audits green with its hops
classified as federation traffic.
"""

from repro.mesh import MeshCluster
from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa.headers import reset_message_counter
from repro.wsn import NotificationConsumer
from repro.xmlkit import parse_xml

FED = frozenset({"http://mesh/owner"})


def make_instrumentation():
    network = SimulatedNetwork(VirtualClock())
    return Instrumentation.attach(network)


def invariants(result):
    return {finding.invariant for finding in result.findings}


class TestPerSinkConservation:
    def test_duplicate_delivery_caught_despite_balanced_global_books(self):
        instrumentation = make_instrumentation()
        ledger = instrumentation.ledger
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://a")
        ledger.record("lin-1", "enqueued", sink="http://b")
        ledger.record("lin-1", "delivered", sink="http://a")
        ledger.record("lin-1", "delivered", sink="http://a")  # dup; b starved

        result = audit(instrumentation, federation_sinks=FED)
        # globally 2 opened / 2 closed: the old invariant is blind to it
        assert "conservation" not in invariants(result)
        assert "per-sink-conservation" in invariants(result)

    def test_balanced_sinks_pass(self):
        instrumentation = make_instrumentation()
        ledger = instrumentation.ledger
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://a")
        ledger.record("lin-1", "delivered", sink="http://a")
        result = audit(instrumentation, federation_sinks=FED)
        assert "per-sink-conservation" not in invariants(result)

    def test_mesh_invariants_off_without_sinks(self):
        instrumentation = make_instrumentation()
        ledger = instrumentation.ledger
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://a")
        ledger.record("lin-1", "delivered", sink="http://a")
        ledger.record("lin-1", "delivered", sink="http://a")
        ledger.record("lin-1", "enqueued", sink="http://b")
        result = audit(instrumentation)  # single-broker audit: unchanged
        assert not result.mesh_audited
        assert "per-sink-conservation" not in invariants(result)
        assert "federation" not in result.to_dict()


class TestFederationContinuity:
    def test_hop_that_never_republishes_is_flagged(self):
        instrumentation = make_instrumentation()
        ledger = instrumentation.ledger
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://mesh/owner")
        ledger.record("lin-1", "delivered", sink="http://mesh/owner")

        result = audit(instrumentation, federation_sinks=FED)
        assert "federation-continuity" in invariants(result)
        assert result.federation_delivered == 1
        assert result.consumer_delivered == 0

    def test_mediated_hop_passes(self):
        instrumentation = make_instrumentation()
        ledger = instrumentation.ledger
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://mesh/owner")
        ledger.record("lin-1", "delivered", sink="http://mesh/owner")
        ledger.record("lin-1", "mediated", count=1)
        ledger.record("lin-1", "enqueued", sink="http://consumer")
        ledger.record("lin-1", "delivered", sink="http://consumer")

        result = audit(instrumentation, federation_sinks=FED)
        assert "federation-continuity" not in invariants(result)
        assert result.federation_delivered == 1
        assert result.consumer_delivered == 1
        assert result.mesh_audited
        assert result.to_dict()["federation"] == {
            "federation_delivered": 1,
            "consumer_delivered": 1,
        }


class TestMeshFlowAudit:
    def test_cross_shard_flow_audits_green_with_hops_classified(self):
        reset_message_counter()
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        mesh = MeshCluster(network, 2, base_address="http://audmesh")
        owner = mesh.owner_node_of_topic("jobs/status")
        home = next(node for node in mesh if node.name != owner.name)
        consumer = NotificationConsumer(network, "http://aud-consumer")
        mesh.subscribe_wsn(consumer.address, topic="jobs/status", home=home.name)

        mesh.publish(parse_xml("<j/>"), topic="jobs/status", via=home.name)
        mesh.quiesce()

        result = audit(
            instrumentation,
            scenario="cross-shard",
            federation_sinks=mesh.federation_sinks(),
        )
        assert result.passed, [finding.render() for finding in result.findings]
        # forward hop (home -> owner front door) + link hop (owner exchange
        # -> home ingest), then exactly one consumer-facing delivery
        assert result.federation_delivered == 2
        assert result.consumer_delivered == 1
        assert len(consumer.received) == 1
