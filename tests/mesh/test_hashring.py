"""Properties of the consistent-hash ring.

The mesh's correctness leans on two ring properties: placement is a pure
function of (member names, vnodes) — every node derives the same ring from
the same shard map — and membership changes move only the keys whose arc
the joining/leaving member covers.  Both are asserted as properties over a
key population, not as golden owner assignments.
"""

import pytest

from repro.mesh.hashring import HashRing, _ring_hash

KEYS = [f"topic-{i}" for i in range(200)] + [""]  # incl. the topicless key


class TestPlacement:
    def test_deterministic_across_insertion_order(self):
        a = HashRing(["n0", "n1", "n2"])
        b = HashRing(["n2", "n0", "n1"])
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_deterministic_across_instances(self):
        owners = [HashRing(["a", "b", "c"]).owner(k) for k in KEYS]
        assert owners == [HashRing(["a", "b", "c"]).owner(k) for k in KEYS]

    def test_every_member_owns_some_keys(self):
        ring = HashRing([f"n{i}" for i in range(4)])
        assert {ring.owner(k) for k in KEYS} == set(ring.members())

    def test_wraps_past_the_highest_point(self):
        ring = HashRing(["a", "b"], vnodes=1)
        highest = max(ring._points)
        key = next(
            k for k in (f"wrap-{i}" for i in range(10_000))
            if _ring_hash(k) > highest
        )
        # circular: the key past the last point belongs to the first point
        assert ring.owner(key) == ring._owners[0]


class TestMovement:
    def test_join_moves_keys_only_to_the_joiner(self):
        before = HashRing(["n0", "n1", "n2"])
        after = HashRing(["n0", "n1", "n2"])
        after.add("n3")
        moved = before.moved_keys(after, KEYS)
        assert moved  # with 201 keys and 64 vnodes something must move
        assert all(new == "n3" for _, new in moved.values())

    def test_leave_moves_exactly_the_leavers_keys(self):
        before = HashRing(["n0", "n1", "n2", "n3"])
        after = HashRing(["n0", "n1", "n2", "n3"])
        after.remove("n3")
        moved = before.moved_keys(after, KEYS)
        assert sorted(moved) == sorted(k for k in KEYS if before.owner(k) == "n3")
        assert all(old == "n3" and new != "n3" for old, new in moved.values())

    def test_movement_is_bounded(self):
        # consistent hashing moves ~1/n of the key space; hash % n would
        # reshuffle ~all of it — assert we are on the right side of that
        before = HashRing([f"n{i}" for i in range(4)])
        after = HashRing([f"n{i}" for i in range(4)])
        after.add("n4")
        moved = before.moved_keys(after, KEYS)
        assert 0 < len(moved) < len(KEYS) / 2

    def test_unmoved_keys_keep_their_owner(self):
        before = HashRing(["n0", "n1"])
        after = HashRing(["n0", "n1"])
        after.add("n2")
        moved = before.moved_keys(after, KEYS)
        for key in KEYS:
            if key not in moved:
                assert before.owner(key) == after.owner(key)


class TestEdges:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(LookupError):
            HashRing().owner("k")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_empty_member_name_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["ok"]).add("")

    def test_duplicate_add_is_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring._points) == ring.vnodes

    def test_remove_unknown_member_raises(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")
