"""Every example script must run clean end-to-end (they self-assert)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_discovered():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "grid_monitoring",
        "mediation_demo",
        "firewall_pullpoint",
        "legacy_bridge",
        "spec_evolution_report",
    } <= names
