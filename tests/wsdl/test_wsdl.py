"""Tests for WSDL generation: version-faithful service descriptions."""

import pytest

from repro.wsdl import (
    wsdl_for_converged_source,
    wsdl_for_wse_source,
    wsdl_for_wsn_producer,
)
from repro.wsdl.generator import WSDL_NS, WSDL_SOAP_NS
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.names import QName


class TestWseWsdl:
    def test_08_has_three_port_types(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        names = [pt.name for pt in definition.port_types]
        assert names == ["EventSource", "SubscriptionManager", "EventSink"]

    def test_01_manager_merged_into_source(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_01)
        names = [pt.name for pt in definition.port_types]
        assert "SubscriptionManager" not in names
        source_ops = definition.port_type("EventSource").operation_names()
        assert {"Subscribe", "Renew", "Unsubscribe"} <= set(source_ops)

    def test_01_has_no_get_status_or_pull(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_01)
        all_ops = {op.name for op in definition.all_operations()}
        assert "GetStatus" not in all_ops
        assert "Pull" not in all_ops

    def test_08_manager_operations(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        ops = definition.port_type("SubscriptionManager").operation_names()
        assert ops == ["Renew", "GetStatus", "Unsubscribe", "Pull"]

    def test_subscription_end_is_one_way(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        end = definition.port_type("EventSink").operations[0]
        assert end.one_way

    def test_target_namespace_per_version(self):
        for version in WseVersion:
            assert wsdl_for_wse_source(version).target_namespace == version.namespace


class TestWsnWsdl:
    def test_13_native_plus_wsrf_operations(self):
        definition = wsdl_for_wsn_producer(WsnVersion.V1_3)
        ops = set(definition.port_type("SubscriptionManager").operation_names())
        assert {"Renew", "Unsubscribe", "PauseSubscription", "ResumeSubscription"} <= ops
        assert {"GetResourceProperty", "SetTerminationTime", "Destroy"} <= ops

    def test_13_without_wsrf(self):
        definition = wsdl_for_wsn_producer(WsnVersion.V1_3, include_wsrf=False)
        ops = set(definition.port_type("SubscriptionManager").operation_names())
        assert "GetResourceProperty" not in ops
        assert "Renew" in ops

    def test_10_wsrf_only_lifetime(self):
        definition = wsdl_for_wsn_producer(WsnVersion.V1_0)
        ops = set(definition.port_type("SubscriptionManager").operation_names())
        assert "Renew" not in ops and "Unsubscribe" not in ops
        assert {"SetTerminationTime", "Destroy"} <= ops  # mandatory WSRF

    def test_producer_operations(self):
        definition = wsdl_for_wsn_producer(WsnVersion.V1_3)
        assert definition.port_type("NotificationProducer").operation_names() == [
            "Subscribe",
            "GetCurrentMessage",
        ]

    def test_notify_is_one_way(self):
        definition = wsdl_for_wsn_producer(WsnVersion.V1_3)
        notify = definition.port_type("NotificationConsumer").operations[0]
        assert notify.one_way


class TestConvergedWsdl:
    def test_union_operations(self):
        definition = wsdl_for_converged_source()
        all_ops = {op.name for op in definition.all_operations()}
        # WSE contributions and WSN contributions side by side
        assert {"GetStatus", "Pull", "SubscriptionEnd"} <= all_ops
        assert {"PauseSubscription", "ResumeSubscription", "GetCurrentMessage"} <= all_ops


class TestRendering:
    def test_document_is_well_formed_and_complete(self):
        definition = wsdl_for_wse_source(
            WseVersion.V2004_08, address="http://source.example"
        )
        document = parse_xml(definition.to_xml())
        assert document.name == QName(WSDL_NS, "definitions")
        port_types = document.find_all(QName(WSDL_NS, "portType"))
        assert len(port_types) == 3
        messages = document.find_all(QName(WSDL_NS, "message"))
        # every operation has an In message; request/replies add Out messages
        assert len(messages) == sum(
            1 + (0 if op.one_way else 1) for op in definition.all_operations()
        )

    def test_binding_and_service_present_with_address(self):
        definition = wsdl_for_wsn_producer(
            WsnVersion.V1_3, address="http://producer.example"
        )
        document = parse_xml(definition.to_xml())
        assert document.find_all(QName(WSDL_NS, "binding"))
        service = document.find(QName(WSDL_NS, "service"))
        ports = service.find_all(QName(WSDL_NS, "port"))
        addresses = [
            port.find(QName(WSDL_SOAP_NS, "address")).attrs[QName("", "location")]
            for port in ports
        ]
        assert set(addresses) == {"http://producer.example"}

    def test_no_service_without_address(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        document = parse_xml(definition.to_xml())
        assert document.find(QName(WSDL_NS, "service")) is None

    def test_wsa_actions_annotated(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        document = parse_xml(definition.to_xml())
        from repro.xmlkit.names import Namespaces

        inputs = [
            elem
            for elem in document.descendants()
            if elem.name == QName(WSDL_NS, "input")
        ]
        action_attr = QName(Namespaces.WSA_2005_08, "Action")
        assert all(action_attr in elem.attrs for elem in inputs)

    def test_operation_lookup(self):
        definition = wsdl_for_wse_source(WseVersion.V2004_08)
        with pytest.raises(KeyError):
            definition.port_type("Nope")


class TestServiceSelfDescription:
    def test_live_services_describe_themselves(self):
        from repro.convergence import ConvergedSource
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wse import EventSource
        from repro.wsn import NotificationProducer

        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://wsdl-src")
        producer = NotificationProducer(network, "http://wsdl-prod")
        converged = ConvergedSource(network, "http://wsdl-conv")
        for service in (source, producer, converged):
            document = parse_xml(service.wsdl())
            assert document.name == QName(WSDL_NS, "definitions")
            assert service.address in service.wsdl()

    def test_wsrf_disabled_producer_wsdl_has_no_wsrf_ops(self):
        from repro.transport import SimulatedNetwork, VirtualClock
        from repro.wsn import NotificationProducer

        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(
            network, "http://wsdl-nowsrf", version=WsnVersion.V1_3, enable_wsrf=False
        )
        assert "GetResourceProperty" not in producer.wsdl()
