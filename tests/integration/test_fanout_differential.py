"""Differential correctness of the fan-out fast path.

The same seeded scenario — randomized topic sets, mixed WSN dialects and
versions, WSE subscriptions with and without content filters, publications,
renews and unsubscribes — is run against a WS-Messenger broker on each fan-out
path: the pre-index linear matcher (``debug_linear_match=True``), the
topic-indexed / frozen-payload fast path with byte-templates disabled
(``debug_no_templates=True``), and the full envelope byte-template path.
Every pair of runs must produce the exact same (consumer, message) delivery
sets AND byte-identical raw wire traffic, frame for frame.
"""

import random
from dataclasses import dataclass, field

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa.headers import reset_message_counter
from repro.wse import EventSink, WseSubscriber
from repro.wse.versions import WseVersion
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces

SEED = 20060813

TOPICS = [
    "news",
    "news/sports",
    "news/sports/football",
    "news/politics",
    "weather",
    "weather/alerts",
    "weather/europe/alerts",
    "sys/cpu",
    "sys/cpu/load",
]

# (expression, dialect) pool for WSN subscriptions — all three dialects
WSN_FILTERS = [
    ("news", Namespaces.DIALECT_TOPIC_SIMPLE),
    ("weather", Namespaces.DIALECT_TOPIC_SIMPLE),
    ("news/sports", Namespaces.DIALECT_TOPIC_CONCRETE),
    ("weather/alerts", Namespaces.DIALECT_TOPIC_CONCRETE),
    ("sys/cpu/load", Namespaces.DIALECT_TOPIC_CONCRETE),
    ("news/*", Namespaces.DIALECT_TOPIC_FULL),
    ("news//.", Namespaces.DIALECT_TOPIC_FULL),
    ("weather//alerts", Namespaces.DIALECT_TOPIC_FULL),
    ("sys//.", Namespaces.DIALECT_TOPIC_FULL),
    ("news/politics|weather", Namespaces.DIALECT_TOPIC_FULL),
]

N_CONSUMERS = 14
N_PUBLISHES = 25


def _event(i: int) -> "XElem":
    return parse_xml(
        f'<ev:Event xmlns:ev="urn:diff"><ev:seq>{i}</ev:seq>'
        f"<ev:body>payload &amp; text {i}</ev:body></ev:Event>"
    )


@dataclass
class RunResult:
    wire: list[tuple[str, bytes]] = field(default_factory=list)
    #: per consumer address: the (topic, payload-text) sequence it received
    received: dict[str, list] = field(default_factory=dict)
    matched_counts: list[int] = field(default_factory=list)


def _run_scenario(*, linear: bool, no_templates: bool = False) -> RunResult:
    reset_message_counter()
    result = RunResult()
    network = SimulatedNetwork(VirtualClock())
    network.wire_observers.append(
        lambda obs: result.wire.append((obs.address, bytes(obs.request)))
    )
    broker = WsMessenger(
        network,
        "http://diff-broker",
        debug_linear_match=linear,
        debug_no_templates=no_templates,
    )
    rng = random.Random(SEED)

    wsn_consumers: list[NotificationConsumer] = []
    wse_sinks: list[EventSink] = []
    wsn_handles = []
    wse_handles = []

    for i in range(N_CONSUMERS):
        kind = rng.random()
        if kind < 0.55:
            version = rng.choice(list(WsnVersion))
            consumer = NotificationConsumer(
                network, f"http://wsn-consumer-{i}", version=version
            )
            expression, dialect = rng.choice(WSN_FILTERS)
            kwargs = {}
            if rng.random() < 0.25:
                kwargs["message_content"] = "//ev:seq"
                kwargs["namespaces"] = {"ev": "urn:diff"}
            handle = WsnSubscriber(network, version=version).subscribe(
                broker.epr(),
                consumer.epr(),
                topic=expression,
                topic_dialect=dialect,
                use_raw=rng.random() < 0.3,
                **kwargs,
            )
            wsn_consumers.append(consumer)
            wsn_handles.append((WsnSubscriber(network, version=version), handle))
        else:
            version = rng.choice(list(WseVersion))
            sink = EventSink(network, f"http://wse-sink-{i}", version=version)
            kwargs = {}
            if rng.random() < 0.5:
                kwargs["filter"] = "//ev:seq"
                kwargs["filter_namespaces"] = {"ev": "urn:diff"}
            handle = WseSubscriber(network, version=version).subscribe(
                broker.epr(), notify_to=sink.epr(), **kwargs
            )
            wse_sinks.append(sink)
            wse_handles.append((WseSubscriber(network, version=version), handle))

    for i in range(N_PUBLISHES):
        topic = rng.choice(TOPICS + [None])
        broker.publish(_event(i), topic=topic)
        # occasional management traffic interleaved with publications
        action = rng.random()
        if action < 0.12 and wsn_handles:
            subscriber, handle = wsn_handles.pop(rng.randrange(len(wsn_handles)))
            if subscriber.version.has_native_unsubscribe:
                subscriber.unsubscribe(handle)
            else:
                subscriber.destroy(handle)  # <= 1.2: WSRF Destroy
        elif action < 0.2 and wse_handles:
            subscriber, handle = wse_handles.pop(rng.randrange(len(wse_handles)))
            subscriber.unsubscribe(handle)

    broker.flush()

    for consumer in wsn_consumers:
        result.received[consumer.address] = [
            (item.topic, item.payload.full_text()) for item in consumer.received
        ]
    for sink in wse_sinks:
        result.received[sink.address] = [
            (item.action, item.payload.full_text()) for item in sink.received
        ]
    return result


class TestFanoutDifferential:
    def test_indexed_path_is_byte_identical_to_linear_path(self):
        linear = _run_scenario(linear=True)
        indexed = _run_scenario(linear=False)

        # identical delivery sets per consumer
        assert indexed.received == linear.received
        # some consumers actually received something (scenario isn't vacuous)
        assert sum(len(v) for v in linear.received.values()) > 0

        # byte-identical wire capture, frame for frame
        assert len(indexed.wire) == len(linear.wire)
        for i, (want, got) in enumerate(zip(linear.wire, indexed.wire)):
            assert got[0] == want[0], f"frame {i}: address diverged"
            assert got[1] == want[1], f"frame {i}: request bytes diverged"

    def test_templated_path_is_byte_identical_to_tree_path(self):
        # the envelope byte-template cache must be invisible on the wire:
        # rendering cached segments == serializing the equivalent tree
        tree = _run_scenario(linear=False, no_templates=True)
        templated = _run_scenario(linear=False)
        assert templated.received == tree.received
        assert templated.wire == tree.wire

    def test_linear_run_is_self_reproducible(self):
        # guards the harness itself: the scenario must be deterministic
        a = _run_scenario(linear=True)
        b = _run_scenario(linear=True)
        assert a.wire == b.wire
        assert a.received == b.received
