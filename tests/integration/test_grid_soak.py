"""A long-running Grid monitoring soak: the paper's motivating workload
driven through days of virtual time with renewals, expirations, pauses,
wrapped batches, pull polls and consumer failures — all invariants checked
continuously."""

import pytest

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import DeliveryMode, EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber
from repro.wsa import EndpointReference
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces

EV = "urn:soak"


def status(job, progress):
    return parse_xml(
        f'<ev:S xmlns:ev="{EV}"><ev:job>{job}</ev:job>'
        f"<ev:progress>{progress}</ev:progress></ev:S>"
    )


@pytest.fixture
def world():
    network = SimulatedNetwork(VirtualClock())
    network.add_zone("lan", blocks_inbound=True)
    broker = WsMessenger(network, "http://broker")
    return network, broker


def test_week_of_virtual_monitoring(world):
    network, broker = world
    clock = network.clock

    # durable dashboard: renews its lease every virtual hour
    dashboard = NotificationConsumer(network, "http://dashboard")
    wsn_subscriber = WsnSubscriber(network)
    dashboard_handle = wsn_subscriber.subscribe(
        broker.epr(),
        dashboard.epr(),
        topic="jobs//.",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        initial_termination="PT2H",
    )

    # forgetful consumer: subscribes with a short lease, never renews
    forgetful = NotificationConsumer(network, "http://forgetful")
    wsn_subscriber.subscribe(
        broker.epr(),
        forgetful.epr(),
        topic="jobs//.",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        initial_termination="PT30M",
    )

    # firewalled auditor polls a pull-mode WSE subscription
    wse_subscriber = WseSubscriber(network, zone="lan")
    pull_handle = wse_subscriber.subscribe(
        broker.epr(), mode=DeliveryMode.PULL, expires="PT2H"
    )

    pulled_total = 0
    hours = 24
    for hour in range(hours):
        for tick in range(4):  # four jobs report every quarter hour
            broker.publish(
                status(f"job-{hour % 3}", hour * 4 + tick),
                topic=f"jobs/job-{hour % 3}/status",
            )
            clock.advance(900.0)
        # hourly maintenance
        wsn_subscriber.renew(dashboard_handle, "PT2H")
        pulled_total += len(wse_subscriber.pull(pull_handle))
        wse_subscriber.renew(pull_handle, "PT2H")

    published = hours * 4
    # the renewing consumers saw everything
    assert len(dashboard.received) == published
    assert pulled_total == published
    # the forgetful consumer stopped receiving after its 30-minute lease
    assert len(forgetful.received) == 2  # exactly the ticks inside PT30M
    # the broker is left with exactly the two live subscriptions
    assert broker.subscription_count() == 2
    # virtual time really advanced ~a day
    assert clock.now() >= hours * 4 * 900.0


def test_mixed_population_with_failures(world):
    network, broker = world
    clock = network.clock
    wsn_subscriber = WsnSubscriber(network)
    wse_subscriber = WseSubscriber(network)

    stable = NotificationConsumer(network, "http://stable")
    wsn_subscriber.subscribe(broker.epr(), stable.epr(), topic="jobs/a/status")
    flaky_sink = EventSink(network, "http://flaky")
    wse_subscriber.subscribe(broker.epr(), notify_to=flaky_sink.epr())

    pull_client = PullPointClient(network, zone="lan")
    pull_point = pull_client.create(EndpointReference(broker.address + "/pullpoints"))
    wsn_subscriber.subscribe(broker.epr(), pull_point, topic="jobs/a/status")

    broker.publish(status("a", 10), topic="jobs/a/status")
    flaky_sink.close()  # mid-run consumer crash
    broker.publish(status("a", 20), topic="jobs/a/status")
    broker.publish(status("a", 30), topic="jobs/a/status")
    clock.advance(60.0)

    assert len(stable.received) == 3                      # unaffected by the crash
    assert len(flaky_sink.received) == 1                  # got only the first
    assert len(pull_client.get_messages(pull_point)) == 3  # queued through it all
    # the dead WSE subscription was reaped on its first failed delivery
    assert broker.subscription_count() == 2
