"""Unit tests for the byte-template splitter (repro.xmlkit.template)."""

import pytest

from repro.xmlkit.template import (
    TEMPLATE_STATS,
    ByteTemplate,
    TemplateSlotError,
)


class TestCompile:
    def test_splits_on_sentinels_in_order(self):
        template = ByteTemplate.compile(
            "<a><b>AAA</b><c>BBB</c></a>", [("x", "AAA"), ("y", "BBB")]
        )
        assert template.slot_names == ("x", "y")
        assert template.segments == ["<a><b>", "</b><c>", "</c></a>"]

    def test_sentinel_missing_raises(self):
        with pytest.raises(TemplateSlotError):
            ByteTemplate.compile("<a>AAA</a>", [("x", "AAA"), ("y", "BBB")])

    def test_sentinel_duplicated_raises(self):
        # a payload containing a sentinel string would corrupt the splice:
        # the exactly-once check rejects it at compile time
        with pytest.raises(TemplateSlotError):
            ByteTemplate.compile("<a>AAA<b>AAA</b></a>", [("x", "AAA")])

    def test_sentinels_out_of_order_raise(self):
        with pytest.raises(TemplateSlotError):
            ByteTemplate.compile("<a>BBB AAA</a>", [("x", "AAA"), ("y", "BBB")])

    def test_empty_slot_list(self):
        template = ByteTemplate.compile("<a/>", [])
        assert template.render({}) == "<a/>"


class TestRender:
    def test_interleaves_values_with_segments(self):
        template = ByteTemplate.compile("[AAA|BBB]", [("x", "AAA"), ("y", "BBB")])
        assert template.render({"x": "1", "y": "2"}) == "[1|2]"

    def test_roundtrip_with_original_values_reproduces_source(self):
        source = "<m><id>urn:x-slot:id</id><body>urn:x-slot:b</body></m>"
        template = ByteTemplate.compile(
            source, [("id", "urn:x-slot:id"), ("b", "urn:x-slot:b")]
        )
        assert (
            template.render({"id": "urn:x-slot:id", "b": "urn:x-slot:b"}) == source
        )

    def test_render_is_repeatable(self):
        template = ByteTemplate.compile("a SLOT z", [("s", "SLOT")])
        first = template.render({"s": "one"})
        second = template.render({"s": "one"})
        assert first == second == "a one z"


class TestStats:
    def test_reset_and_snapshot(self):
        TEMPLATE_STATS.reset()
        TEMPLATE_STATS.hits += 2
        TEMPLATE_STATS.misses += 1
        assert TEMPLATE_STATS.snapshot() == {
            "hits": 2,
            "misses": 1,
            "fallbacks": 0,
        }
        TEMPLATE_STATS.reset()
        assert TEMPLATE_STATS.snapshot() == {"hits": 0, "misses": 0, "fallbacks": 0}
