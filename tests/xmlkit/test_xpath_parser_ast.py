"""Parser/AST-level tests: grammar shapes and precedence."""

import pytest

from repro.xmlkit.xpath import ast
from repro.xmlkit.xpath.errors import XPathSyntaxError
from repro.xmlkit.xpath.parser import parse_xpath


class TestPrecedence:
    def test_or_binds_loosest(self):
        tree = parse_xpath("1 and 2 or 3")
        assert isinstance(tree, ast.BinaryOp) and tree.op == "or"
        assert isinstance(tree.left, ast.BinaryOp) and tree.left.op == "and"

    def test_comparison_below_and(self):
        tree = parse_xpath("1 = 2 and 3 = 4")
        assert tree.op == "and"
        assert tree.left.op == "=" and tree.right.op == "="

    def test_relational_below_equality(self):
        tree = parse_xpath("1 < 2 = 3 < 4")
        assert tree.op == "="
        assert tree.left.op == "<"

    def test_multiplicative_below_additive(self):
        tree = parse_xpath("1 + 2 * 3")
        assert tree.op == "+"
        assert tree.right.op == "*"

    def test_union_below_unary_minus(self):
        tree = parse_xpath("-a | b")
        assert isinstance(tree, ast.UnaryMinus)
        assert isinstance(tree.operand, ast.BinaryOp) and tree.operand.op == "|"

    def test_left_associativity(self):
        tree = parse_xpath("1 - 2 - 3")
        assert tree.op == "-"
        assert tree.left.op == "-"
        assert tree.left.left == ast.NumberLit(1.0)


class TestLocationPaths:
    def test_absolute_root_only(self):
        tree = parse_xpath("/")
        assert isinstance(tree, ast.LocationPath)
        assert tree.absolute and tree.steps == ()

    def test_descendant_shorthand_expands(self):
        tree = parse_xpath("//a")
        assert tree.steps[0].axis == "descendant-or-self"
        assert tree.steps[0].test.kind == "node"
        assert tree.steps[1].test.local == "a"

    def test_double_slash_mid_path(self):
        tree = parse_xpath("a//b")
        axes = [step.axis for step in tree.steps]
        assert axes == ["child", "descendant-or-self", "child"]

    def test_explicit_axes(self):
        tree = parse_xpath("descendant::x/parent::node()")
        assert tree.steps[0].axis == "descendant"
        assert tree.steps[1].axis == "parent"

    def test_attribute_shorthand(self):
        tree = parse_xpath("@id")
        assert tree.steps[0].axis == "attribute"

    def test_dot_and_dotdot(self):
        tree = parse_xpath("./..")
        assert tree.steps[0].axis == "self"
        assert tree.steps[1].axis == "parent"

    def test_qname_test(self):
        tree = parse_xpath("ns:local")
        test = tree.steps[0].test
        assert test.prefix == "ns" and test.local == "local"

    def test_predicates_attached_to_step(self):
        tree = parse_xpath("a[1][b]")
        assert len(tree.steps[0].predicates) == 2


class TestFilterPaths:
    def test_function_followed_by_path(self):
        # this is a FilterExpr with trailing steps
        tree = parse_xpath("string(/a)")
        assert isinstance(tree, ast.FunctionCall)

    def test_parenthesized_with_predicate(self):
        tree = parse_xpath("(//a)[1]")
        assert isinstance(tree, ast.FilterPath)
        assert len(tree.predicates) == 1

    def test_parenthesized_with_steps(self):
        tree = parse_xpath("(//a)/b")
        assert isinstance(tree, ast.FilterPath)
        assert tree.steps[0].test.local == "b"

    def test_function_args(self):
        tree = parse_xpath("concat('a', 'b', 'c')")
        assert len(tree.args) == 3

    def test_zero_arg_function(self):
        tree = parse_xpath("true()")
        assert tree.args == ()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "a[",
            "a]",
            "f(1,)",
            "child::",
            "//",
            "a/",
            "1 2",
            "@",
            "::a",
            "ancestor::x",  # unsupported axis
            "comment()",  # unsupported node type
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)
