"""Round-trip tests for the XML parser and serializer."""

import pytest

from repro.xmlkit import XmlParseError, parse_xml, serialize_xml
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import Namespaces, QName


class TestParser:
    def test_simple_document(self):
        root = parse_xml("<a><b>hi</b></a>")
        assert root.name == QName("", "a")
        assert root.find(QName("", "b")).text() == "hi"

    def test_namespaces_resolved(self):
        root = parse_xml('<x:a xmlns:x="urn:one"><x:b/></x:a>')
        assert root.name == QName("urn:one", "a")
        assert root.find(QName("urn:one", "b")) is not None

    def test_default_namespace(self):
        root = parse_xml('<a xmlns="urn:d"><b/></a>')
        assert root.name.namespace == "urn:d"

    def test_attributes(self):
        root = parse_xml('<a id="1" x:ref="2" xmlns:x="urn:one"/>')
        assert root.attrs[QName("", "id")] == "1"
        assert root.attrs[QName("urn:one", "ref")] == "2"

    def test_mixed_content_preserved(self):
        root = parse_xml("<a>pre<b/>post</a>")
        assert root.children[0] == "pre"
        assert root.children[2] == "post"

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a>")

    def test_bytes_accepted(self):
        assert parse_xml(b"<a/>").name.local == "a"


class TestWriter:
    def test_roundtrip_preserves_structure(self):
        source = (
            '<w:root xmlns:w="urn:w" level="3">'
            "<w:item>alpha</w:item><w:item join='y'>beta</w:item>"
            "</w:root>"
        )
        tree = parse_xml(source)
        assert parse_xml(serialize_xml(tree)) == tree

    def test_escaping(self):
        tree = XElem(QName("", "a"), children=['<&>"'])
        tree.set(QName("", "attr"), 'has "quotes" & <brackets>')
        again = parse_xml(serialize_xml(tree))
        assert again.text() == '<&>"'
        assert again.attrs[QName("", "attr")] == 'has "quotes" & <brackets>'

    def test_preferred_prefix_used(self):
        tree = text_element(QName(Namespaces.WSE_2004_08, "Subscribe"), "")
        text = serialize_xml(tree)
        assert "wse:Subscribe" in text

    def test_unknown_namespace_gets_generated_prefix(self):
        tree = XElem(QName("urn:mystery", "a"))
        text = serialize_xml(tree)
        assert "ns0:a" in text

    def test_deterministic_output(self):
        tree = parse_xml('<a xmlns="urn:d"><b x="1"/>text</a>')
        assert serialize_xml(tree) == serialize_xml(tree)

    def test_xml_declaration(self):
        tree = XElem(QName("", "a"))
        assert serialize_xml(tree, xml_declaration=True).startswith("<?xml")

    def test_indent_output_reparses_equal(self):
        source = parse_xml("<a><b>x</b><c><d/></c></a>")
        pretty = serialize_xml(source, indent=True)
        assert "\n" in pretty
        assert parse_xml(pretty) == source

    def test_empty_element_self_closes(self):
        assert serialize_xml(XElem(QName("", "a"))) == "<a/>"


class TestEscapeGoldens:
    """Byte-for-byte goldens for text/attribute escaping (the translate-table
    rewrite must not change a single byte — the msgformats benches diff bytes)."""

    def test_text_escaping_golden(self):
        tree = XElem(QName("", "t"), children=['a & b < c > d "quoted" \'single\''])
        assert (
            serialize_xml(tree)
            == "<t>a &amp; b &lt; c &gt; d \"quoted\" 'single'</t>"
        )

    def test_attribute_escaping_golden(self):
        tree = XElem(QName("", "t"), {QName("", "v"): 'a & b < c > d "q"'})
        assert (
            serialize_xml(tree)
            == '<t v="a &amp; b &lt; c &gt; d &quot;q&quot;"/>'
        )

    def test_namespace_uri_escaping_golden(self):
        tree = XElem(QName("urn:x?a=1&b=2", "t"))
        assert (
            serialize_xml(tree)
            == '<ns0:t xmlns:ns0="urn:x?a=1&amp;b=2"/>'
        )

    def test_ampersand_entity_double_escape_golden(self):
        # already-escaped input must be escaped again, not passed through
        tree = XElem(QName("", "t"), children=["&amp; &lt;"])
        assert serialize_xml(tree) == "<t>&amp;amp; &amp;lt;</t>"

    def test_escape_roundtrip(self):
        original = XElem(QName("", "t"), children=['<>&"\' mixed & <tags>'])
        assert parse_xml(serialize_xml(original)) == original

    def test_attribute_whitespace_golden(self):
        # XML attribute-value normalization folds literal tab/LF/CR to
        # spaces, so the writer must emit character references for them
        tree = XElem(QName("", "t"), {QName("", "v"): "a\tb\nc\rd"})
        assert serialize_xml(tree) == '<t v="a&#9;b&#10;c&#13;d"/>'

    def test_text_cr_golden(self):
        # XML line-end normalization folds a literal CR in text to LF
        tree = XElem(QName("", "t"), children=["a\rb\nc"])
        assert serialize_xml(tree) == "<t>a&#13;b\nc</t>"

    def test_attribute_whitespace_roundtrip(self):
        original = XElem(QName("", "t"), {QName("", "v"): "x\ny\tz\rw"})
        reparsed = parse_xml(serialize_xml(original))
        assert reparsed.attrs[QName("", "v")] == "x\ny\tz\rw"

    def test_text_cr_roundtrip(self):
        original = XElem(QName("", "t"), children=["line1\rline2"])
        reparsed = parse_xml(serialize_xml(original))
        assert reparsed.text() == "line1\rline2"

    def test_whitespace_serialization_fixpoint(self):
        wire = serialize_xml(
            XElem(QName("", "t"), {QName("", "v"): "\t\n\r"}, children=["\r\n\t"])
        )
        assert serialize_xml(parse_xml(wire)) == wire
