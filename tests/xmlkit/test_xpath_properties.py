"""Property-based tests for the XML and XPath substrates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import XPath, parse_xml, serialize_xml
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName
from repro.xmlkit.xpath.values import to_boolean, to_number, to_string

# --- generators ---------------------------------------------------------------

_locals = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}", fullmatch=True)
_namespaces = st.sampled_from(["", "urn:one", "urn:two"])
_qnames = st.builds(QName, _namespaces, _locals)
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\r"),
    max_size=20,
)


@st.composite
def elements(draw, depth=2):
    name = draw(_qnames)
    elem = XElem(name)
    for attr in draw(st.lists(_qnames, max_size=2, unique_by=lambda q: (q.namespace, q.local))):
        elem.attrs[attr] = draw(_texts)
    n_children = draw(st.integers(0, 3)) if depth > 0 else 0
    for _ in range(n_children):
        if depth > 0 and draw(st.booleans()):
            elem.append(draw(elements(depth=depth - 1)))
        else:
            text = draw(_texts)
            if text:
                if elem.children and isinstance(elem.children[-1], str):
                    # adjacent text siblings merge on re-parse (the split is
                    # unobservable on the wire), so generate them pre-merged
                    elem.children[-1] += text
                else:
                    elem.append(text)
    return elem


class TestSerializationRoundTrip:
    @given(elements())
    @settings(max_examples=150, deadline=None)
    def test_parse_of_serialize_is_identity(self, elem):
        assert parse_xml(serialize_xml(elem)) == elem

    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_indented_serialization_equal_modulo_whitespace(self, elem):
        assert parse_xml(serialize_xml(elem, indent=True)) == elem

    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original(self, elem):
        assert elem.copy() == elem


class TestXPathCoercions:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_number_string_roundtrip(self, x):
        assert to_number(to_string(float(x))) == float(x)

    @given(st.text(max_size=10))
    def test_string_boolean_is_nonempty(self, s):
        assert to_boolean(s) == (len(s) > 0)

    @given(st.floats())
    def test_number_boolean(self, x):
        expected = not (x == 0.0 or math.isnan(x))
        assert to_boolean(x) == expected

    @given(st.booleans())
    def test_boolean_number_string_identities(self, b):
        assert to_number(b) == (1.0 if b else 0.0)
        assert to_string(b) == ("true" if b else "false")


class TestXPathAgainstGeneratedTrees:
    @given(elements())
    @settings(max_examples=80, deadline=None)
    def test_star_counts_children(self, elem):
        expected = float(sum(1 for _ in elem.elements()))
        assert XPath("count(/*/*)").evaluate(elem) == expected

    @given(elements())
    @settings(max_examples=80, deadline=None)
    def test_descendant_count_matches_walk(self, elem):
        expected = float(1 + sum(1 for _ in elem.descendants()))
        assert XPath("count(//*) ").evaluate(elem) == expected

    @given(elements())
    @settings(max_examples=50, deadline=None)
    def test_string_value_matches_full_text(self, elem):
        assert XPath("string(/*)").evaluate(elem) == elem.full_text()

    @given(elements(), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_positional_predicate_within_bounds(self, elem, pos):
        result = XPath(f"/*/*[{pos}]").evaluate(elem)
        children = list(elem.elements())
        if pos <= len(children):
            assert result == [children[pos - 1]]
        else:
            assert result == []


class TestXPathParserTotality:
    @given(st.text(max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_never_crashes_with_unexpected_exception(self, text):
        from repro.xmlkit.xpath.errors import XPathError

        try:
            XPath(text)
        except XPathError:
            pass  # rejection is fine; anything else would fail the test
