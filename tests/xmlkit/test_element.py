"""Tests for the XElem element tree."""

import pytest

from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

A = QName("urn:t", "a")
B = QName("urn:t", "b")
C = QName("urn:t", "c")


def make_tree():
    root = XElem(A)
    root.append(text_element(B, "one"))
    root.append("gap")
    root.append(text_element(B, "two"))
    root.append(XElem(C, children=[text_element(B, "nested")]))
    return root


class TestConstruction:
    def test_name_must_be_qname(self):
        with pytest.raises(TypeError):
            XElem("a")  # type: ignore[arg-type]

    def test_child_type_checked(self):
        with pytest.raises(TypeError):
            XElem(A).append(42)  # type: ignore[arg-type]

    def test_append_chains(self):
        root = XElem(A).append("x").append(XElem(B))
        assert len(root.children) == 2

    def test_set_attribute(self):
        root = XElem(A).set(QName("", "id"), "7")
        assert root.attrs[QName("", "id")] == "7"


class TestNavigation:
    def test_find_first(self):
        tree = make_tree()
        assert tree.find(B).text() == "one"

    def test_find_missing_is_none(self):
        assert make_tree().find(QName("urn:t", "zzz")) is None

    def test_find_all(self):
        assert [e.text() for e in make_tree().find_all(B)] == ["one", "two"]

    def test_find_local_ignores_namespace(self):
        tree = make_tree()
        assert tree.find_local("c") is tree.find(C)

    def test_require_raises(self):
        with pytest.raises(KeyError):
            make_tree().require(QName("urn:t", "zzz"))

    def test_descendants_depth_first(self):
        names = [e.name.local for e in make_tree().descendants()]
        assert names == ["b", "b", "c", "b"]

    def test_elements_skips_text(self):
        assert all(isinstance(e, XElem) for e in make_tree().elements())


class TestText:
    def test_direct_text(self):
        assert make_tree().text() == "gap"

    def test_full_text_includes_descendants(self):
        assert make_tree().full_text() == "onegaptwonested"


class TestEqualityAndCopy:
    def test_structural_equality(self):
        assert make_tree() == make_tree()

    def test_whitespace_insensitive_equality(self):
        left = XElem(A, children=[text_element(B, "x")])
        right = XElem(A, children=["  \n ", text_element(B, "x"), "\t"])
        assert left == right

    def test_adjacent_text_merged_for_equality(self):
        left = XElem(A, children=["ab"])
        right = XElem(A, children=["a", "b"])
        assert left == right

    def test_attr_difference_breaks_equality(self):
        left = make_tree()
        right = make_tree()
        right.set(QName("", "x"), "1")
        assert left != right

    def test_copy_is_deep(self):
        original = make_tree()
        dup = original.copy()
        assert dup == original
        dup.find(C).append(text_element(B, "extra"))
        assert dup != original
