"""Lexer-level tests: XPath 1.0's context-dependent token disambiguation."""

import pytest

from repro.xmlkit.xpath.errors import XPathSyntaxError
from repro.xmlkit.xpath.lexer import TokenKind, tokenize


def kinds(expr):
    return [token.kind for token in tokenize(expr)][:-1]  # drop EOF


def values(expr):
    return [token.value for token in tokenize(expr)][:-1]


class TestStarDisambiguation:
    def test_star_after_operand_is_multiply(self):
        assert kinds("2 * 3") == [TokenKind.NUMBER, TokenKind.OPERATOR, TokenKind.NUMBER]

    def test_star_at_start_is_wildcard(self):
        assert kinds("*")[0] is TokenKind.STAR

    def test_star_after_slash_is_wildcard(self):
        tokens = kinds("/*")
        assert tokens == [TokenKind.OPERATOR, TokenKind.STAR]

    def test_star_after_bracket_is_wildcard(self):
        assert kinds("a[*]")[2] is TokenKind.STAR

    def test_star_after_rparen_is_multiply(self):
        assert kinds("(1) * 2")[3] is TokenKind.OPERATOR

    def test_prefixed_wildcard(self):
        assert kinds("ns:*") == [TokenKind.NAME, TokenKind.COLON, TokenKind.STAR]


class TestOperatorNameDisambiguation:
    def test_and_after_operand_is_operator(self):
        tokens = tokenize("1 and 2")
        assert tokens[1].kind is TokenKind.OPERATOR and tokens[1].value == "and"

    def test_and_at_start_is_name(self):
        assert kinds("and")[0] is TokenKind.NAME  # an element named 'and'

    def test_div_as_element_name_in_path(self):
        tokens = tokenize("/div")
        assert tokens[1].kind is TokenKind.NAME

    def test_div_after_operand_is_operator(self):
        tokens = tokenize("4 div 2")
        assert tokens[1].kind is TokenKind.OPERATOR


class TestFunctionAndAxisTokens:
    def test_function_call(self):
        tokens = tokenize("count(x)")
        assert tokens[0].kind is TokenKind.FUNC
        assert tokens[1].kind is TokenKind.LPAREN

    def test_node_type_not_function(self):
        assert kinds("text()")[0] is TokenKind.NODETYPE
        assert kinds("node()")[0] is TokenKind.NODETYPE

    def test_axis_specifier(self):
        tokens = tokenize("child::a")
        assert tokens[0].kind is TokenKind.AXIS and tokens[0].value == "child"

    def test_whitespace_before_paren_still_function(self):
        assert kinds("count (x)")[0] is TokenKind.FUNC

    def test_hyphenated_function_name(self):
        tokens = tokenize("starts-with('a','b')")
        assert tokens[0].value == "starts-with"


class TestLiteralsAndNumbers:
    def test_double_quoted_literal(self):
        assert values('"hi"') == ["hi"]

    def test_decimal_number(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot_number(self):
        assert values(".5") == [".5"]

    def test_dotdot_token(self):
        assert kinds("..")[0] is TokenKind.DOTDOT

    def test_unicode_digit_rejected(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("²")

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_bang_without_equals(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a ! b")

    def test_comparison_operators(self):
        assert values("a <= b >= c != d") == ["a", "<=", "b", ">=", "c", "!=", "d"]

    def test_position_reported_on_error(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            tokenize("abc $")
        assert "offset 4" in str(excinfo.value)
