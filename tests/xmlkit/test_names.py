"""Tests for QName and namespace constants."""

import pytest

from repro.xmlkit.names import Namespaces, QName, qn


class TestQName:
    def test_equality_by_value(self):
        assert QName("urn:a", "x") == QName("urn:a", "x")
        assert QName("urn:a", "x") != QName("urn:b", "x")
        assert QName("urn:a", "x") != QName("urn:a", "y")

    def test_hashable(self):
        table = {QName("urn:a", "x"): 1}
        assert table[QName("urn:a", "x")] == 1

    def test_str_clark_notation(self):
        assert str(QName("urn:a", "x")) == "{urn:a}x"
        assert str(QName("", "x")) == "x"

    def test_from_clark_roundtrip(self):
        name = QName("urn:a", "x")
        assert QName.from_clark(str(name)) == name

    def test_from_clark_no_namespace(self):
        assert QName.from_clark("local") == QName("", "local")

    def test_from_clark_malformed(self):
        with pytest.raises(ValueError):
            QName.from_clark("{urn:a")

    def test_qn_shorthand(self):
        assert qn("urn:a", "x") == QName("urn:a", "x")


class TestNamespaces:
    def test_wse_versions_distinct(self):
        assert Namespaces.WSE_2004_01 != Namespaces.WSE_2004_08

    def test_wsn_versions_distinct(self):
        assert len({Namespaces.WSNT_10, Namespaces.WSNT_12, Namespaces.WSNT_13}) == 3

    def test_wsa_versions_distinct(self):
        assert len({Namespaces.WSA_2003_03, Namespaces.WSA_2004_08, Namespaces.WSA_2005_08}) == 3

    def test_preferred_prefixes_cover_core_namespaces(self):
        for uri in (Namespaces.WSE_2004_08, Namespaces.WSNT_13, Namespaces.WSA_2005_08):
            assert uri in Namespaces.PREFERRED_PREFIXES
