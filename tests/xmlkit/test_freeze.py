"""Frozen-element semantics and the writer's frozen-subtree splice cache."""

import pytest

from repro.xmlkit.element import FrozenElementError, XElem, element, text_element
from repro.xmlkit.names import QName
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.writer import WRITER_STATS, serialize_xml

NS = "urn:freeze-test"


def _payload() -> XElem:
    root = XElem(QName(NS, "report"), {QName("", "id"): "r-1"})
    root.append(text_element(QName(NS, "value"), "41 < 42 & \"quoted\""))
    root.append(element(QName(NS, "empty")))
    return root


class TestFreezeSemantics:
    def test_freeze_returns_self_and_marks_tree(self):
        root = _payload()
        assert not root.frozen
        assert root.freeze() is root
        assert root.frozen
        for child in root.elements():
            assert child.frozen

    def test_freeze_is_idempotent(self):
        root = _payload().freeze()
        assert root.freeze() is root

    def test_append_on_frozen_raises(self):
        root = _payload().freeze()
        with pytest.raises(FrozenElementError):
            root.append(text_element(QName(NS, "extra"), "x"))

    def test_set_on_frozen_raises(self):
        root = _payload().freeze()
        with pytest.raises(FrozenElementError):
            root.set(QName("", "id"), "r-2")

    def test_frozen_child_mutation_raises(self):
        root = _payload().freeze()
        child = next(root.elements())
        with pytest.raises(FrozenElementError):
            child.append("more")

    def test_frozen_error_is_a_type_error(self):
        # callers that guard mutation with TypeError keep working
        assert issubclass(FrozenElementError, TypeError)

    def test_copy_of_frozen_is_mutable_and_equal(self):
        root = _payload().freeze()
        dup = root.copy()
        assert not dup.frozen
        assert dup == root
        dup.append(text_element(QName(NS, "extra"), "x"))  # no raise
        assert dup != root

    def test_frozen_equals_unfrozen_twin(self):
        assert _payload().freeze() == _payload()

    def test_navigation_still_works_when_frozen(self):
        root = _payload().freeze()
        assert root.find(QName(NS, "value")) is not None
        assert root.full_text().startswith("41")
        assert len(list(root.descendants())) == 2

    def test_appending_frozen_child_to_mutable_parent_is_allowed(self):
        frozen = _payload().freeze()
        parent = XElem(QName(NS, "wrapper"))
        parent.append(frozen)
        assert next(parent.elements()) is frozen


class TestFrozenSerialization:
    def test_frozen_tree_serializes_identically(self):
        plain = serialize_xml(_payload())
        frozen = serialize_xml(_payload().freeze())
        assert frozen == plain

    def test_splice_inside_wrapper_is_byte_identical(self):
        wrapper_name = QName("urn:other", "Envelope")
        plain = serialize_xml(XElem(wrapper_name, children=[_payload()]))
        frozen_payload = _payload().freeze()
        first = serialize_xml(XElem(wrapper_name, children=[frozen_payload]))
        second = serialize_xml(XElem(wrapper_name, children=[frozen_payload]))
        assert first == plain
        assert second == plain

    def test_second_write_is_a_cache_splice(self):
        frozen_payload = _payload().freeze()
        wrapper_name = QName("urn:other", "Envelope")
        WRITER_STATS.reset()
        serialize_xml(XElem(wrapper_name, children=[frozen_payload]))
        assert WRITER_STATS.frozen_serializations == 1
        assert WRITER_STATS.frozen_splices == 0
        serialize_xml(XElem(wrapper_name, children=[frozen_payload]))
        assert WRITER_STATS.frozen_serializations == 1
        assert WRITER_STATS.frozen_splices == 1

    def test_prefix_context_change_refills_cache_correctly(self):
        # first wrapper gives the payload namespace prefix ns1; a wrapper in
        # the payload's own namespace gives it ns0 — the cache must miss and
        # re-serialize under the new assignment, still byte-correct
        frozen_payload = _payload().freeze()
        neutral = QName("urn:other", "Envelope")
        colliding = QName(NS, "Outer")
        serialize_xml(XElem(neutral, children=[frozen_payload]))
        WRITER_STATS.reset()
        got = serialize_xml(XElem(colliding, children=[frozen_payload]))
        want = serialize_xml(XElem(colliding, children=[_payload()]))
        assert got == want
        assert WRITER_STATS.frozen_serializations == 1  # cache miss, refilled

    def test_indented_output_bypasses_the_cache(self):
        frozen_payload = _payload().freeze()
        wrapper = XElem(QName("urn:other", "Envelope"), children=[frozen_payload])
        want = serialize_xml(
            XElem(QName("urn:other", "Envelope"), children=[_payload()]), indent=True
        )
        assert serialize_xml(wrapper, indent=True) == want

    def test_parse_roundtrip_of_spliced_output(self):
        frozen_payload = _payload().freeze()
        wrapper = XElem(QName("urn:other", "Envelope"), children=[frozen_payload])
        serialize_xml(wrapper)  # prime the cache
        reparsed = parse_xml(serialize_xml(wrapper))
        assert reparsed == wrapper
