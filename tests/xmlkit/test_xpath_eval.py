"""Behavioural tests for the XPath engine against realistic event payloads."""

import math

import pytest

from repro.xmlkit import XPath, parse_xml
from repro.xmlkit.xpath.errors import XPathEvaluationError, XPathSyntaxError

NS = {"ev": "urn:grid:events", "s": "urn:soap"}

DOC = parse_xml(
    """
<ev:StatusEvent xmlns:ev="urn:grid:events" level="info" seq="12">
  <ev:jobId>job-42</ev:jobId>
  <ev:progress>75</ev:progress>
  <ev:worker rank="0">n01.cluster</ev:worker>
  <ev:worker rank="1">n02.cluster</ev:worker>
  <ev:metrics>
    <ev:cpu>0.93</ev:cpu>
    <ev:memory>1024</ev:memory>
  </ev:metrics>
</ev:StatusEvent>
"""
)


def ev(expr):
    return XPath(expr, NS).evaluate(DOC)


def match(expr):
    return XPath(expr, NS).matches(DOC)


class TestLocationPaths:
    def test_absolute_child_path(self):
        assert match("/ev:StatusEvent/ev:jobId")

    def test_missing_path_false(self):
        assert not match("/ev:StatusEvent/ev:missing")

    def test_descendant_or_self(self):
        assert ev("count(//ev:worker)") == 2.0

    def test_wildcard_star(self):
        assert ev("count(/ev:StatusEvent/*)") == 5.0

    def test_prefixed_wildcard(self):
        assert ev("count(/ev:StatusEvent/ev:*)") == 5.0

    def test_attribute_axis(self):
        assert ev("/ev:StatusEvent/@level") == ["info"]

    def test_parent_axis(self):
        assert match("//ev:cpu/../ev:memory")

    def test_self_axis_dot(self):
        assert XPath(".", NS).matches(DOC)

    def test_text_node_test(self):
        assert ev("/ev:StatusEvent/ev:jobId/text()") == ["job-42"]

    def test_root_only_path(self):
        result = ev("/")
        assert len(result) == 1

    def test_unprefixed_name_means_no_namespace(self):
        # XPath 1.0: unprefixed name tests match the null namespace
        assert not match("/StatusEvent")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(XPathEvaluationError):
            XPath("/zz:thing", NS).matches(DOC)


class TestPredicates:
    def test_positional(self):
        assert ev("//ev:worker[2]/text()") == ["n02.cluster"]

    def test_last_function(self):
        assert ev("//ev:worker[last()]/text()") == ["n02.cluster"]

    def test_value_comparison(self):
        assert match("/ev:StatusEvent[ev:progress > 50]")
        assert not match("/ev:StatusEvent[ev:progress > 80]")

    def test_attribute_predicate(self):
        assert ev("//ev:worker[@rank='1']/text()") == ["n02.cluster"]

    def test_chained_predicates(self):
        assert ev("//ev:worker[@rank][1]/text()") == ["n01.cluster"]

    def test_existence_predicate(self):
        assert match("/ev:StatusEvent[ev:metrics]")


class TestOperators:
    def test_arithmetic_precedence(self):
        assert ev("2 + 3 * 4") == 14.0

    def test_div_and_mod(self):
        assert ev("7 div 2") == 3.5
        assert ev("7 mod 2") == 1.0

    def test_div_by_zero_is_infinity(self):
        assert ev("1 div 0") == math.inf
        assert math.isnan(ev("0 div 0"))

    def test_unary_minus(self):
        assert ev("-3 + 1") == -2.0

    def test_boolean_connectives(self):
        assert ev("true() and not(false())") is True
        assert ev("false() or false()") is False

    def test_union(self):
        assert len(ev("//ev:cpu | //ev:memory")) == 2

    def test_union_document_order_dedup(self):
        result = ev("//ev:cpu | //ev:cpu | //ev:memory")
        assert len(result) == 2
        assert result[0].name.local == "cpu"

    def test_string_equality_with_node_set(self):
        assert match("/ev:StatusEvent/ev:jobId = 'job-42'")

    def test_numeric_comparison_with_node_set(self):
        assert match("//ev:memory >= 1024")

    def test_existential_not_equal(self):
        # != is existential over node-sets: some worker is not n01
        assert match("//ev:worker != 'n01.cluster'")


class TestFunctions:
    def test_contains(self):
        assert match("contains(/ev:StatusEvent/ev:jobId, 'job')")

    def test_starts_with(self):
        assert match("starts-with(//ev:worker[1], 'n01')")

    def test_concat(self):
        assert ev("concat('a', 'b', 'c')") == "abc"

    def test_substring_family(self):
        assert ev("substring('12345', 2, 3)") == "234"
        assert ev("substring-before('a=b', '=')") == "a"
        assert ev("substring-after('a=b', '=')") == "b"

    def test_substring_edge_cases(self):
        assert ev("substring('12345', 0)") == "12345"
        assert ev("substring('12345', 4, 9)") == "45"

    def test_string_length(self):
        assert ev("string-length('hello')") == 5.0

    def test_normalize_space(self):
        assert ev("normalize-space('  a   b ')") == "a b"

    def test_translate(self):
        assert ev("translate('abcabc', 'ab', 'BA')") == "BAcBAc"
        assert ev("translate('abc', 'abc', 'x')") == "x"

    def test_number_conversion(self):
        assert ev("number('42') + 1") == 43.0
        assert math.isnan(ev("number('nope')"))

    def test_sum(self):
        assert ev("sum(//ev:memory)") == 1024.0

    def test_floor_ceiling_round(self):
        assert ev("floor(2.7)") == 2.0
        assert ev("ceiling(2.1)") == 3.0
        assert ev("round(2.5)") == 3.0
        assert ev("round(-2.5)") == -2.0  # XPath: round(.5) towards +inf

    def test_local_name_and_namespace_uri(self):
        assert ev("local-name(/*)") == "StatusEvent"
        assert ev("namespace-uri(/*)") == "urn:grid:events"

    def test_string_of_node_set_uses_first_node(self):
        assert ev("string(//ev:worker)") == "n01.cluster"

    def test_boolean_of_empty_node_set(self):
        assert ev("boolean(//ev:absent)") is False

    def test_count_requires_node_set(self):
        with pytest.raises(XPathEvaluationError):
            ev("count('text')")

    def test_unknown_function(self):
        with pytest.raises(XPathEvaluationError):
            ev("frobnicate(1)")

    def test_arity_error(self):
        with pytest.raises(XPathEvaluationError):
            ev("contains('only-one')")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "/ev:", "foo(", "1 +", "//ev:worker[", "'unterminated", "a!b", "..."],
    )
    def test_rejects(self, bad):
        with pytest.raises(XPathSyntaxError):
            XPath(bad, NS)

    def test_unsupported_axis_rejected(self):
        with pytest.raises(XPathSyntaxError):
            XPath("following-sibling::x", NS)


class TestFilterDialectUsage:
    """The exact shapes WSE/WSN subscriptions use as message filters."""

    def test_boolean_filter_accepts(self):
        expr = "/ev:StatusEvent[ev:progress >= 50 and @level='info']"
        assert XPath(expr, NS).matches(DOC)

    def test_boolean_filter_rejects(self):
        expr = "/ev:StatusEvent[@level='error']"
        assert not XPath(expr, NS).matches(DOC)

    def test_select_returns_elements(self):
        workers = XPath("//ev:worker", NS).select(DOC)
        assert [w.text() for w in workers] == ["n01.cluster", "n02.cluster"]

    def test_select_rejects_scalar(self):
        with pytest.raises(XPathEvaluationError):
            XPath("1 + 1", NS).select(DOC)
