"""Edge cases for the virtual clock and the split network counters."""

import pytest

from repro.transport import (
    AddressUnreachable,
    FirewallBlocked,
    SimulatedNetwork,
    VirtualClock,
)
from repro.transport.http import build_request
from repro.transport.network import NetworkStats


class TestVirtualClockEdges:
    def test_advance_rejects_rewind(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-0.001)
        assert clock.now() == 5.0

    def test_advance_to_rejects_rewind(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.999)
        assert clock.now() == 5.0

    def test_zero_advance_is_allowed(self):
        clock = VirtualClock(2.5)
        assert clock.advance(0.0) == 2.5
        assert clock.advance_to(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(1.25) == 1.25
        assert clock.advance_to(10.0) == 10.0

    def test_repr_shows_time(self):
        assert repr(VirtualClock(1.5)) == "VirtualClock(t=1.500)"


class TestNetworkStatsSplit:
    def test_unreachable_and_firewall_counted_separately(self):
        network = SimulatedNetwork(VirtualClock())
        network.add_zone("dmz", blocks_inbound=True)
        network.register("http://inside", lambda wire: b"", zone="dmz")
        with pytest.raises(AddressUnreachable):
            network.send_request("http://nowhere", b"x")
        with pytest.raises(FirewallBlocked):
            network.send_request("http://inside", b"x")
        with pytest.raises(FirewallBlocked):
            network.send_request("http://inside", b"x")
        assert network.stats.unreachable == 1
        assert network.stats.firewall_blocked == 2
        # backward-compatible derived sum
        assert network.stats.refused == 3

    def test_lost_messages_count_sent_bytes(self):
        network = SimulatedNetwork(VirtualClock(), loss_rate=1.0)
        network.register("http://sink", lambda wire: b"")
        payload = build_request("http://sink", b"<x/>")
        from repro.transport import MessageLost

        with pytest.raises(MessageLost):
            network.send_request("http://sink", payload)
        assert network.stats.lost == 1
        assert network.stats.bytes_sent == len(payload)

    def test_reset_zeroes_every_field(self):
        stats = NetworkStats(
            requests=3,
            responses=2,
            bytes_sent=100,
            bytes_received=50,
            unreachable=1,
            firewall_blocked=2,
            lost=4,
        )
        stats.reset()
        assert stats.requests == stats.responses == 0
        assert stats.bytes_sent == stats.bytes_received == 0
        assert stats.unreachable == stats.firewall_blocked == stats.lost == 0
        assert stats.refused == 0
