"""Failure injection: lossy networks, dead endpoints, retry policies."""

import pytest

from repro.soap import SoapFault
from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, SubscriptionEndCode, WseSubscriber
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:fi"><e:n>{n}</e:n></e:V>')


class LossSchedule:
    """Deterministic loss: drop exactly the requests whose index is listed."""

    def __init__(self, network: SimulatedNetwork, drop_indices: set[int]) -> None:
        self.count = 0
        self.drop = drop_indices
        network.observers.append(self._observe)
        self._network = network

    def _observe(self, target, payload):
        self.count += 1
        if self.count in self.drop:
            self._network.stats.lost += 1
            raise MessageLost(target)


class TestLossyDelivery:
    def test_no_retries_loss_kills_subscription(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src", delivery_retries=0)
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        LossSchedule(network, {1})  # drop the next wire request
        source.publish(event())
        assert sink.received == []
        assert source.ended_subscriptions
        assert source.ended_subscriptions[0][1] is SubscriptionEndCode.DELIVERY_FAILURE

    def test_retry_recovers_from_transient_loss(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src", delivery_retries=2)
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        LossSchedule(network, {1})  # first attempt lost, retry succeeds
        source.publish(event())
        assert len(sink.received) == 1
        assert not source.ended_subscriptions

    def test_retries_exhausted_ends_subscription(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src", delivery_retries=2)
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        LossSchedule(network, {1, 2, 3})  # initial + both retries lost
        source.publish(event())
        assert sink.received == []
        assert source.ended_subscriptions

    def test_hard_failure_not_retried(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src", delivery_retries=5)
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        sink.close()  # address gone: AddressUnreachable is permanent
        network.stats.reset()
        source.publish(event())
        assert source.ended_subscriptions
        # exactly one attempt: no retry storm against a dead address
        assert network.stats.refused == 1

    def test_seeded_loss_rate_is_reproducible(self):
        outcomes = []
        for _ in range(2):
            network = SimulatedNetwork(VirtualClock(), loss_rate=0.5, seed=7)
            network.register("http://svc", lambda req: b"ok")
            results = []
            for _ in range(20):
                try:
                    network.send_request("http://svc", b"x")
                    results.append(True)
                except MessageLost:
                    results.append(False)
            outcomes.append(results)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestWsnFailureHandling:
    def test_dead_consumer_removes_subscription_without_poisoning_others(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        dead = NotificationConsumer(network, "http://dead")
        alive = NotificationConsumer(network, "http://alive")
        subscriber = WsnSubscriber(network)
        subscriber.subscribe(producer.epr(), dead.epr(), topic="t")
        subscriber.subscribe(producer.epr(), alive.epr(), topic="t")
        dead.close()
        producer.publish(event(), topic="t")
        assert len(alive.received) == 1
        # second publication: only the live subscription remains
        assert producer.publish(event(), topic="t") == 1

    def test_fault_from_handler_crosses_the_wire_intact(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        consumer = NotificationConsumer(network, "http://cons")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        subscriber.unsubscribe(handle)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.renew(handle, "PT1H")
        assert excinfo.value.subcode.local == "ResourceUnknownFault"

    def test_expired_subscription_management_faults(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        consumer = NotificationConsumer(network, "http://cons")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="t", initial_termination="PT10S"
        )
        network.clock.advance(20.0)
        with pytest.raises(SoapFault):
            subscriber.pause(handle)
