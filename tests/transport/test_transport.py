"""Tests for the virtual clock, simulated network, HTTP framing and endpoints."""

import pytest

from repro.soap import SoapEnvelope, SoapFault, FaultCode
from repro.transport import (
    AddressUnreachable,
    FirewallBlocked,
    MessageLost,
    SimulatedNetwork,
    SoapClient,
    SoapEndpoint,
    VirtualClock,
)
from repro.transport.http import (
    HttpFramingError,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.wsa import EndpointReference
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

PING = QName("urn:app", "Ping")
PONG = QName("urn:app", "Pong")


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_to(self):
        clock = VirtualClock(10.0)
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_no_rewind(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestHttpFraming:
    def test_request_roundtrip(self):
        wire = build_request("http://host/svc", b"<x/>", soap_action="urn:a")
        request = parse_request(wire)
        assert request.method == "POST"
        assert request.path == "/svc"
        assert request.body == b"<x/>"
        assert request.headers["SOAPAction"] == '"urn:a"'

    def test_response_roundtrip(self):
        wire = build_response(200, b"<ok/>")
        response = parse_response(wire)
        assert response.ok and response.body == b"<ok/>"

    def test_202_accepted(self):
        response = parse_response(build_response(202))
        assert response.ok and response.body == b""

    def test_error_status_not_ok(self):
        assert not parse_response(build_response(500, b"<f/>")).ok

    def test_malformed_request(self):
        with pytest.raises(HttpFramingError):
            parse_request(b"garbage")

    def test_malformed_response(self):
        with pytest.raises(HttpFramingError):
            parse_response(b"NOPE 200")


class TestNetwork:
    def test_request_response(self):
        network = SimulatedNetwork()
        network.register("http://svc", lambda req: b"reply:" + req)
        assert network.send_request("http://svc", b"hi") == b"reply:hi"

    def test_unknown_address(self):
        with pytest.raises(AddressUnreachable):
            SimulatedNetwork().send_request("http://none", b"x")

    def test_unregister(self):
        network = SimulatedNetwork()
        network.register("http://svc", lambda req: b"")
        network.unregister("http://svc")
        with pytest.raises(AddressUnreachable):
            network.send_request("http://svc", b"x")

    def test_latency_advances_clock(self):
        clock = VirtualClock()
        network = SimulatedNetwork(clock, latency=0.01)
        network.register("http://svc", lambda req: b"")
        network.send_request("http://svc", b"x")
        assert clock.now() == pytest.approx(0.02)  # round trip

    def test_link_latency_override(self):
        clock = VirtualClock()
        network = SimulatedNetwork(clock, latency=0.01)
        network.add_zone("far")
        network.register("http://svc", lambda req: b"", zone="far")
        network.set_link_latency("public", "far", 0.1)
        network.send_request("http://svc", b"x")
        assert clock.now() == pytest.approx(0.2)

    def test_firewall_blocks_inbound(self):
        network = SimulatedNetwork()
        network.add_zone("lan", blocks_inbound=True)
        network.register("http://inside", lambda req: b"", zone="lan")
        with pytest.raises(FirewallBlocked):
            network.send_request("http://inside", b"x")

    def test_firewall_allows_same_zone(self):
        network = SimulatedNetwork()
        network.add_zone("lan", blocks_inbound=True)
        network.register("http://inside", lambda req: b"ok", zone="lan")
        assert network.send_request("http://inside", b"x", from_zone="lan") == b"ok"

    def test_firewalled_host_can_call_out(self):
        network = SimulatedNetwork()
        network.add_zone("lan", blocks_inbound=True)
        network.register("http://outside", lambda req: b"ok")
        assert network.send_request("http://outside", b"x", from_zone="lan") == b"ok"

    def test_loss_model_deterministic_with_seed(self):
        network = SimulatedNetwork(loss_rate=1.0, seed=1)
        network.register("http://svc", lambda req: b"")
        with pytest.raises(MessageLost):
            network.send_request("http://svc", b"x")
        assert network.stats.lost == 1

    def test_stats_accounting(self):
        network = SimulatedNetwork()
        network.register("http://svc", lambda req: b"12345")
        network.send_request("http://svc", b"123")
        assert network.stats.requests == 1
        assert network.stats.bytes_sent == 3
        assert network.stats.bytes_received == 5
        network.stats.reset()
        assert network.stats.requests == 0

    def test_unknown_zone_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork().register("http://svc", lambda req: b"", zone="nope")


class TestSoapEndpoint:
    def _setup(self):
        network = SimulatedNetwork()
        endpoint = SoapEndpoint(network, "http://svc")

        def ping(envelope, headers):
            reply = SoapEnvelope(envelope.version)
            reply.add_body(text_element(PONG, envelope.body_element().text()))
            return reply

        endpoint.on_action("urn:app:Ping", ping)
        return network, endpoint

    def test_action_dispatch(self):
        network, _ = self._setup()
        client = SoapClient(network)
        reply = client.call(EndpointReference("http://svc"), "urn:app:Ping", [text_element(PING, "yo")])
        assert reply.body_element().name == PONG
        assert reply.body_element().text() == "yo"

    def test_one_way_returns_none(self):
        network = SimulatedNetwork()
        received = []
        endpoint = SoapEndpoint(network, "http://sink")
        endpoint.on_any(lambda envelope, headers: received.append(envelope) or None)
        client = SoapClient(network)
        result = client.call(EndpointReference("http://sink"), "urn:app:Notify", [text_element(PING, "n")])
        assert result is None
        assert len(received) == 1

    def test_unknown_action_faults(self):
        network, _ = self._setup()
        client = SoapClient(network)
        with pytest.raises(SoapFault):
            client.call(EndpointReference("http://svc"), "urn:app:Nope", [text_element(PING, "x")])

    def test_handler_fault_propagates(self):
        network = SimulatedNetwork()
        endpoint = SoapEndpoint(network, "http://svc")

        def boom(envelope, headers):
            raise SoapFault(FaultCode.SENDER, "rejected", subcode=QName("urn:app", "No"))

        endpoint.on_action("urn:app:Ping", boom)
        client = SoapClient(network)
        with pytest.raises(SoapFault) as excinfo:
            client.call(EndpointReference("http://svc"), "urn:app:Ping", [text_element(PING, "x")])
        assert excinfo.value.reason == "rejected"
        assert excinfo.value.subcode.local == "No"

    def test_close_unregisters(self):
        network, endpoint = self._setup()
        endpoint.close()
        client = SoapClient(network)
        with pytest.raises(AddressUnreachable):
            client.call(EndpointReference("http://svc"), "urn:app:Ping", [text_element(PING, "x")])

    def test_epr(self):
        _, endpoint = self._setup()
        assert endpoint.epr().address == "http://svc"
