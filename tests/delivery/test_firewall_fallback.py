"""Store-and-forward for firewalled consumers, end to end through the broker.

The paper's pull-delivery motivation ("delivering messages to consumers
behind firewalls") meets the reliability pipeline: a push into a
blocks-inbound zone raises FirewallBlocked, the message parks in a
broker-side message box, and the consumer drains it from inside the zone —
via WSN 1.3 ``GetMessages`` (the stock PullPointClient) or the WSE ``Pull``
equivalent.
"""

import pytest

from repro.delivery import DeliveryPolicy, drain_message_box_wse
from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber
from repro.xmlkit import parse_xml

ZONE = "corp-lan"


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:fwf"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    network = SimulatedNetwork(VirtualClock())
    network.add_zone(ZONE, blocks_inbound=True)
    return network


@pytest.fixture
def broker(network):
    return WsMessenger(
        network,
        "http://broker.public",
        delivery=DeliveryPolicy(
            max_attempts=4, base_backoff=1.0, jitter=0.0, breaker_failure_threshold=1
        ),
    )


class TestWsnDrain:
    def test_blocked_push_parks_and_pullpoint_client_drains(self, network, broker):
        consumer = NotificationConsumer(network, "http://inside-c", zone=ZONE)
        WsnSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), consumer.epr(), topic="fw"
        )
        broker.publish(event(1), topic="fw")
        broker.publish(event(2), topic="fw")
        # nothing crossed the firewall; content is parked at the broker
        assert consumer.received == []
        box = broker.message_boxes.get("http://inside-c")
        assert box is not None and len(box) == 2
        # the subscription survives (no delivery-failure destruction)
        assert broker.subscription_count() == 1
        # drain from inside the zone with the stock WSN pull client
        messages = PullPointClient(network, zone=ZONE).get_messages(box.epr())
        assert [m.payload.full_text() for m in messages] == ["1", "2"]
        assert {m.topic for m in messages} == {"fw"}
        assert len(box) == 0

    def test_maximum_number_bounds_the_drain(self, network, broker):
        consumer = NotificationConsumer(network, "http://inside-c", zone=ZONE)
        WsnSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), consumer.epr(), topic="fw"
        )
        for n in range(5):
            broker.publish(event(n), topic="fw")
        box = broker.message_boxes.get("http://inside-c")
        client = PullPointClient(network, zone=ZONE)
        assert len(client.get_messages(box.epr(), maximum=2)) == 2
        assert len(box) == 3
        assert len(client.get_messages(box.epr())) == 3

    def test_breaker_stops_wire_attempts_after_first_block(self, network, broker):
        consumer = NotificationConsumer(network, "http://inside-c", zone=ZONE)
        WsnSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), consumer.epr(), topic="fw"
        )
        network.stats.reset()
        for n in range(10):
            broker.publish(event(n), topic="fw")
        # one refused attempt tripped the breaker; the other nine messages
        # parked locally without touching the firewall again
        assert network.stats.refused == 1
        assert len(broker.message_boxes.get("http://inside-c")) == 10


class TestWseDrain:
    def test_blocked_push_parks_and_wse_pull_drains(self, network, broker):
        sink = EventSink(network, "http://inside-sink", zone=ZONE)
        WseSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), notify_to=sink.epr()
        )
        broker.publish(event(7))
        assert sink.received == []
        box = broker.message_boxes.get("http://inside-sink")
        assert box is not None and len(box) == 1
        payloads = drain_message_box_wse(network, box.epr(), zone=ZONE)
        assert [p.full_text() for p in payloads] == ["7"]
        assert len(box) == 0

    def test_wse_subscription_survives_the_block(self, network, broker):
        sink = EventSink(network, "http://inside-sink", zone=ZONE)
        WseSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), notify_to=sink.epr()
        )
        broker.publish(event(1))
        # with the reliability pipeline, a firewalled push no longer ends the
        # subscription with DeliveryFailure (contrast the best-effort broker)
        assert broker.subscription_count() == 1
        for source in broker.wse_sources.values():
            assert not source.ended_subscriptions


class TestRecovery:
    def test_half_open_probe_resumes_push_when_consumer_surfaces(self, network, broker):
        # the consumer moves out of the firewalled zone (same address now
        # registered publicly) after the breaker tripped
        consumer = NotificationConsumer(network, "http://moving-c", zone=ZONE)
        WsnSubscriber(network, zone=ZONE).subscribe(
            broker.epr(), consumer.epr(), topic="fw"
        )
        broker.publish(event(1), topic="fw")
        box = broker.message_boxes.get("http://moving-c")
        assert len(box) == 1
        consumer.close()
        reachable = NotificationConsumer(network, "http://moving-c")
        # while the breaker is open, traffic still parks (box exists)
        broker.publish(event(2), topic="fw")
        assert len(box) == 2
        # past the cool-down the half-open probe goes out and succeeds
        network.clock.advance(broker.delivery_manager.policy.breaker_reset_after)
        broker.publish(event(3), topic="fw")
        broker.pump_deliveries()
        assert len(reachable.received) == 1
        assert broker.delivery_manager.breaker_state("http://moving-c") == "closed"
        # the backlog stays in the box for the consumer to drain
        messages = PullPointClient(network).get_messages(box.epr())
        assert len(messages) == 2
