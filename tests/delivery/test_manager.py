"""The delivery manager: retries, ordering, DLQ, breakers, determinism."""

from repro.delivery import (
    DeliveryItem,
    DeliveryManager,
    DeliveryPolicy,
    MessageBoxRegistry,
    TaskStatus,
)
from repro.transport import FirewallBlocked, MessageLost, SimulatedNetwork, VirtualClock
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:dm"><e:n>{n}</e:n></e:V>')


class FlakySend:
    """Fails the first ``failures`` calls, then succeeds; counts calls."""

    def __init__(self, failures=0, error=MessageLost):
        self.failures = failures
        self.error = error
        self.calls = 0
        self.delivered = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error("injected")
        self.delivered += 1


def make_manager(policy=None, seed=0, boxes=False):
    network = SimulatedNetwork(VirtualClock())
    registry = MessageBoxRegistry(network, "http://broker/msgbox") if boxes else None
    manager = DeliveryManager(
        network, policy=policy or DeliveryPolicy(), seed=seed, message_boxes=registry
    )
    return network, manager


class TestHappyPath:
    def test_first_attempt_is_synchronous(self):
        _, manager = make_manager()
        send = FlakySend()
        task = manager.submit("http://sink", send)
        assert send.calls == 1
        assert task.status is TaskStatus.DELIVERED
        assert manager.pending() == 0
        assert manager.stats.delivered == 1

    def test_retry_recovers_after_backoff(self):
        network, manager = make_manager(
            DeliveryPolicy(max_attempts=5, base_backoff=1.0, jitter=0.0)
        )
        send = FlakySend(failures=2)
        task = manager.submit("http://sink", send)
        assert task.status is TaskStatus.QUEUED
        assert manager.pending() == 1
        manager.run_until_idle()
        assert task.status is TaskStatus.DELIVERED
        assert send.calls == 3
        assert manager.stats.retries == 2
        # backoff 1.0 then 2.0 on the virtual clock
        assert network.clock.now() == 3.0

    def test_run_due_only_runs_elapsed_deadlines(self):
        network, manager = make_manager(
            DeliveryPolicy(max_attempts=5, base_backoff=5.0, jitter=0.0)
        )
        send = FlakySend(failures=1)
        manager.submit("http://sink", send)
        assert manager.run_due() == 0  # retry is due at t=5, clock at 0
        network.clock.advance(5.0)
        assert manager.run_due() == 1
        assert send.delivered == 1

    def test_per_sink_queue_preserves_publish_order(self):
        _, manager = make_manager(
            DeliveryPolicy(max_attempts=5, base_backoff=1.0, jitter=0.0)
        )
        order = []
        fail_first = [True]

        def send_a():
            if fail_first[0]:
                fail_first[0] = False
                raise MessageLost("injected")
            order.append("a")

        manager.submit("http://sink", send_a)
        manager.submit("http://sink", lambda: order.append("b"))
        manager.submit("http://sink", lambda: order.append("c"))
        # "b"/"c" must wait behind the retrying head, not overtake it
        assert order == []
        manager.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_independent_sinks_do_not_block_each_other(self):
        _, manager = make_manager(
            DeliveryPolicy(max_attempts=5, base_backoff=1.0, jitter=0.0)
        )
        stuck = FlakySend(failures=3)
        fine = FlakySend()
        manager.submit("http://stuck", stuck)
        manager.submit("http://fine", fine)
        assert fine.delivered == 1  # delivered synchronously despite the other sink


class TestDeadLetters:
    def test_exhausted_budget_dead_letters(self):
        _, manager = make_manager(
            DeliveryPolicy(max_attempts=3, base_backoff=1.0, jitter=0.0)
        )
        send = FlakySend(failures=99)
        task = manager.submit("http://sink", send, family="wsn")
        manager.run_until_idle()
        assert task.status is TaskStatus.DEAD
        assert send.calls == 3
        assert len(manager.dlq) == 1
        assert manager.dlq.entries[0].reason == "max_attempts"

    def test_ttl_expiry_dead_letters_without_further_attempts(self):
        _, manager = make_manager(
            DeliveryPolicy(
                max_attempts=10, base_backoff=10.0, jitter=0.0, message_ttl=5.0
            )
        )
        send = FlakySend(failures=99)
        task = manager.submit("http://sink", send)
        manager.run_until_idle()  # retry wakes at t=10, past the 5s TTL
        assert task.status is TaskStatus.DEAD
        assert send.calls == 1
        assert manager.dlq.entries[0].reason == "ttl_expired"
        assert manager.stats.expired == 1

    def test_replay_redelivers_with_fresh_budget(self):
        _, manager = make_manager(
            DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        )
        send = FlakySend(failures=2)  # dies under a 2-attempt budget...
        task = manager.submit("http://sink", send)
        manager.run_until_idle()
        assert task.status is TaskStatus.DEAD
        replayed = manager.dlq.replay(manager)
        manager.run_until_idle()
        assert replayed == 1
        assert len(manager.dlq) == 0
        assert task.status is TaskStatus.DELIVERED  # ...but the replay lands
        assert manager.stats.replayed == 1

    def test_replay_can_select_a_sink(self):
        _, manager = make_manager(DeliveryPolicy(max_attempts=1))
        manager.submit("http://a", FlakySend(failures=1))  # recovers on replay
        manager.submit("http://b", FlakySend(failures=9))
        assert len(manager.dlq) == 2
        assert manager.dlq.replay(manager, sink="http://a") == 1
        assert [d.task.sink for d in manager.dlq.entries] == ["http://b"]

    def test_on_dead_callback_fires(self):
        _, manager = make_manager(DeliveryPolicy(max_attempts=1))
        deaths = []
        manager.submit(
            "http://sink",
            FlakySend(failures=9),
            on_dead=lambda task, reason: deaths.append(reason),
        )
        assert deaths == ["max_attempts"]


class TestBreaker:
    def test_breaker_opens_and_fast_fails_without_wire_attempts(self):
        _, manager = make_manager(
            DeliveryPolicy(
                max_attempts=2,
                base_backoff=1.0,
                jitter=0.0,
                breaker_failure_threshold=2,
                breaker_reset_after=10.0,
            )
        )
        dead = FlakySend(failures=99)
        manager.submit("http://sink", dead)
        manager.run_until_idle()  # 2 failures: task dead, breaker open
        assert manager.breaker_state("http://sink") == "open"
        probe = FlakySend()
        manager.submit("http://sink", probe)
        assert probe.calls == 0  # fast-failed locally, nothing sent
        assert manager.stats.breaker_fast_fails == 1

    def test_half_open_probe_recovers_the_sink(self):
        network, manager = make_manager(
            DeliveryPolicy(
                max_attempts=2,
                base_backoff=1.0,
                jitter=0.0,
                breaker_failure_threshold=2,
                breaker_reset_after=10.0,
            )
        )
        manager.submit("http://sink", FlakySend(failures=99))
        manager.run_until_idle()
        probe = FlakySend()
        task = manager.submit("http://sink", probe)
        manager.run_until_idle()  # clock passes the cool-down, probe goes out
        assert task.status is TaskStatus.DELIVERED
        assert probe.calls == 1
        assert manager.breaker_state("http://sink") == "closed"
        assert manager.open_breakers() == []

    def test_open_breakers_lists_tripped_sinks(self):
        _, manager = make_manager(
            DeliveryPolicy(max_attempts=1, breaker_failure_threshold=1)
        )
        manager.submit("http://bad", FlakySend(failures=9))
        manager.submit("http://good", FlakySend())
        assert manager.open_breakers() == ["http://bad"]


class TestFirewallParking:
    def test_firewall_blocked_parks_content_in_message_box(self):
        _, manager = make_manager(boxes=True)
        send = FlakySend(failures=99, error=FirewallBlocked)
        task = manager.submit(
            "http://fw-sink",
            send,
            items=[DeliveryItem(event(1), "t")],
            family="wsn",
        )
        assert task.status is TaskStatus.PARKED
        assert send.calls == 1  # parked on the first block, no retry storm
        box = manager.message_boxes.get("http://fw-sink")
        assert box is not None and len(box) == 1
        assert manager.stats.parked == 1

    def test_open_breaker_plus_existing_box_parks_without_wire(self):
        _, manager = make_manager(
            DeliveryPolicy(breaker_failure_threshold=1), boxes=True
        )
        send = FlakySend(failures=99, error=FirewallBlocked)
        manager.submit("http://fw-sink", send, items=[DeliveryItem(event(1))])
        # breaker tripped and a box exists: later messages park straight away
        manager.submit("http://fw-sink", send, items=[DeliveryItem(event(2))])
        assert send.calls == 1
        assert len(manager.message_boxes.get("http://fw-sink")) == 2

    def test_content_free_task_is_not_parkable(self):
        _, manager = make_manager(DeliveryPolicy(max_attempts=2, jitter=0.0), boxes=True)
        send = FlakySend(failures=99, error=FirewallBlocked)
        task = manager.submit("http://fw-sink", send)  # control message, no items
        manager.run_until_idle()
        assert task.status is TaskStatus.DEAD
        assert manager.message_boxes.get("http://fw-sink") is None

    def test_without_registry_firewall_blocked_is_an_ordinary_failure(self):
        _, manager = make_manager(DeliveryPolicy(max_attempts=2, jitter=0.0))
        send = FlakySend(failures=99, error=FirewallBlocked)
        task = manager.submit("http://fw-sink", send, items=[DeliveryItem(event())])
        manager.run_until_idle()
        assert task.status is TaskStatus.DEAD


class TestDeterminism:
    def run_scenario(self, seed):
        network, manager = make_manager(
            DeliveryPolicy(max_attempts=6, base_backoff=0.5, jitter=0.3), seed=seed
        )
        times = []
        for n, failures in enumerate([3, 1, 4]):
            send = FlakySend(failures=failures)
            manager.submit(
                f"http://sink-{n}",
                send,
                on_delivered=lambda task: times.append(task.delivered_at),
            )
        manager.run_until_idle()
        return times, manager.stats.snapshot()

    def test_same_seed_same_retry_schedule(self):
        assert self.run_scenario(42) == self.run_scenario(42)

    def test_different_seed_different_jitter(self):
        times_a, _ = self.run_scenario(1)
        times_b, _ = self.run_scenario(2)
        assert times_a != times_b


class TestIntrospection:
    def test_snapshot_shape(self):
        _, manager = make_manager(DeliveryPolicy(max_attempts=1), boxes=True)
        manager.submit("http://sink", FlakySend(failures=9), family="wse")
        snap = manager.snapshot()
        assert snap["stats"]["dead_lettered"] == 1
        assert snap["dlq"][0]["reason"] == "max_attempts"
        assert snap["breakers"]["http://sink"]["consecutive_failures"] == 1

    def test_delivery_metrics_flow_into_instrumentation(self):
        from repro.obs.instrument import Instrumentation

        network, manager = make_manager(DeliveryPolicy(max_attempts=1))
        instrumentation = Instrumentation.attach(network)
        manager.submit("http://sink", FlakySend(failures=9), family="wsn")
        counters = instrumentation.metrics.snapshot()["counters"]
        assert (
            counters["delivery.failed_total{family=wsn,kind=MessageLost,stage=attempt}"]
            == 1
        )
        assert counters["delivery.dead_lettered{family=wsn,reason=max_attempts}"] == 1
