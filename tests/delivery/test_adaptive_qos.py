"""Adaptive QoS on the delivery pipeline: bounded queues, pacing, shedding.

Each shed message is an *accounted* broker decision: the lineage ledger
closes its obligation with a ``shed`` event, so the conservation audit
(``opened == delivered + dead_lettered + failed + shed + pending``) keeps
balancing even while the broker is dropping load on the floor.
"""

import pytest

from repro.delivery import (
    DeliveryItem,
    DeliveryManager,
    DeliveryPolicy,
    MessageBoxRegistry,
    TaskStatus,
)
from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.qos import AdaptiveQosController, AdaptiveQosPolicy, DiscardPolicy, QosProfile
from repro.transport import FirewallBlocked, MessageLost, SimulatedNetwork, VirtualClock
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:aq"><e:n>{n}</e:n></e:V>')


class StuckSend:
    """Always fails: keeps the sink queue backed up."""

    def __init__(self, error=MessageLost):
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        raise self.error("injected")


def make_manager(
    *,
    qos_policy=None,
    policy=None,
    boxes=False,
    box_capacity=10_000,
    instrument=False,
):
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network) if instrument else None
    registry = (
        MessageBoxRegistry(network, "http://broker/msgbox", capacity=box_capacity)
        if boxes
        else None
    )
    controller = (
        AdaptiveQosController(network.clock, policy=qos_policy)
        if qos_policy is not None
        else None
    )
    manager = DeliveryManager(
        network,
        policy=policy or DeliveryPolicy(max_attempts=3, base_backoff=1.0, jitter=0.0),
        message_boxes=registry,
        qos=controller,
    )
    return network, manager, instrumentation


def submit_traced(manager, instrumentation, sink, send, n=1, priority=0):
    """Submit one lineage-bearing item so the ledger opens an obligation."""
    with instrumentation.span("publish", mint=True) as span:
        instrumentation._ledger_record(span.lineage, "published", family="test")
        return manager.submit(
            sink,
            send,
            items=[DeliveryItem(event(n), lineage=instrumentation.trace_context())],
            family="test",
            priority=priority,
        )


class TestBoundedQueues:
    def test_fifo_shed_keeps_queue_bounded(self):
        _, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(max_sink_queue=3)
        )
        send = StuckSend()
        tasks = [manager.submit("http://slow", send, items=[DeliveryItem(event(n))]) for n in range(8)]
        assert manager.pending() <= 3
        assert manager.stats.shed == 5
        shed = [t for t in tasks if t.status is TaskStatus.SHED]
        assert len(shed) == 5
        assert all(t.last_error == "queue_full" for t in shed)

    def test_lifo_policy_rejects_newest(self):
        _, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(
                max_sink_queue=2, discard_policy=DiscardPolicy.LIFO_ORDER
            )
        )
        send = StuckSend()
        first = manager.submit("http://slow", send, items=[DeliveryItem(event(0))])
        second = manager.submit("http://slow", send, items=[DeliveryItem(event(1))])
        third = manager.submit("http://slow", send, items=[DeliveryItem(event(2))])
        assert (first.status, second.status) == (TaskStatus.QUEUED, TaskStatus.QUEUED)
        assert third.status is TaskStatus.SHED

    def test_priority_policy_sheds_lowest_waiting(self):
        _, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(
                max_sink_queue=2, discard_policy=DiscardPolicy.PRIORITY_ORDER
            )
        )
        send = StuckSend()
        manager.submit("http://slow", send, priority=5)
        low = manager.submit("http://slow", send, priority=1)
        vip = manager.submit("http://slow", send, priority=9)
        assert low.status is TaskStatus.SHED
        assert vip.status is TaskStatus.QUEUED

    def test_consumer_profile_overrides_policy_bound(self):
        _, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(max_sink_queue=50)
        )
        manager.qos.register_consumer(
            "http://slow", QosProfile({"MaxEventsPerConsumer": 1})
        )
        send = StuckSend()
        manager.submit("http://slow", send)
        overflow = manager.submit("http://slow", send)
        assert overflow.status is TaskStatus.SHED

    def test_shed_closes_the_obligation_books(self):
        _, manager, instrumentation = make_manager(
            qos_policy=AdaptiveQosPolicy(max_sink_queue=2),
            instrument=True,
        )
        send = StuckSend()
        for n in range(6):
            submit_traced(manager, instrumentation, "http://slow", send, n)
        manager.run_until_idle()
        result = audit(instrumentation)
        assert result.passed, [f.render() for f in result.findings]
        assert result.opened == 6
        assert result.shed == manager.stats.shed > 0
        assert result.pending == 0
        counters = instrumentation.metrics.snapshot()["counters"]
        assert (
            counters["qos.shed_total{family=test,reason=queue_full}"]
            == manager.stats.shed
        )


class TestBoxOverflowAccounting:
    def test_overflow_at_capacity_is_shed_not_lost(self):
        # conservation at capacity: items the full box drops must close as
        # shed (reason=box_overflow), not dangle as pending forever
        _, manager, instrumentation = make_manager(
            boxes=True, box_capacity=2, instrument=True
        )
        send = StuckSend(error=FirewallBlocked)
        for n in range(5):
            submit_traced(manager, instrumentation, "http://firewalled", send, n)
        box = manager.message_boxes.get("http://firewalled")
        assert box is not None and len(box) == 2
        assert box.overflowed == 3
        assert manager.stats.parked == 2
        assert manager.stats.shed == 3
        result = audit(instrumentation)
        assert result.passed, [f.render() for f in result.findings]
        assert result.pending == 2  # the parked two await pull
        assert result.shed == 3
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["qos.shed_total{family=test,reason=box_overflow}"] == 3

    def test_mixed_park_and_overflow_in_one_task(self):
        _, manager, instrumentation = make_manager(
            boxes=True, box_capacity=1, instrument=True
        )
        send = StuckSend(error=FirewallBlocked)
        with instrumentation.span("publish", mint=True) as span:
            instrumentation._ledger_record(span.lineage, "published", family="test")
            lineage = instrumentation.trace_context()
            task = manager.submit(
                "http://firewalled",
                send,
                items=[DeliveryItem(event(n), lineage=lineage) for n in range(3)],
                family="test",
            )
        assert task.status is TaskStatus.PARKED  # at least one item parked
        assert manager.stats.parked == 1 and manager.stats.shed == 2
        result = audit(instrumentation)
        assert result.passed, [f.render() for f in result.findings]
        assert (result.pending, result.shed) == (1, 2)


class TestPacing:
    def test_token_bucket_levels_the_send_rate(self):
        network, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(per_sink_rate=1.0, per_sink_burst=1.0),
        )
        delivered_at = []

        def send():
            delivered_at.append(network.clock.now())

        for n in range(3):
            manager.submit("http://paced", send, items=[DeliveryItem(event(n))])
        manager.run_until_idle()
        assert delivered_at == [0.0, 1.0, 2.0]
        assert manager.stats.throttled >= 2
        assert manager.stats.delivered == 3

    def test_throttled_attempts_consume_no_retry_budget(self):
        network, manager, _ = make_manager(
            qos_policy=AdaptiveQosPolicy(per_sink_rate=0.5, per_sink_burst=1.0),
            policy=DeliveryPolicy(max_attempts=1),
        )
        sends = []
        for n in range(4):
            manager.submit(
                "http://paced", lambda: sends.append(1), items=[DeliveryItem(event(n))]
            )
        manager.run_until_idle()
        # max_attempts=1, yet every message eventually goes out: waiting for
        # tokens is load leveling, not a failed attempt
        assert len(sends) == 4
        assert manager.stats.dead_lettered == 0

    def test_throttle_counter_is_published(self):
        _, manager, instrumentation = make_manager(
            qos_policy=AdaptiveQosPolicy(per_sink_rate=1.0, per_sink_burst=1.0),
            instrument=True,
        )
        for n in range(2):
            submit_traced(manager, instrumentation, "http://paced", lambda: None, n)
        manager.run_until_idle()
        counters = instrumentation.metrics.snapshot()["counters"]
        assert counters["qos.throttled_total{family=test}"] == manager.stats.throttled
        assert manager.stats.throttled >= 1


class TestBacklogListeners:
    def test_listeners_see_growth_and_drain(self):
        network, manager, _ = make_manager(
            policy=DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        )
        seen = []
        manager.backlog_listeners.append(seen.append)
        flaky = [True]

        def send():
            if flaky[0]:
                flaky[0] = False
                raise MessageLost("injected")

        manager.submit("http://sink", send, items=[DeliveryItem(event())])
        assert seen and seen[-1] == 1  # growth observed at submit
        manager.run_until_idle()
        assert seen[-1] == 0  # drain observed after the retry delivered
