"""Pull-drain limits, pinned: 0 and negative take nothing, garbage faults.

The seed's handlers evaluated ``queue[: limit or len(queue)]``: an explicit
``MaximumNumber``/``MaxMessages`` of ``0`` silently drained the entire
backlog, a negative limit sliced from the tail, and non-numeric text raised
an unhandled ``ValueError`` out of the endpoint (a server error for a
malformed *request*).  These tests pin the fix at each wire surface; the
``pulldrain`` conformance engine fuzzes the same contract continuously.
"""

import pytest

from repro.delivery import DeliveryItem, drain_message_box_wse
from repro.delivery.messagebox import MessageBox
from repro.soap.fault import FaultCode, SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSource, WseSubscriber
from repro.wse.model import DeliveryMode
from repro.wsn import PullPointClient
from repro.wsn.pullpoint import PullPoint
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml


def event(n):
    return parse_xml(f'<e:V xmlns:e="urn:dl"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def box(network):
    box = MessageBox(network, "http://broker/box", "http://sink")
    for n in range(3):
        box.park(DeliveryItem(event(n)))
    return box


class TestWsnGetMessages:
    def test_zero_maximum_takes_nothing(self, network, box):
        assert PullPointClient(network).get_messages(box.epr(), maximum=0) == []
        assert len(box) == 3

    def test_negative_maximum_takes_nothing(self, network, box):
        assert PullPointClient(network).get_messages(box.epr(), maximum=-2) == []
        assert len(box) == 3

    def test_non_numeric_maximum_is_a_sender_fault(self, network, box):
        with pytest.raises(SoapFault) as excinfo:
            PullPointClient(network).get_messages(box.epr(), maximum="x")
        fault = excinfo.value
        assert fault.code is FaultCode.SENDER
        assert (
            fault.subcode is not None
            and "UnableToGetMessages" in fault.subcode.local
        )
        assert len(box) == 3  # the malformed request drained nothing

    def test_omitted_maximum_still_drains_all(self, network, box):
        batch = PullPointClient(network).get_messages(box.epr())
        assert len(batch) == 3 and len(box) == 0

    def test_positive_maximum_is_fifo_and_capped(self, network, box):
        batch = PullPointClient(network).get_messages(box.epr(), maximum=2)
        assert [item.payload.full_text() for item in batch] == ["0", "1"]
        assert PullPointClient(network).get_messages(box.epr(), maximum=9)[
            0
        ].payload.full_text() == "2"


class TestWseBoxPull:
    def test_zero_and_negative_take_nothing(self, network, box):
        assert drain_message_box_wse(network, box.epr(), max_messages="0") == []
        assert drain_message_box_wse(network, box.epr(), max_messages=-1) == []
        assert len(box) == 3

    def test_non_numeric_is_a_sender_fault(self, network, box):
        with pytest.raises(SoapFault) as excinfo:
            drain_message_box_wse(network, box.epr(), max_messages="lots")
        assert excinfo.value.code is FaultCode.SENDER
        assert len(box) == 3


class TestPullPointEndpoint:
    def test_limits_apply_at_a_real_pull_point(self, network):
        point = PullPoint(network, "http://pp", WsnVersion.V1_3)
        client = PullPointClient(network)
        point.queue.extend(
            parse_xml(
                '<w:NotificationMessage xmlns:w="http://docs.oasis-open.org/wsn/b-2">'
                f"<w:Message><v>{n}</v></w:Message></w:NotificationMessage>"
            )
            for n in range(2)
        )
        assert client.get_messages(point.epr(), maximum=0) == []
        with pytest.raises(SoapFault):
            client.get_messages(point.epr(), maximum="NaN")
        assert len(client.get_messages(point.epr())) == 2


class TestWsePullSubscription:
    def test_limits_apply_at_a_pull_mode_subscription(self, network):
        source = EventSource(network, "http://source")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
        for n in range(3):
            source.publish(event(n))
        # "0" goes on the wire as an explicit MaxMessages element
        assert subscriber.pull(handle, max_messages="0") == []
        assert subscriber.pull(handle, max_messages="-3") == []
        with pytest.raises(SoapFault) as excinfo:
            subscriber.pull(handle, max_messages="x")
        assert excinfo.value.code is FaultCode.SENDER
        assert [p.full_text() for p in subscriber.pull(handle, max_messages=2)] == [
            "0",
            "1",
        ]
        assert [p.full_text() for p in subscriber.pull(handle)] == ["2"]
