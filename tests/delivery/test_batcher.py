"""Unit tests for the per-sink delivery batcher (repro.delivery.batcher)."""

import pytest

from repro.delivery.batcher import DeliveryBatcher
from repro.delivery.policy import BatchingPolicy
from repro.transport.clock import ClockScheduler, VirtualClock


def _collect(flushed):
    return lambda key, entries: flushed.append((key, list(entries)))


class TestPolicy:
    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            BatchingPolicy(window=-1.0)

    def test_rejects_zero_max_batch(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)


class TestSizeTrigger:
    def test_flushes_when_group_reaches_max_batch(self):
        flushed = []
        batcher = DeliveryBatcher(
            VirtualClock(), BatchingPolicy(window=0.0, max_batch=3), _collect(flushed)
        )
        for i in range(3):
            batcher.add("sink", i)
        assert flushed == [("sink", [0, 1, 2])]
        assert batcher.pending() == 0

    def test_groups_are_independent(self):
        flushed = []
        batcher = DeliveryBatcher(
            VirtualClock(), BatchingPolicy(window=0.0, max_batch=2), _collect(flushed)
        )
        batcher.add("a", 1)
        batcher.add("b", 2)
        assert flushed == []
        batcher.add("a", 3)
        assert flushed == [("a", [1, 3])]
        assert batcher.pending() == 1


class TestPublishBoundary:
    def test_zero_window_flush_publish_drains_everything(self):
        flushed = []
        batcher = DeliveryBatcher(
            VirtualClock(), BatchingPolicy(window=0.0, max_batch=100), _collect(flushed)
        )
        batcher.add("a", 1)
        batcher.add("b", 2)
        batcher.flush_publish()
        assert flushed == [("a", [1]), ("b", [2])]

    def test_positive_window_flush_publish_holds_groups(self):
        flushed = []
        clock = VirtualClock()
        batcher = DeliveryBatcher(
            clock, BatchingPolicy(window=5.0, max_batch=100), _collect(flushed)
        )
        batcher.add("a", 1)
        batcher.flush_publish()  # windowed mode: the deadline decides
        assert flushed == []
        assert batcher.pending() == 1


class TestWindowTrigger:
    def test_deadline_flushes_on_virtual_clock(self):
        flushed = []
        clock = VirtualClock()
        scheduler = ClockScheduler(clock)
        batcher = DeliveryBatcher(
            clock,
            BatchingPolicy(window=5.0, max_batch=100),
            _collect(flushed),
            scheduler=scheduler,
        )
        batcher.add("a", 1)
        batcher.add("a", 2)
        scheduler.run_due()
        assert flushed == []  # window not expired yet
        clock.advance(5.0)
        scheduler.run_due()
        assert flushed == [("a", [1, 2])]

    def test_stale_timer_after_size_flush_is_ignored(self):
        flushed = []
        clock = VirtualClock()
        scheduler = ClockScheduler(clock)
        batcher = DeliveryBatcher(
            clock,
            BatchingPolicy(window=5.0, max_batch=2),
            _collect(flushed),
            scheduler=scheduler,
        )
        batcher.add("a", 1)
        batcher.add("a", 2)  # size trigger flushes now; timer for t=5 is stale
        assert flushed == [("a", [1, 2])]
        # a new group forms before the old deadline fires: the stale timer
        # must not flush it early
        clock.advance(2.0)
        batcher.add("a", 3)  # its own window ends at t=7
        clock.advance(3.0)  # t=5: the stale timer fires and must do nothing
        scheduler.run_due()
        assert flushed == [("a", [1, 2])]
        clock.advance(2.0)  # t=7: the group's own deadline
        scheduler.run_due()
        assert flushed == [("a", [1, 2]), ("a", [3])]

    def test_flush_all_cancels_deadlines(self):
        flushed = []
        clock = VirtualClock()
        scheduler = ClockScheduler(clock)
        batcher = DeliveryBatcher(
            clock,
            BatchingPolicy(window=5.0, max_batch=100),
            _collect(flushed),
            scheduler=scheduler,
        )
        batcher.add("a", 1)
        batcher.flush_all()
        assert flushed == [("a", [1])]
        clock.advance(10.0)
        scheduler.run_due()  # expired deadline finds nothing to flush
        assert flushed == [("a", [1])]


class TestStats:
    def test_counts_flushes_and_largest_batch(self):
        flushed = []
        batcher = DeliveryBatcher(
            VirtualClock(), BatchingPolicy(window=0.0, max_batch=3), _collect(flushed)
        )
        for i in range(3):
            batcher.add("a", i)
        batcher.add("b", 0)
        batcher.flush_publish()
        assert batcher.stats.snapshot() == {
            "flushes": 2,
            "coalesced": 4,
            "largest_batch": 3,
        }
