"""Failed notifications are reported, never silently dropped (even with
reliability disabled: the historical best-effort paths now record outcomes
and count ``delivery.failed_total``)."""

from repro.delivery import failure_counts
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:out"><e:n>{n}</e:n></e:V>')


class TestWseOutcomes:
    def test_failed_push_is_recorded(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src")
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        sink.close()
        source.publish(event())
        stages = [f.stage for f in source.delivery_failures]
        assert "notify" in stages
        failure = source.delivery_failures[0]
        assert failure.family == "wse"
        assert failure.sink == "http://snk"
        assert failure.kind == "AddressUnreachable"

    def test_failed_subscription_end_is_recorded(self):
        network = SimulatedNetwork(VirtualClock())
        source = EventSource(network, "http://src")
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(
            source.epr(), notify_to=sink.epr(), end_to=sink.epr()
        )
        sink.close()
        # delivery failure ends the subscription; the SubscriptionEnd
        # message itself also fails — both must surface
        source.publish(event())
        stages = [f.stage for f in source.delivery_failures]
        assert stages == ["notify", "subscription_end"]

    def test_failed_total_counter_without_reliability(self):
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        source = EventSource(network, "http://src")
        sink = EventSink(network, "http://snk")
        WseSubscriber(network).subscribe(source.epr(), notify_to=sink.epr())
        sink.close()
        source.publish(event())
        counters = instrumentation.metrics.snapshot()["counters"]
        key = (
            "delivery.failed_total"
            "{family=wse,kind=AddressUnreachable,stage=notify}"
        )
        assert counters[key] == 1


class TestWsnOutcomes:
    def test_failed_notify_is_recorded_and_subscription_still_reaped(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        consumer = NotificationConsumer(network, "http://cons")
        WsnSubscriber(network).subscribe(producer.epr(), consumer.epr(), topic="t")
        consumer.close()
        producer.publish(event(), topic="t")
        # destroying the subscription fires a TerminationNotification at the
        # same dead consumer, so both failures surface
        assert [f.stage for f in producer.delivery_failures] == [
            "notify",
            "termination_notification",
        ]
        assert producer.delivery_failures[0].family == "wsn"
        # unmanaged behavior is unchanged: the dead consumer's subscription
        # is destroyed so later publishes stop attempting it
        assert producer.publish(event(), topic="t") == 0

    def test_failed_termination_notification_is_recorded(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        consumer = NotificationConsumer(network, "http://cons")
        WsnSubscriber(network).subscribe(
            producer.epr(), consumer.epr(), topic="t", initial_termination="PT10S"
        )
        consumer.close()
        network.clock.advance(20.0)
        producer.sweep()  # expiry fires a TerminationNotification: refused
        assert [f.stage for f in producer.delivery_failures] == [
            "termination_notification"
        ]

    def test_failure_counts_aggregates(self):
        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://prod")
        subscriber = WsnSubscriber(network)
        for n in range(2):
            consumer = NotificationConsumer(network, f"http://cons-{n}")
            subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
            consumer.close()
        producer.publish(event(), topic="t")
        counts = failure_counts(producer.delivery_failures)
        assert counts == {
            "wsn/notify/AddressUnreachable": 2,
            "wsn/termination_notification/AddressUnreachable": 2,
        }
