"""The per-sink circuit breaker state machine on the virtual clock."""

from repro.delivery import BreakerState, CircuitBreaker
from repro.transport import VirtualClock


def make(clock=None, threshold=3, reset=10.0):
    clock = clock or VirtualClock()
    return clock, CircuitBreaker(clock, failure_threshold=threshold, reset_after=reset)


class TestCircuitBreaker:
    def test_starts_closed_and_allowing(self):
        _, breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()

    def test_trips_open_at_threshold(self):
        _, breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()

    def test_success_resets_the_failure_count(self):
        _, breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_opens_after_cooldown(self):
        clock, breaker = make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allows()
        clock.advance(9.999)
        assert not breaker.allows()
        clock.advance(0.001)
        assert breaker.allows()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        clock, breaker = make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock, breaker = make(threshold=1, reset=10.0)
        breaker.record_failure()  # opens at t=0
        clock.advance(10.0)
        assert breaker.allows()  # half-open at t=10
        breaker.record_failure()  # re-opens at t=10
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_at() == 20.0
        clock.advance(9.0)
        assert not breaker.allows()
        clock.advance(1.0)
        assert breaker.allows()

    def test_retry_at_while_open(self):
        clock, breaker = make(threshold=1, reset=10.0)
        clock.advance(5.0)
        breaker.record_failure()
        assert breaker.retry_at() == 15.0

    def test_transitions_are_recorded_with_timestamps(self):
        clock, breaker = make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allows()
        breaker.record_success()
        assert [s for _, s in breaker.transitions] == ["open", "half_open", "closed"]
        assert [t for t, _ in breaker.transitions] == [0.0, 10.0, 10.0]

    def test_snapshot_shape(self):
        _, breaker = make(threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["consecutive_failures"] == 1
        assert snap["transitions"] == [[0.0, "open"]]
