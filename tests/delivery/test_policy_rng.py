"""DeliveryPolicy backoff and the seeded deterministic RNG helper."""

import pytest

from repro.delivery import BEST_EFFORT, DeliveryPolicy
from repro.util.rng import SeededRng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = [SeededRng(42).random() for _ in range(10)]
        b = [SeededRng(42).random() for _ in range(10)]
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRng(1).next_u64() != SeededRng(2).next_u64()

    def test_values_in_unit_interval(self):
        rng = SeededRng(7)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_uniform_range(self):
        rng = SeededRng(3)
        for _ in range(1000):
            assert -1.0 <= rng.uniform(-1.0, 1.0) < 1.0

    def test_randrange_bound(self):
        rng = SeededRng(9)
        seen = {rng.randrange(5) for _ in range(200)}
        assert seen == {0, 1, 2, 3, 4}

    def test_fork_is_label_stable(self):
        # forks derive from the construction seed, not the draw position:
        # draws on the parent must not perturb a child's stream
        parent = SeededRng(11)
        before = [parent.fork("jitter").random() for _ in range(3)]
        parent2 = SeededRng(11)
        for _ in range(50):
            parent2.random()
        after = [parent2.fork("jitter").random() for _ in range(3)]
        assert before == after

    def test_fork_labels_are_independent_streams(self):
        parent = SeededRng(11)
        assert parent.fork("a").next_u64() != parent.fork("b").next_u64()

    def test_no_global_random_state(self):
        import random

        state = random.getstate()
        rng = SeededRng(5)
        for _ in range(100):
            rng.random()
            rng.fork("x").uniform(0, 1)
        assert random.getstate() == state


class TestDeliveryPolicy:
    def test_defaults_valid(self):
        policy = DeliveryPolicy()
        assert policy.max_attempts >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DeliveryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            DeliveryPolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            DeliveryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            DeliveryPolicy(message_ttl=0.0)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = DeliveryPolicy(
            base_backoff=1.0, backoff_multiplier=2.0, max_backoff=100.0, jitter=0.0
        )
        rng = SeededRng(0)
        delays = [policy.backoff(n, rng) for n in range(1, 5)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_caps_at_max(self):
        policy = DeliveryPolicy(
            base_backoff=1.0, backoff_multiplier=10.0, max_backoff=5.0, jitter=0.0
        )
        assert policy.backoff(6, SeededRng(0)) == 5.0

    def test_jitter_stays_within_band(self):
        policy = DeliveryPolicy(
            base_backoff=1.0, backoff_multiplier=1.0, max_backoff=1.0, jitter=0.2
        )
        rng = SeededRng(1)
        for _ in range(500):
            delay = policy.backoff(1, rng)
            assert 0.8 <= delay <= 1.2

    def test_jittered_backoff_is_deterministic(self):
        policy = DeliveryPolicy(jitter=0.3)
        a = [policy.backoff(n, SeededRng(4).fork("j")) for n in range(1, 6)]
        b = [policy.backoff(n, SeededRng(4).fork("j")) for n in range(1, 6)]
        assert a == b

    def test_best_effort_is_single_shot(self):
        assert BEST_EFFORT.max_attempts == 1
