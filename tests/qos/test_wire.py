"""QoS profiles on the wire: encoding, Subscribe threading, fault subcodes."""

import pytest

from repro.qos import DiscardPolicy, OrderPolicy, QosError, QosProfile
from repro.qos.wire import find_profile, profile_from_element, profile_to_element
from repro.soap.fault import FaultCode, SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import serialize_xml
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName


class TestElementRoundtrip:
    def test_typed_properties_survive(self):
        profile = QosProfile(
            {
                "Priority": 9,
                "MaxEventsPerConsumer": 4,
                "PacingInterval": 0.5,
                "StartTimeSupported": False,
                "OrderPolicy": OrderPolicy.PRIORITY_ORDER,
                "DiscardPolicy": DiscardPolicy.LIFO_ORDER,
                "EventReliability": "Persistent",
            }
        )
        decoded = profile_from_element(profile_to_element(profile))
        assert decoded.values == profile.values

    def test_serialized_form_is_stable(self):
        element = profile_to_element(QosProfile({"Priority": 1, "DiscardPolicy": DiscardPolicy.FIFO_ORDER}))
        reparsed = parse_xml(serialize_xml(element))
        assert profile_from_element(reparsed).values == {
            "Priority": 1,
            "DiscardPolicy": DiscardPolicy.FIFO_ORDER,
        }

    def test_unknown_property_name_is_rejected(self):
        element = profile_to_element(QosProfile({"Priority": 1}))
        element.elements().__next__().attrs[QName("", "Name")] = "Bogus"
        with pytest.raises(QosError):
            profile_from_element(element)

    def test_bad_value_is_rejected(self):
        profile = QosProfile({"Priority": 1})
        element = profile_to_element(profile)
        for prop in element.elements():
            prop.children[:] = ["not-an-int"]
        with pytest.raises(QosError):
            profile_from_element(element)

    def test_find_profile_absent_is_none(self):
        assert find_profile(XElem(QName("", "Subscribe"))) is None


def _network():
    return SimulatedNetwork(VirtualClock())


class TestWseSubscribeQos:
    def test_accepted_profile_lands_on_the_subscription(self):
        network = _network()
        source = EventSource(network, "http://source")
        sink = EventSink(network, "http://sink")
        WseSubscriber(network).subscribe(
            source.epr(),
            notify_to=sink.epr(),
            qos=QosProfile({"Priority": 3, "MaxEventsPerConsumer": 2}),
        )
        (subscription,) = source.store._subscriptions.values()
        assert subscription.qos is not None
        assert subscription.qos.get("Priority") == 3

    def test_unsupported_profile_faults_with_subcode(self):
        network = _network()
        source = EventSource(network, "http://source")
        sink = EventSink(network, "http://sink")
        with pytest.raises(SoapFault) as excinfo:
            WseSubscriber(network).subscribe(
                source.epr(),
                notify_to=sink.epr(),
                qos=QosProfile({"StartTime": 12.0}),
            )
        fault = excinfo.value
        assert fault.code is FaultCode.SENDER
        assert fault.subcode is not None and "UnsupportedQoS" in fault.subcode.local
        assert len(source.store) == 0


class TestWsnSubscribeQos:
    @pytest.mark.parametrize("version", [WsnVersion.V1_0, WsnVersion.V1_2, WsnVersion.V1_3])
    def test_accepted_profile_lands_on_the_subscription(self, version):
        network = _network()
        producer = NotificationProducer(network, "http://producer", version=version)
        consumer = NotificationConsumer(network, "http://consumer", version=version)
        WsnSubscriber(network, version=version).subscribe(
            producer.epr(),
            consumer.epr(),
            topic="qos",
            qos=QosProfile({"Priority": 5}),
        )
        (subscription,) = producer._subscriptions.values()
        assert subscription.qos is not None
        assert subscription.qos.get("Priority") == 5

    def test_unsupported_profile_faults_with_policy_subcode(self):
        network = _network()
        producer = NotificationProducer(network, "http://producer")
        consumer = NotificationConsumer(network, "http://consumer")
        with pytest.raises(SoapFault) as excinfo:
            WsnSubscriber(network).subscribe(
                producer.epr(),
                consumer.epr(),
                topic="qos",
                qos=QosProfile({"StopTimeSupported": True}),
            )
        fault = excinfo.value
        assert fault.code is FaultCode.SENDER
        assert (
            fault.subcode is not None
            and "UnsupportedPolicyRequestFault" in fault.subcode.local
        )
        assert producer.live_subscriptions() == []

    def test_13_profile_rides_subscription_policy_with_use_raw(self):
        # the profile and UseRaw share the SubscriptionPolicy wrapper
        network = _network()
        producer = NotificationProducer(network, "http://producer")
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(
            producer.epr(),
            consumer.epr(),
            topic="qos",
            use_raw=True,
            qos=QosProfile({"Priority": 2}),
        )
        (subscription,) = producer._subscriptions.values()
        assert subscription.use_raw
        assert subscription.qos is not None and subscription.qos.get("Priority") == 2
