"""Adaptive QoS core: token buckets, policy validation, admission plans."""

import pytest

from repro.delivery.task import DeliveryTask
from repro.qos import (
    AdaptiveQosController,
    AdaptiveQosPolicy,
    DiscardPolicy,
    QosError,
    QosProfile,
    TokenBucket,
    default_tenant,
    validate_supported,
)
from repro.transport import VirtualClock


def task(priority=0, items=1):
    return DeliveryTask("http://sink", lambda: None, priority=priority)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(VirtualClock(), rate=1.0, burst=2.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_on_virtual_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=2.0, burst=2.0)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10.0, burst=3.0)
        clock.advance(100.0)
        assert bucket.balance() == 3.0

    def test_next_available_is_exactly_acquirable(self):
        # waking at the computed instant must find the token there (the
        # epsilon guard against float refill rounding)
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=3.0, burst=1.0)
        bucket.try_acquire()
        ready = bucket.next_available()
        assert ready > clock.now()
        clock.advance(ready - clock.now())
        assert bucket.try_acquire()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(VirtualClock(), rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(VirtualClock(), rate=1.0, burst=0.5)


class TestPolicyValidation:
    def test_defaults_are_a_no_op_policy(self):
        policy = AdaptiveQosPolicy()
        controller = AdaptiveQosController(VirtualClock(), policy=policy)
        assert controller.attempt_delay("http://sink") is None
        admit, victims = controller.plan_admission("http://sink", [], task())
        assert (admit, victims) == (True, [])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"per_sink_rate": 0.0},
            {"per_tenant_rate": -1.0},
            {"per_sink_burst": 0.0},
            {"max_sink_queue": 0},
            {"pause_pending_above": 0},
            {"pause_pending_above": 5, "resume_pending_below": 5},
        ],
    )
    def test_invalid_knobs_raise_qos_error(self, kwargs):
        with pytest.raises(QosError):
            AdaptiveQosPolicy(**kwargs)


class TestProfileAcceptance:
    def test_start_stop_time_are_unsupported(self):
        with pytest.raises(QosError):
            validate_supported(QosProfile({"StartTime": 5.0}))
        with pytest.raises(QosError):
            validate_supported(QosProfile({"StopTimeSupported": True}))

    def test_rejections_are_counted(self):
        controller = AdaptiveQosController(VirtualClock())
        with pytest.raises(QosError):
            controller.register_consumer("http://c", QosProfile({"StartTime": 1.0}))
        assert controller.profile_rejections == 1
        assert controller.profile_for("http://c") is None

    def test_accepted_profile_drives_limits(self):
        controller = AdaptiveQosController(
            VirtualClock(), policy=AdaptiveQosPolicy(max_sink_queue=100)
        )
        controller.register_consumer(
            "http://c",
            QosProfile(
                {
                    "MaxEventsPerConsumer": 3,
                    "Priority": 7,
                    "DiscardPolicy": DiscardPolicy.LIFO_ORDER,
                }
            ),
        )
        assert controller.queue_limit("http://c") == 3  # profile overrides policy
        assert controller.queue_limit("http://other") == 100
        assert controller.priority_of("http://c") == 7
        assert controller.discard_policy_for("http://c") is DiscardPolicy.LIFO_ORDER
        assert controller.discard_policy_for("http://other") is DiscardPolicy.FIFO_ORDER


class TestAdmission:
    def make(self, *, limit=2, discard=DiscardPolicy.FIFO_ORDER):
        policy = AdaptiveQosPolicy(max_sink_queue=limit, discard_policy=discard)
        return AdaptiveQosController(VirtualClock(), policy=policy)

    def test_under_limit_admits_without_victims(self):
        controller = self.make(limit=2)
        admit, victims = controller.plan_admission("s", [task()], task())
        assert (admit, victims) == (True, [])

    def test_fifo_evicts_oldest_waiting(self):
        controller = self.make(limit=2)
        head, waiting = task(), task()
        admit, victims = controller.plan_admission("s", [head, waiting], task())
        assert admit and victims == [waiting]

    def test_queue_head_is_never_evicted(self):
        # index 0 may be owned by an active drain frame; with nothing else
        # waiting, the incoming task is rejected instead
        controller = self.make(limit=1)
        head = task()
        admit, victims = controller.plan_admission("s", [head], task())
        assert (admit, victims) == (False, [])

    def test_lifo_rejects_the_newcomer(self):
        controller = self.make(limit=2, discard=DiscardPolicy.LIFO_ORDER)
        admit, victims = controller.plan_admission("s", [task(), task()], task())
        assert (admit, victims) == (False, [])

    def test_priority_evicts_lowest_only_when_strictly_beaten(self):
        controller = self.make(limit=3, discard=DiscardPolicy.PRIORITY_ORDER)
        head, low, high = task(5), task(1), task(9)
        admit, victims = controller.plan_admission("s", [head, low, high], task(4))
        assert admit and victims == [low]
        # equal priority does not evict: the earlier message keeps its seat
        admit, victims = controller.plan_admission("s", [head, low, high], task(1))
        assert (admit, victims) == (False, [])


class TestPacing:
    def test_sink_bucket_gates_and_reports_ready_time(self):
        clock = VirtualClock()
        controller = AdaptiveQosController(
            clock, policy=AdaptiveQosPolicy(per_sink_rate=1.0, per_sink_burst=1.0)
        )
        assert controller.attempt_delay("http://t/a") is None  # burst token
        ready = controller.attempt_delay("http://t/a")
        assert ready == pytest.approx(clock.now() + 1.0)
        # a starved check consumes nothing: the ready time does not move
        assert controller.attempt_delay("http://t/a") == pytest.approx(ready)
        clock.advance(1.0)
        assert controller.attempt_delay("http://t/a") is None

    def test_tenant_bucket_is_shared_across_sinks(self):
        clock = VirtualClock()
        controller = AdaptiveQosController(
            clock,
            policy=AdaptiveQosPolicy(per_tenant_rate=1.0, per_tenant_burst=1.0),
        )
        assert controller.attempt_delay("http://t/a") is None
        # same tenant prefix: the sibling sink finds the bucket empty
        assert controller.attempt_delay("http://t/b") is not None
        # a different tenant has its own bucket
        assert controller.attempt_delay("http://other/x") is None

    def test_default_tenant_grouping(self):
        assert default_tenant("http://host/app/c1") == "http://host/app"
        assert default_tenant("http://host/app/c1") == default_tenant(
            "http://host/app/c2"
        )
        assert default_tenant("sink-7") == "sink"
        assert default_tenant("plain") == "plain"

    def test_snapshot_counts(self):
        controller = AdaptiveQosController(
            VirtualClock(), policy=AdaptiveQosPolicy(per_sink_rate=1.0)
        )
        controller.attempt_delay("http://a")
        controller.register_consumer("http://a", QosProfile({"Priority": 1}))
        snap = controller.snapshot()
        assert snap["sink_buckets"] == 1
        assert snap["profiles"] == 1
