"""Tests for WS-Addressing versions, endpoint references and headers."""

import pytest

from repro.soap import SoapEnvelope, SoapVersion, parse_envelope, serialize_envelope
from repro.wsa import EndpointReference, MessageHeaders, WsaVersion, apply_headers, extract_headers
from repro.wsa.headers import detect_wsa_version, fresh_message_id
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

SUB_ID = QName("urn:broker", "SubscriptionId")


class TestVersions:
    def test_three_distinct_namespaces(self):
        assert len({v.namespace for v in WsaVersion}) == 3

    def test_reference_properties_support(self):
        assert WsaVersion.V2003_03.supports_reference_properties
        assert WsaVersion.V2004_08.supports_reference_properties
        assert not WsaVersion.V2005_08.supports_reference_properties

    def test_reference_parameters_support(self):
        assert not WsaVersion.V2003_03.supports_reference_parameters
        assert WsaVersion.V2004_08.supports_reference_parameters
        assert WsaVersion.V2005_08.supports_reference_parameters

    def test_anonymous_uris_distinct_per_version(self):
        assert len({v.anonymous_uri for v in WsaVersion}) == 3

    def test_from_namespace(self):
        assert WsaVersion.from_namespace(WsaVersion.V2005_08.namespace) is WsaVersion.V2005_08
        with pytest.raises(ValueError):
            WsaVersion.from_namespace("urn:none")


class TestEndpointReference:
    def _epr(self):
        epr = EndpointReference("http://broker/subs")
        epr.with_parameter(text_element(SUB_ID, "sub-7"))
        return epr

    @pytest.mark.parametrize("version", list(WsaVersion))
    def test_roundtrip(self, version):
        epr = self._epr()
        again = EndpointReference.from_element(epr.to_element(version), version)
        assert again.address == "http://broker/subs"
        assert again.parameter_text(SUB_ID) == "sub-7"

    def test_2004_08_uses_reference_parameters_element(self):
        text_form = str(self._epr().to_element(WsaVersion.V2004_08).find(
            WsaVersion.V2004_08.qname("ReferenceParameters")
        ))
        assert text_form is not None

    def test_2003_03_folds_parameters_into_properties(self):
        elem = self._epr().to_element(WsaVersion.V2003_03)
        assert elem.find(WsaVersion.V2003_03.qname("ReferenceProperties")) is not None
        assert elem.find(WsaVersion.V2003_03.qname("ReferenceParameters")) is None

    def test_2005_08_folds_properties_into_parameters(self):
        epr = EndpointReference("http://x")
        epr.with_property(text_element(SUB_ID, "p"))
        elem = epr.to_element(WsaVersion.V2005_08)
        assert elem.find(WsaVersion.V2005_08.qname("ReferenceParameters")) is not None
        assert elem.find(WsaVersion.V2005_08.qname("ReferenceProperties")) is None

    def test_parameter_lookup_covers_properties(self):
        epr = EndpointReference("http://x")
        epr.with_property(text_element(SUB_ID, "from-props"))
        assert epr.parameter_text(SUB_ID) == "from-props"

    def test_missing_address_raises(self):
        from repro.xmlkit.element import XElem

        version = WsaVersion.V2005_08
        with pytest.raises(ValueError):
            EndpointReference.from_element(XElem(version.qname("EndpointReference")), version)

    def test_anonymous(self):
        epr = EndpointReference.anonymous(WsaVersion.V2005_08)
        assert epr.address == WsaVersion.V2005_08.anonymous_uri


class TestHeaders:
    def _request_headers(self):
        target = EndpointReference("http://broker/mgr")
        target.with_parameter(text_element(SUB_ID, "sub-9"))
        return MessageHeaders.request(target, "urn:spec:Renew")

    @pytest.mark.parametrize("version", list(WsaVersion))
    def test_apply_extract_roundtrip(self, version):
        headers = self._request_headers()
        envelope = SoapEnvelope(SoapVersion.V11)
        apply_headers(envelope, headers, version)
        wire = serialize_envelope(envelope)
        recovered = extract_headers(parse_envelope(wire))
        assert recovered.to == "http://broker/mgr"
        assert recovered.action == "urn:spec:Renew"
        assert recovered.message_id == headers.message_id

    def test_echoed_reference_parameters_become_headers(self):
        headers = self._request_headers()
        envelope = SoapEnvelope()
        apply_headers(envelope, headers, WsaVersion.V2005_08)
        recovered = extract_headers(parse_envelope(serialize_envelope(envelope)))
        echoed = [e for e in recovered.echoed if e.name == SUB_ID]
        assert echoed and echoed[0].full_text().strip() == "sub-9"

    def test_2005_08_marks_is_reference_parameter(self):
        headers = self._request_headers()
        envelope = SoapEnvelope()
        apply_headers(envelope, headers, WsaVersion.V2005_08)
        block = envelope.header(SUB_ID)
        assert block.attrs.get(WsaVersion.V2005_08.is_reference_parameter_attr) == "true"

    def test_detect_version(self):
        for version in WsaVersion:
            envelope = SoapEnvelope()
            apply_headers(envelope, self._request_headers(), version)
            assert detect_wsa_version(envelope) is version

    def test_detect_version_none(self):
        assert detect_wsa_version(SoapEnvelope()) is None

    def test_extract_without_wsa_raises(self):
        with pytest.raises(ValueError):
            extract_headers(SoapEnvelope())

    def test_reply_relates_to_request(self):
        request = self._request_headers()
        reply = MessageHeaders.reply(request, "urn:spec:RenewResponse", WsaVersion.V2005_08)
        assert reply.relates_to == request.message_id
        assert reply.to == WsaVersion.V2005_08.anonymous_uri

    def test_reply_honours_reply_to(self):
        request = self._request_headers()
        request.reply_to = EndpointReference("http://client/回")
        reply = MessageHeaders.reply(request, "a", WsaVersion.V2005_08)
        assert reply.to == "http://client/回"

    def test_message_ids_unique(self):
        assert fresh_message_id() != fresh_message_id()

    def test_reply_to_roundtrip(self):
        headers = self._request_headers()
        headers.reply_to = EndpointReference("http://client/sink")
        envelope = SoapEnvelope()
        apply_headers(envelope, headers, WsaVersion.V2005_08)
        recovered = extract_headers(parse_envelope(serialize_envelope(envelope)))
        assert recovered.reply_to.address == "http://client/sink"
