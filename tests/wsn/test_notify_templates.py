"""Cache-invalidation tests for the Notify envelope byte-templates.

The byte-template cache must never serve a stale envelope: templates are
dropped when the last subscription referencing their sink goes away —
unsubscribe, lease-expiry sweep — and wiped wholesale after a crash-recovery
replay.  An EPR change keys a different cache slot by construction (the sink
signature is recomputed per send), which the resubscribe test verifies on
the wire.
"""

import pytest

from repro.messenger import WsMessenger
from repro.store import BrokerStore, MemoryEventLog, recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import (
    NotificationConsumer,
    NotificationProducer,
    WsnSubscriber,
    WsnVersion,
)
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:tmpl"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def stack(network):
    producer = NotificationProducer(network, "http://tmpl-producer")
    consumer = NotificationConsumer(network, "http://tmpl-consumer")
    subscriber = WsnSubscriber(network)
    return producer, consumer, subscriber


class TestEviction:
    def test_publish_compiles_then_reuses_one_template(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        assert len(producer.templates) == 0
        producer.publish(event(1), topic="t")
        producer.publish(event(2), topic="t")
        assert len(producer.templates) == 1
        assert len(consumer.received) == 2

    def test_unsubscribe_drops_the_sink_templates(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        producer.publish(event(), topic="t")
        assert len(producer.templates) == 1
        subscriber.unsubscribe(handle)
        assert len(producer.templates) == 0

    def test_shared_sink_survives_until_last_reference(self, stack):
        producer, consumer, subscriber = stack
        first = subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        second = subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        producer.publish(event(), topic="t")
        assert len(producer.templates) == 1
        subscriber.unsubscribe(first)
        # the other subscription still points at this sink: keep its templates
        assert len(producer.templates) == 1
        subscriber.unsubscribe(second)
        assert len(producer.templates) == 0

    def test_lease_expiry_sweep_drops_the_sink_templates(self, network, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="t", initial_termination="PT1H"
        )
        producer.publish(event(1), topic="t")
        assert len(producer.templates) == 1
        network.clock.advance(3601.0)
        # the next publish sweeps due leases before matching
        assert producer.publish(event(2), topic="t") == 0
        assert len(producer.templates) == 0
        assert len(consumer.received) == 1


class TestEprChange:
    def test_resubscribed_epr_renders_through_a_fresh_template(self, network, stack):
        producer, consumer, subscriber = stack
        frames = []
        network.wire_observers.append(
            lambda obs: frames.append(bytes(obs.request))
        )
        tag = QName("urn:x-test", "Tag")
        handle = subscriber.subscribe(
            producer.epr(),
            consumer.epr().with_parameter(text_element(tag, "old-identity")),
            topic="t",
        )
        producer.publish(event(1), topic="t")
        assert any(b"old-identity" in frame for frame in frames)
        subscriber.unsubscribe(handle)
        del frames[:]
        subscriber.subscribe(
            producer.epr(),
            consumer.epr().with_parameter(text_element(tag, "new-identity")),
            topic="t",
        )
        producer.publish(event(2), topic="t")
        notify_frames = [f for f in frames if b"Notify" in f]
        assert notify_frames, "second publish reached the wire"
        # the stale sink's template cannot leak into the new EPR's envelopes
        assert all(b"old-identity" not in frame for frame in notify_frames)
        assert any(b"new-identity" in frame for frame in notify_frames)
        assert len(consumer.received) == 2


class TestRecoveryReplay:
    def test_replay_leaves_the_template_caches_empty(self, network):
        log = MemoryEventLog()
        broker = WsMessenger(network, "http://tmpl-broker", store=BrokerStore(log))
        consumer = NotificationConsumer(network, "http://tmpl-consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="t")
        broker.publish(event(1), topic="t")
        broker.run_deliveries_until_idle()
        assert any(len(p.templates) for p in broker.wsn_producers.values())
        broker.close()

        recovered = recover_broker(network, "http://tmpl-broker", log)
        recovered.run_deliveries_until_idle()
        # replayed publishes compiled templates mid-replay; all dropped so
        # post-recovery traffic recompiles against the converged stores
        assert all(len(p.templates) == 0 for p in recovered.wsn_producers.values())
        received_before = len(consumer.received)
        recovered.publish(event(2), topic="t")
        recovered.run_deliveries_until_idle()
        assert len(consumer.received) == received_before + 1
