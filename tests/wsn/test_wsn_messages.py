"""Unit tests for WS-Notification message building/parsing, per version."""

import pytest

from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wsn import messages
from repro.wsn.messages import NotificationMessage, WsnFilterSpec
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml, serialize_xml
from repro.xmlkit.names import Namespaces


def roundtrip(element):
    return parse_xml(serialize_xml(element))


@pytest.fixture(params=list(WsnVersion), ids=lambda v: v.name)
def version(request):
    return request.param


def payload(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:wm"><e:n>{n}</e:n></e:V>')


class TestSubscribeMessage:
    def test_minimal_roundtrip(self, version):
        built = messages.build_subscribe(
            version, consumer=EndpointReference("http://c")
        )
        parsed = messages.parse_subscribe(roundtrip(built), version)
        assert parsed.consumer.address == "http://c"
        assert parsed.filter.topic_expression is None
        assert not parsed.use_raw

    def test_full_filter_roundtrip(self, version):
        spec = WsnFilterSpec(
            topic_expression="jobs/status",
            producer_properties="/*[cluster='A']",
            message_content="/e:V[e:n > 0]",
            namespaces={"e": "urn:wm"},
        )
        built = messages.build_subscribe(
            version,
            consumer=EndpointReference("http://c"),
            filter=spec,
            initial_termination="2006-01-01T01:00:00Z",
        )
        parsed = messages.parse_subscribe(roundtrip(built), version)
        assert parsed.filter.topic_expression == "jobs/status"
        assert parsed.filter.producer_properties == "/*[cluster='A']"
        assert parsed.filter.message_content == "/e:V[e:n > 0]"
        assert parsed.filter.namespaces == {"e": "urn:wm"}
        assert parsed.initial_termination_text == "2006-01-01T01:00:00Z"

    def test_raw_flag_roundtrip(self, version):
        built = messages.build_subscribe(
            version, consumer=EndpointReference("http://c"), use_raw=True
        )
        assert messages.parse_subscribe(roundtrip(built), version).use_raw

    def test_13_uses_filter_wrapper(self):
        version = WsnVersion.V1_3
        built = messages.build_subscribe(
            version,
            consumer=EndpointReference("http://c"),
            filter=WsnFilterSpec(topic_expression="t"),
        )
        assert built.find(version.qname("Filter")) is not None
        assert built.find(version.qname("TopicExpression")) is None  # nested

    def test_10_carries_parts_directly(self):
        version = WsnVersion.V1_0
        built = messages.build_subscribe(
            version,
            consumer=EndpointReference("http://c"),
            filter=WsnFilterSpec(topic_expression="t", message_content="//x"),
        )
        assert built.find(version.qname("Filter")) is None
        assert built.find(version.qname("TopicExpression")) is not None
        # pre-1.3 the content filter is the "Selector" element
        assert built.find(version.qname("Selector")) is not None
        assert built.find(version.qname("UseNotify")) is not None

    def test_missing_consumer_faults(self, version):
        from repro.xmlkit.element import XElem

        with pytest.raises(SoapFault):
            messages.parse_subscribe(XElem(version.qname("Subscribe")), version)

    def test_wrong_element_faults(self, version):
        with pytest.raises(SoapFault):
            messages.parse_subscribe(parse_xml("<z/>"), version)


class TestSubscribeResponse:
    def test_roundtrip(self, version):
        built = messages.build_subscribe_response(
            version,
            manager_address="http://mgr",
            sub_id="wsn-sub-1",
            termination_time_text="2006-01-01T01:00:00Z",
        )
        result = messages.parse_subscribe_response(roundtrip(built), version)
        assert result.sub_id == "wsn-sub-1"
        assert result.reference.address == "http://mgr"
        assert result.termination_time_text == "2006-01-01T01:00:00Z"

    def test_id_enclosure_style_per_version(self, version):
        built = messages.build_subscribe_response(
            version, manager_address="http://mgr", sub_id="s"
        )
        wsa = version.wsa_version
        reference = built.require(version.qname("SubscriptionReference"))
        props = reference.find(wsa.qname("ReferenceProperties"))
        params = reference.find(wsa.qname("ReferenceParameters"))
        if version.uses_reference_properties:
            assert props is not None and params is None
        else:
            assert params is not None and props is None

    def test_id_from_headers(self):
        from repro.xmlkit.element import text_element

        header = text_element(messages.SUBSCRIPTION_ID, "s-1")
        assert messages.subscription_id_from_headers([header]) == "s-1"
        with pytest.raises(SoapFault):
            messages.subscription_id_from_headers([])


class TestNotifyMessage:
    def test_roundtrip_full(self, version):
        items = [
            NotificationMessage(
                payload(1),
                topic="jobs/status",
                subscription_reference=EndpointReference("http://mgr"),
                producer_reference=EndpointReference("http://prod"),
            ),
            NotificationMessage(payload(2)),
        ]
        built = messages.build_notify(version, items)
        parsed = messages.parse_notify(roundtrip(built), version)
        assert len(parsed) == 2
        assert parsed[0].topic == "jobs/status"
        assert parsed[0].subscription_reference.address == "http://mgr"
        assert parsed[0].producer_reference.address == "http://prod"
        assert parsed[0].payload == payload(1)
        assert parsed[1].topic is None

    def test_notify_structure_names(self, version):
        built = messages.build_notify(version, [NotificationMessage(payload())])
        message = built.require(version.qname("NotificationMessage"))
        assert message.find(version.qname("Message")) is not None

    def test_empty_message_faults(self, version):
        from repro.xmlkit.element import XElem

        notify = XElem(version.qname("Notify"))
        message = XElem(version.qname("NotificationMessage"))
        message.append(XElem(version.qname("Message")))
        notify.append(message)
        with pytest.raises(SoapFault):
            messages.parse_notify(notify, version)

    def test_wrong_root_faults(self, version):
        with pytest.raises(SoapFault):
            messages.parse_notify(parse_xml("<z/>"), version)


class TestManagementMessages:
    def test_renew_only_13(self):
        assert messages.build_renew(WsnVersion.V1_3, "PT1H") is not None
        for old in (WsnVersion.V1_0, WsnVersion.V1_2):
            with pytest.raises(SoapFault):
                messages.build_renew(old, "PT1H")

    def test_unsubscribe_only_13(self):
        assert messages.build_unsubscribe(WsnVersion.V1_3) is not None
        with pytest.raises(SoapFault):
            messages.build_unsubscribe(WsnVersion.V1_0)

    def test_pause_resume_all_versions(self, version):
        assert messages.build_pause(version).name.local == "PauseSubscription"
        assert messages.build_resume(version).name.local == "ResumeSubscription"

    def test_get_current_message_roundtrip(self, version):
        built = messages.build_get_current_message(
            version, "jobs", Namespaces.DIALECT_CONCRETE
            if hasattr(Namespaces, "DIALECT_CONCRETE")
            else Namespaces.DIALECT_TOPIC_CONCRETE,
        )
        topic, dialect = messages.parse_get_current_message(roundtrip(built), version)
        assert topic == "jobs"
        assert dialect == Namespaces.DIALECT_TOPIC_CONCRETE

    def test_wsrf_property_request_roundtrip(self):
        from repro.xmlkit.names import QName

        name = QName("urn:props", "Status")
        built = messages.build_get_resource_property(name)
        assert messages.parse_get_resource_property(roundtrip(built)) == name

    def test_set_termination_time_shapes(self):
        from repro.xmlkit.names import QName

        with_time = messages.build_set_termination_time("2006-01-01T01:00:00Z")
        requested = with_time.find(
            QName(Namespaces.WSRF_RL, "RequestedTerminationTime")
        )
        assert requested.full_text() == "2006-01-01T01:00:00Z"
        infinite = messages.build_set_termination_time(None)
        assert infinite.find(
            QName(Namespaces.WSRF_RL, "RequestedLifetimeDuration")
        ) is not None

    def test_termination_notification(self):
        from repro.xmlkit.names import QName

        note = messages.build_termination_notification("expired")
        reason = note.find(QName(Namespaces.WSRF_RL, "TerminationReason"))
        assert reason.full_text() == "expired"

    def test_action_uris(self):
        assert messages.wsrf_action("X").endswith("/X")
        assert Namespaces.WSRF_RP in messages.wsrf_action("X")
        assert Namespaces.WSRF_RL in messages.wsrf_lifetime_action("X")
