"""End-to-end WS-Notification tests across versions 1.0, 1.2 and 1.3."""

import pytest

from repro.soap import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import (
    NotificationConsumer,
    NotificationProducer,
    WsnSubscriber,
    WsnVersion,
)
from repro.wsn.producer import PROP_STATUS
from repro.xmlkit import parse_xml

NS = {"ev": "urn:grid:events"}


def event(progress=50):
    return parse_xml(
        f'<ev:Status xmlns:ev="urn:grid:events"><ev:progress>{progress}</ev:progress></ev:Status>'
    )


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture(params=list(WsnVersion), ids=lambda v: v.name)
def version(request):
    return request.param


@pytest.fixture
def stack(network, version):
    producer = NotificationProducer(network, "http://producer", version=version)
    consumer = NotificationConsumer(network, "http://consumer", version=version)
    subscriber = WsnSubscriber(network, version=version)
    return producer, consumer, subscriber


class TestSubscribeNotify:
    def test_topic_subscription_wrapped_delivery(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs/status")
        assert producer.publish(event(), topic="jobs/status") == 1
        assert len(consumer.received) == 1
        received = consumer.received[0]
        assert received.wrapped  # Notify wrapper is the default
        assert received.topic == "jobs/status"
        assert received.payload.name.local == "Status"

    def test_topic_mismatch_not_delivered(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs/status")
        assert producer.publish(event(), topic="jobs/errors") == 0
        assert consumer.received == []

    def test_raw_delivery(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="jobs/status", use_raw=True
        )
        producer.publish(event(), topic="jobs/status")
        assert len(consumer.received) == 1
        assert not consumer.received[0].wrapped

    def test_wrapped_message_carries_subscription_reference(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        producer.publish(event(), topic="jobs")
        assert consumer.received[0].subscription_address == handle.reference.address

    def test_topic_required_pre_13(self, network):
        for version in (WsnVersion.V1_0, WsnVersion.V1_2):
            producer = NotificationProducer(network, f"http://p-{version.name}", version=version)
            consumer = NotificationConsumer(network, f"http://c-{version.name}", version=version)
            subscriber = WsnSubscriber(network, version=version)
            with pytest.raises(SoapFault) as excinfo:
                subscriber.subscribe(producer.epr(), consumer.epr())
            assert "Topic" in excinfo.value.subcode.local

    def test_topicless_subscription_allowed_13(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        subscriber.subscribe(producer.epr(), consumer.epr())
        assert producer.publish(event(), topic="anything") == 1

    def test_full_dialect_wildcard_subscription(self, stack, version):
        producer, consumer, subscriber = stack
        from repro.xmlkit.names import Namespaces

        subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs//.",
            topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        )
        assert producer.publish(event(), topic="jobs/status/progress") == 1
        assert producer.publish(event(), topic="system/alerts") == 0

    def test_message_content_filter_13(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs",
            message_content="/ev:Status[ev:progress > 60]",
            namespaces=NS,
        )
        assert producer.publish(event(50), topic="jobs") == 0
        assert producer.publish(event(80), topic="jobs") == 1

    def test_producer_properties_filter(self, network):
        producer = NotificationProducer(
            network,
            "http://p13",
            version=WsnVersion.V1_3,
            producer_properties={"cluster": "A"},
        )
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs",
            producer_properties="/*[cluster='A']",
        )
        assert producer.publish(event(), topic="jobs") == 1

    def test_all_three_filters_conjoin(self, network):
        producer = NotificationProducer(
            network,
            "http://p13",
            version=WsnVersion.V1_3,
            producer_properties={"cluster": "A"},
        )
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs",
            message_content="/ev:Status[ev:progress > 60]",
            producer_properties="/*[cluster='A']",
            namespaces=NS,
        )
        assert producer.publish(event(80), topic="jobs") == 1
        assert producer.publish(event(40), topic="jobs") == 0
        assert producer.publish(event(80), topic="other") == 0

    def test_invalid_topic_expression_faults(self, stack):
        producer, consumer, subscriber = stack
        with pytest.raises(SoapFault):
            subscriber.subscribe(producer.epr(), consumer.epr(), topic="  ")

    def test_bad_content_filter_faults(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(
                producer.epr(), consumer.epr(), topic="jobs", message_content="///"
            )
        assert "MessageContent" in excinfo.value.subcode.local


class TestSubscriptionIdentifierStyle:
    """Section V.4 category 1: ReferenceProperties vs ReferenceParameters."""

    def test_10_uses_reference_properties(self, network):
        producer = NotificationProducer(network, "http://p10", version=WsnVersion.V1_0)
        consumer = NotificationConsumer(network, "http://c10", version=WsnVersion.V1_0)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_0)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        assert handle.reference.reference_properties
        assert not handle.reference.reference_parameters

    def test_13_uses_reference_parameters(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        assert handle.reference.reference_parameters
        assert not handle.reference.reference_properties


class TestLifetimeManagement:
    def test_native_renew_13(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        handle = subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="jobs", initial_termination="PT60S"
        )
        network.clock.advance(30.0)
        subscriber.renew(handle, "PT120S")
        network.clock.advance(100.0)
        assert producer.publish(event(), topic="jobs") == 1

    def test_native_unsubscribe_13(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        subscriber.unsubscribe(handle)
        assert producer.publish(event(), topic="jobs") == 0

    @pytest.mark.parametrize("old", [WsnVersion.V1_0, WsnVersion.V1_2], ids=lambda v: v.name)
    def test_native_ops_not_defined_pre_13(self, network, old):
        producer = NotificationProducer(network, f"http://p-{old.name}", version=old)
        consumer = NotificationConsumer(network, f"http://c-{old.name}", version=old)
        subscriber = WsnSubscriber(network, version=old)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        with pytest.raises(SoapFault):
            subscriber.unsubscribe(handle)
        with pytest.raises(SoapFault):
            subscriber.renew(handle, "2006-01-01T01:00:00Z")

    def test_wsrf_destroy_is_the_old_unsubscribe(self, stack):
        """Refutes [16]'s claim that WSN cannot unsubscribe (paper sec. II)."""
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        subscriber.destroy(handle)
        assert producer.publish(event(), topic="jobs") == 0

    def test_wsrf_set_termination_time_is_the_old_renew(self, stack, network):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs",
            initial_termination="2006-01-01T00:01:00Z",
        )
        subscriber.set_termination_time(handle, "2006-01-01T00:10:00Z")
        network.clock.advance(120.0)
        assert producer.publish(event(), topic="jobs") == 1

    def test_duration_termination_rejected_pre_13(self, network):
        producer = NotificationProducer(network, "http://p10", version=WsnVersion.V1_0)
        consumer = NotificationConsumer(network, "http://c10", version=WsnVersion.V1_0)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_0)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(
                producer.epr(), consumer.epr(), topic="jobs", initial_termination="PT60S"
            )
        assert "UnacceptableInitialTerminationTime" in excinfo.value.subcode.local

    def test_duration_termination_accepted_13(self, network):
        producer = NotificationProducer(network, "http://p13", version=WsnVersion.V1_3)
        consumer = NotificationConsumer(network, "http://c13", version=WsnVersion.V1_3)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_3)
        handle = subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="jobs", initial_termination="PT60S"
        )
        assert handle.termination_time_text.startswith("2006-")

    def test_expiry_fires_termination_notification_pre_13(self, network):
        producer = NotificationProducer(network, "http://p10", version=WsnVersion.V1_0)
        consumer = NotificationConsumer(network, "http://c10", version=WsnVersion.V1_0)
        subscriber = WsnSubscriber(network, version=WsnVersion.V1_0)
        subscriber.subscribe(
            producer.epr(),
            consumer.epr(),
            topic="jobs",
            initial_termination="2006-01-01T00:01:00Z",
        )
        network.clock.advance(120.0)
        producer.sweep()
        assert consumer.termination_notices == ["expired"]

    def test_get_status_via_wsrf(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        assert subscriber.get_status(handle) == "Active"

    def test_unknown_subscription_faults(self, stack, network):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        subscriber.destroy(handle)
        with pytest.raises(SoapFault):
            subscriber.pause(handle)


class TestPauseResume:
    def test_pause_queues_resume_flushes(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        subscriber.pause(handle)
        assert subscriber.get_status(handle) == "Paused"
        assert producer.publish(event(1), topic="jobs") == 1  # matched, queued
        assert producer.publish(event(2), topic="jobs") == 1
        assert consumer.received == []
        subscriber.resume(handle)
        assert len(consumer.received) == 2
        assert subscriber.get_status(handle) == "Active"

    def test_resume_without_backlog(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        subscriber.pause(handle)
        subscriber.resume(handle)
        producer.publish(event(), topic="jobs")
        assert len(consumer.received) == 1


class TestGetCurrentMessage:
    def test_returns_last_message_on_topic(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        producer.publish(event(10), topic="jobs")
        producer.publish(event(99), topic="jobs")
        current = subscriber.get_current_message(producer.epr(), "jobs")
        assert "99" in current.full_text()

    def test_no_message_faults(self, stack):
        producer, consumer, subscriber = stack
        with pytest.raises(SoapFault) as excinfo:
            subscriber.get_current_message(producer.epr(), "quiet/topic")
        assert "NoCurrentMessage" in excinfo.value.subcode.local


class TestDeliveryFailure:
    def test_dead_consumer_subscription_destroyed(self, stack):
        producer, consumer, subscriber = stack
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        consumer.close()
        assert producer.publish(event(), topic="jobs") == 1
        assert producer.publish(event(), topic="jobs") == 0  # gone now

    def test_resource_property_document(self, stack):
        producer, consumer, subscriber = stack
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="jobs")
        values = subscriber.get_resource_property(handle, PROP_STATUS)
        assert values and values[0].full_text().strip() == "Active"
