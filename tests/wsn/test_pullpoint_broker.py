"""Tests for WSN 1.3 pull points and the WS-BrokeredNotification broker."""

import pytest

from repro.soap import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa import EndpointReference
from repro.wsn import (
    NotificationBroker,
    NotificationConsumer,
    NotificationProducer,
    PullPointClient,
    PullPointFactory,
    WsnSubscriber,
    WsnVersion,
)
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<ev:E xmlns:ev="urn:grid:events"><ev:n>{n}</ev:n></ev:E>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


class TestPullPoint:
    def test_create_subscribe_pull(self, network):
        """The section V.3 pattern: create pull point, subscribe it as the
        consumer, poll it — the producer sees an ordinary push consumer."""
        producer = NotificationProducer(network, "http://producer")
        factory = PullPointFactory(network, "http://pp-factory")
        client = PullPointClient(network)
        subscriber = WsnSubscriber(network)
        pull_point = client.create(factory.epr())
        subscriber.subscribe(producer.epr(), pull_point, topic="jobs")
        producer.publish(event(1), topic="jobs")
        producer.publish(event(2), topic="jobs")
        received = client.get_messages(pull_point)
        assert len(received) == 2
        assert received[0].topic == "jobs"
        assert client.get_messages(pull_point) == []

    def test_maximum_number(self, network):
        producer = NotificationProducer(network, "http://producer")
        factory = PullPointFactory(network, "http://pp-factory")
        client = PullPointClient(network)
        subscriber = WsnSubscriber(network)
        pull_point = client.create(factory.epr())
        subscriber.subscribe(producer.epr(), pull_point, topic="jobs")
        for i in range(5):
            producer.publish(event(i), topic="jobs")
        assert len(client.get_messages(pull_point, maximum=2)) == 2
        assert len(client.get_messages(pull_point)) == 3

    def test_firewalled_consumer_polls(self, network):
        network.add_zone("lan", blocks_inbound=True)
        producer = NotificationProducer(network, "http://producer")
        factory = PullPointFactory(network, "http://pp-factory")
        client = PullPointClient(network, zone="lan")
        subscriber = WsnSubscriber(network, zone="lan")
        pull_point = client.create(factory.epr())
        subscriber.subscribe(producer.epr(), pull_point, topic="jobs")
        producer.publish(event(), topic="jobs")
        assert len(client.get_messages(pull_point)) == 1

    def test_destroy_pull_point(self, network):
        factory = PullPointFactory(network, "http://pp-factory")
        client = PullPointClient(network)
        pull_point = client.create(factory.epr())
        client.destroy(pull_point)
        from repro.transport import AddressUnreachable

        with pytest.raises(AddressUnreachable):
            client.get_messages(pull_point)

    def test_factory_rejected_pre_13(self, network):
        with pytest.raises(SoapFault):
            PullPointFactory(network, "http://pp", version=WsnVersion.V1_0)

    def test_distinct_pull_points(self, network):
        factory = PullPointFactory(network, "http://pp-factory")
        client = PullPointClient(network)
        first = client.create(factory.epr())
        second = client.create(factory.epr())
        assert first.address != second.address


class TestBroker:
    def test_decouples_publisher_and_consumer(self, network):
        broker = NotificationBroker(network, "http://broker")
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs/status")
        assert broker.publish(event(), topic="jobs/status") == 1
        assert len(consumer.received) == 1

    def test_notify_interface_accepts_publications(self, network):
        """A publisher pushes a wrapped Notify at the broker over the wire."""
        from repro.soap.envelope import SoapVersion
        from repro.transport.endpoint import SoapClient
        from repro.wsn import messages
        from repro.wsn.messages import NotificationMessage

        broker = NotificationBroker(network, "http://broker")
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        version = WsnVersion.V1_3
        notify = messages.build_notify(
            version, [NotificationMessage(event(7), topic="jobs")]
        )
        client = SoapClient(network, wsa_version=version.wsa_version, soap_version=SoapVersion.V11)
        client.call(broker.epr(), version.action("Notify"), [notify], expect_reply=False)
        assert len(consumer.received) == 1
        assert "7" in consumer.received[0].payload.full_text()

    def test_register_publisher(self, network):
        broker = NotificationBroker(network, "http://broker")
        registration = broker.register_publisher(
            EndpointReference("http://some-publisher"), topic="jobs"
        )
        assert registration in broker.registrations()
        broker.destroy_registration(registration)
        assert registration not in broker.registrations()

    def test_demand_registration_requires_publisher_and_topic(self, network):
        broker = NotificationBroker(network, "http://broker")
        with pytest.raises(SoapFault):
            broker.register_publisher(None, topic="jobs", demand=True)


class TestDemandBasedPublishing:
    def _setup(self, network):
        # the demand publisher exposes its own producer endpoint
        publisher = NotificationProducer(network, "http://publisher")
        broker = NotificationBroker(network, "http://broker")
        registration = broker.register_publisher(
            publisher.epr(), topic="jobs", demand=True
        )
        return publisher, broker, registration

    def test_paused_until_demand(self, network):
        publisher, broker, registration = self._setup(network)
        assert registration.paused_upstream  # no consumers yet
        # the publisher's messages are queued at the publisher, not delivered
        publisher.publish(event(1), topic="jobs")
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        assert not registration.paused_upstream  # demand appeared -> resumed
        # the queued message flushed through the broker to the consumer
        assert len(consumer.received) == 1

    def test_demand_drops_to_zero_pauses_again(self, network):
        publisher, broker, registration = self._setup(network)
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs")
        assert not registration.paused_upstream
        subscriber.unsubscribe(handle)
        assert registration.paused_upstream

    def test_demand_counts_only_matching_topics(self, network):
        publisher, broker, registration = self._setup(network)
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="system/alerts")
        assert registration.paused_upstream  # interest is in a different topic
        assert broker.demand_for("jobs") == 0
        assert broker.demand_for("system/alerts") == 1

    def test_paused_subscription_carries_no_demand(self, network):
        publisher, broker, registration = self._setup(network)
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs")
        assert not registration.paused_upstream
        subscriber.pause(handle)
        assert registration.paused_upstream
        subscriber.resume(handle)
        assert not registration.paused_upstream

    def test_live_flow_through_demand_chain(self, network):
        publisher, broker, registration = self._setup(network)
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        publisher.publish(event(42), topic="jobs")
        assert len(consumer.received) == 1
        assert "42" in consumer.received[0].payload.full_text()
