"""Wire-level tests for WS-BrokeredNotification publisher registration."""

import pytest

from repro.soap import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import (
    NotificationBroker,
    NotificationConsumer,
    NotificationProducer,
    WsnSubscriber,
)
from repro.wsn.broker import BrokeredClient
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:bw"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def broker(network):
    return NotificationBroker(network, "http://broker")


@pytest.fixture
def client(network):
    return BrokeredClient(network)


class TestRegisterPublisherOverTheWire:
    def test_plain_registration(self, network, broker, client):
        handle = client.register_publisher(
            broker.epr(), publisher=None, topic="jobs", demand=False
        )
        assert handle.key
        assert any(r.key == handle.key for r in broker.registrations())

    def test_demand_registration_full_chain(self, network, broker, client):
        publisher = NotificationProducer(network, "http://publisher")
        handle = client.register_publisher(
            broker.epr(), publisher=publisher.epr(), topic="jobs", demand=True
        )
        registration = next(
            r for r in broker.registrations() if r.key == handle.key
        )
        assert registration.demand and registration.paused_upstream
        # consumer demand appears -> upstream resumed -> events flow
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        assert not registration.paused_upstream
        publisher.publish(event(), topic="jobs")
        assert len(consumer.received) == 1

    def test_demand_without_publisher_faults(self, broker, client):
        with pytest.raises(SoapFault):
            client.register_publisher(broker.epr(), topic="jobs", demand=True)

    def test_destroy_registration(self, network, broker, client):
        publisher = NotificationProducer(network, "http://publisher")
        handle = client.register_publisher(
            broker.epr(), publisher=publisher.epr(), topic="jobs", demand=True
        )
        client.destroy_registration(handle)
        assert all(r.key != handle.key for r in broker.registrations())
        # the broker's upstream subscription at the publisher is gone too
        assert publisher.live_subscriptions() == []

    def test_destroy_twice_faults(self, network, broker, client):
        handle = client.register_publisher(broker.epr(), topic="jobs")
        client.destroy_registration(handle)
        with pytest.raises(SoapFault):
            client.destroy_registration(handle)

    def test_registration_reference_targets_manager_endpoint(self, broker, client):
        handle = client.register_publisher(broker.epr(), topic="jobs")
        assert handle.reference.address == broker.registration_address
