"""Demand-based publishing as a backpressure valve.

Section V.5's demand mechanism pauses upstream publishers when no consumer
wants their topic.  The adaptive-QoS broker extends the same wire mechanism
to *load*: when the delivery pipeline's backlog crosses the policy's
high-water mark, the broker advertises zero demand (pausing every upstream
subscription) until the backlog drains below the low-water mark — and the
reconciliation must stay correct while subscribers churn mid-pause.
"""

import pytest

from repro.delivery import DeliveryManager, DeliveryPolicy
from repro.qos import AdaptiveQosPolicy
from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
from repro.wsn import (
    NotificationBroker,
    NotificationConsumer,
    NotificationProducer,
    WsnSubscriber,
)
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:lag"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def manager(network):
    return DeliveryManager(
        network,
        policy=DeliveryPolicy(
            max_attempts=8,
            base_backoff=5.0,
            jitter=0.0,
            breaker_failure_threshold=100,
        ),
    )


@pytest.fixture
def broker(network, manager):
    return NotificationBroker(
        network,
        "http://broker",
        delivery_manager=manager,
        qos=AdaptiveQosPolicy(pause_pending_above=3, resume_pending_below=1),
    )


@pytest.fixture
def publisher(network, broker):
    publisher = NotificationProducer(network, "http://publisher")
    broker.register_publisher(publisher.epr(), topic="jobs", demand=True)
    return publisher


def upstream_of(broker):
    (registration,) = broker.registrations()
    return registration


class TestLagDrivenPauseResume:
    def test_backlog_pauses_and_drain_resumes_the_publisher(
        self, network, manager, broker, publisher
    ):
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        assert not upstream_of(broker).paused_upstream  # demand exists

        drops = {"on": True}

        def drop(address, request):
            if drops["on"] and address == consumer.address:
                raise MessageLost(address)

        network.observers.append(drop)
        for n in range(3):
            broker.publish(event(n), topic="jobs")
        # backlog hit the high-water mark: the broker advertises zero demand
        assert manager.pending() == 3
        assert broker.lag_paused
        assert broker.publisher_pauses == 1
        assert upstream_of(broker).paused_upstream

        # a paused upstream adds nothing to the backlog: the publisher's
        # event waits in its paused-subscription buffer instead
        publisher.publish(event(99), topic="jobs")
        assert manager.pending() == 3

        drops["on"] = False
        manager.run_until_idle()
        assert manager.pending() == 0
        assert not broker.lag_paused
        assert broker.publisher_resumes == 1
        assert not upstream_of(broker).paused_upstream
        # the deferred event flushed on resume — leveled, not lost
        assert len(consumer.received) == 4

    def test_hysteresis_does_not_flap_between_the_marks(
        self, network, manager, broker, publisher
    ):
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        network.observers.append(
            lambda address, request: (_ for _ in ()).throw(MessageLost(address))
            if address == consumer.address
            else None
        )
        for n in range(4):
            broker.publish(event(n), topic="jobs")
        assert broker.publisher_pauses == 1
        # retries fire, fail, and re-notify with pending still at 4: the
        # broker must not count a fresh pause for every backlog report
        manager.run_until_idle(deadline=network.clock.now() + 20.0)
        assert broker.publisher_pauses == 1
        assert broker.lag_paused

    def test_subscriber_churn_while_lag_paused_stays_paused(
        self, network, manager, broker, publisher
    ):
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        first = subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs")
        drops = {"on": True}

        def drop(address, request):
            if drops["on"] and address == consumer.address:
                raise MessageLost(address)

        network.observers.append(drop)
        for n in range(3):
            broker.publish(event(n), topic="jobs")
        assert broker.lag_paused

        # churn during the pause: every subscription event reconciles demand,
        # but lag overrides it — the upstream must not flap open
        other = NotificationConsumer(network, "http://other")
        second = subscriber.subscribe(broker.epr(), other.epr(), topic="jobs")
        assert upstream_of(broker).paused_upstream
        subscriber.unsubscribe(first)
        assert upstream_of(broker).paused_upstream

        drops["on"] = False
        manager.run_until_idle()
        # lag cleared with one live subscriber left: demand wins again
        assert not broker.lag_paused
        assert not upstream_of(broker).paused_upstream

        # ...and ordinary demand reconciliation still works after the episode
        subscriber.unsubscribe(second)
        assert upstream_of(broker).paused_upstream

    def test_resume_with_no_subscribers_left_stays_paused(
        self, network, manager, broker, publisher
    ):
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs")
        drops = {"on": True}

        def drop(address, request):
            if drops["on"] and address == consumer.address:
                raise MessageLost(address)

        network.observers.append(drop)
        for n in range(3):
            broker.publish(event(n), topic="jobs")
        assert broker.lag_paused
        subscriber.unsubscribe(handle)

        drops["on"] = False
        manager.run_until_idle()
        # the lag pause ended, but with zero demand the upstream stays paused
        assert not broker.lag_paused
        assert upstream_of(broker).paused_upstream
