"""The producer's TopicSet resource property (WS-Topics advertisement)."""

import pytest

from repro.soap import SoapFault
from repro.soap.envelope import SoapVersion
from repro.transport import SimulatedNetwork, VirtualClock
from repro.transport.endpoint import SoapClient
from repro.wsn import NotificationProducer, NotificationConsumer, WsnSubscriber, WsnVersion
from repro.wsn import messages
from repro.wsn.producer import PROP_TOPIC_SET
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces, QName


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


def _read_property(network, producer, name):
    client = SoapClient(
        network, wsa_version=producer.version.wsa_version, soap_version=SoapVersion.V11
    )
    reply = client.call(
        producer.epr(),
        messages.wsrf_action("GetResourceProperty"),
        [messages.build_get_resource_property(name)],
    )
    return reply.body_element()


class TestTopicSetAdvertisement:
    def test_topic_set_lists_published_topics(self, network):
        producer = NotificationProducer(network, "http://producer")
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(producer.epr(), consumer.epr(), topic="jobs/status")
        producer.publish(parse_xml("<e/>"), topic="jobs/status")
        producer.publish(parse_xml("<e/>"), topic="system/alerts")
        response = _read_property(network, producer, PROP_TOPIC_SET)
        topic_set = response.require(PROP_TOPIC_SET)
        paths = [t.full_text() for t in topic_set.elements()]
        assert "jobs/status" in paths and "system/alerts" in paths
        assert "jobs" in paths  # ancestors advertised too

    def test_producer_properties_readable(self, network):
        producer = NotificationProducer(
            network, "http://producer", producer_properties={"cluster": "A"}
        )
        response = _read_property(
            network, producer, QName(Namespaces.WSRF_RP, "ProducerProperties")
        )
        assert "A" in response.full_text()

    def test_unknown_producer_property_faults(self, network):
        producer = NotificationProducer(network, "http://producer")
        with pytest.raises(SoapFault):
            _read_property(network, producer, QName("urn:x", "Nope"))

    def test_no_wsrf_no_producer_property_port(self, network):
        producer = NotificationProducer(
            network, "http://producer", version=WsnVersion.V1_3, enable_wsrf=False
        )
        with pytest.raises(SoapFault):
            _read_property(network, producer, PROP_TOPIC_SET)

    def test_topic_set_document_shape(self, network):
        producer = NotificationProducer(network, "http://producer")
        producer.topics.add("a/b/c")
        document = producer.topic_set_document()
        assert document.name == PROP_TOPIC_SET
        assert len(list(document.elements())) == 3  # a, a/b, a/b/c
