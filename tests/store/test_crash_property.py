"""Property test: crash the broker at a random point, recover, lose nothing.

Each seed derives a randomized-but-deterministic scenario (publishes,
renewals, pauses, pull drains, a firewalled consumer, a dark consumer) and a
crash point between two of its operations.  After recovery the remaining
operations continue against the recovered broker.  Whatever the crash point:

- the mesh-wide conservation audit passes (no lost obligations — anything
  unsettled at the crash is explicitly failed, never silently dropped);
- no consumer ever receives a payload twice (replay suppression);
- consumers whose obligations settle synchronously receive exactly the
  published sequence.
"""

import pytest

from repro.delivery import DeliveryPolicy, drain_message_box_wse
from repro.messenger import WsMessenger
from repro.obs import Instrumentation
from repro.obs.audit import audit
from repro.store import BrokerStore, MemoryEventLog, recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.rng import SeededRng
from repro.wse import DeliveryMode, EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

ZONE = "pp-zone"
SEEDS = [2006, 7, 41, 1234, 90125]


class Scenario:
    """One deterministic run; ``crash_at`` kills the broker mid-sequence."""

    def __init__(self, seed: int):
        self.rng = SeededRng(seed)
        self.network = SimulatedNetwork(VirtualClock())
        self.instrumentation = Instrumentation.attach(self.network)
        self.network.add_zone(ZONE, blocks_inbound=True)
        self.policy = DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        self.broker = WsMessenger(
            self.network,
            "http://pp-broker",
            store=BrokerStore(MemoryEventLog()),
            delivery=self.policy,
        )
        self.sink = EventSink(self.network, "http://pp-sink")
        self.consumer = NotificationConsumer(self.network, "http://pp-consumer")
        self.inside = EventSink(self.network, "http://pp-inside", zone=ZONE)
        self.dark = NotificationConsumer(self.network, "http://pp-dark")
        self.wse = WseSubscriber(self.network)
        self.wsn = WsnSubscriber(self.network)
        self.sink_handle = self.wse.subscribe(self.broker.epr(), notify_to=self.sink.epr())
        self.pull_handle = self.wse.subscribe(self.broker.epr(), mode=DeliveryMode.PULL)
        WseSubscriber(self.network, zone=ZONE).subscribe(
            self.broker.epr(), notify_to=self.inside.epr()
        )
        self.consumer_handle = self.wsn.subscribe(
            self.broker.epr(), self.consumer.epr(), topic="pp"
        )
        self.wsn.subscribe(self.broker.epr(), self.dark.epr(), topic="pp")
        self.dark.close()  # every copy for it retries, then dead-letters
        self.published = 0
        self.pulled: list[str] = []
        self.drained: list[str] = []
        self.ops = self._script()

    def _script(self):
        ops = []
        for _ in range(10):
            roll = self.rng.randrange(10)
            if roll < 6:
                ops.append("publish")
            elif roll < 7:
                ops.append("renew")
            elif roll < 8:
                ops.append("pause" if "pause" not in ops else "resume")
            elif roll < 9:
                ops.append("pull")
            else:
                ops.append("settle")
        ops.append("publish")  # at least one message always flows
        return ops

    def apply(self, op: str) -> None:
        if op == "publish":
            self.published += 1
            self.broker.publish(
                parse_xml(f'<e:V xmlns:e="urn:pp"><e:n>{self.published}</e:n></e:V>'),
                topic="pp",
            )
        elif op == "renew":
            self.wse.renew(self.sink_handle, "PT3H")
        elif op == "pause":
            self.wsn.pause(self.consumer_handle)
        elif op == "resume":
            self.wsn.resume(self.consumer_handle)
        elif op == "pull":
            self.pulled.extend(
                p.full_text() for p in self.wse.pull(self.pull_handle)
            )
        elif op == "settle":
            self.broker.run_deliveries_until_idle()

    def crash_and_recover(self) -> None:
        self.broker.close()
        self.broker = recover_broker(
            self.network, "http://pp-broker", self.broker.store.log, delivery=self.policy
        )

    def finish(self) -> None:
        self.broker.run_deliveries_until_idle()
        if "pause" in self.ops and "resume" not in self.ops[self.ops.index("pause"):]:
            self.wsn.resume(self.consumer_handle)
            self.broker.run_deliveries_until_idle()
        self.pulled.extend(p.full_text() for p in self.wse.pull(self.pull_handle))
        box = self.broker.message_boxes.get("http://pp-inside")
        if box is not None and len(box):
            self.drained.extend(
                p.full_text()
                for p in drain_message_box_wse(self.network, box.epr(), zone=ZONE)
            )


def _texts(received):
    # EventSink stores raw payloads; NotificationConsumer wraps them
    return [getattr(item, "payload", item).full_text() for item in received]


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_anywhere_loses_nothing(seed):
    scenario = Scenario(seed)
    crash_at = scenario.rng.randrange(len(scenario.ops) + 1)
    for index, op in enumerate(scenario.ops):
        if index == crash_at:
            scenario.crash_and_recover()
        scenario.apply(op)
    if crash_at == len(scenario.ops):
        scenario.crash_and_recover()
    scenario.finish()

    expected = [str(n) for n in range(1, scenario.published + 1)]
    # synchronous-settling consumers see exactly the published sequence
    assert _texts(scenario.sink.received) == expected
    assert _texts(scenario.consumer.received) == expected
    # the firewalled consumer's parked copies drained exactly once
    assert scenario.drained == expected
    # the pull queue yielded each message exactly once, in order
    assert scenario.pulled == expected
    # nobody saw a duplicate
    for texts in (
        _texts(scenario.sink.received),
        _texts(scenario.consumer.received),
        scenario.drained,
        scenario.pulled,
    ):
        assert len(texts) == len(set(texts))
    # conservation: every obligation ever opened is accounted for
    result = audit(scenario.instrumentation, scenario=f"crash-seed-{seed}")
    assert result.passed, result.render()


@pytest.mark.parametrize("seed", [2006, 41])
def test_every_crash_point_for_two_seeds(seed):
    """Exhaustive sweep: the invariants hold at *every* op boundary."""
    op_count = len(Scenario(seed).ops)
    for crash_at in range(op_count + 1):
        scenario = Scenario(seed)
        for index, op in enumerate(scenario.ops):
            if index == crash_at:
                scenario.crash_and_recover()
            scenario.apply(op)
        if crash_at == len(scenario.ops):
            scenario.crash_and_recover()
        scenario.finish()
        expected = [str(n) for n in range(1, scenario.published + 1)]
        assert _texts(scenario.sink.received) == expected, f"crash_at={crash_at}"
        assert scenario.drained == expected, f"crash_at={crash_at}"
        assert scenario.pulled == expected, f"crash_at={crash_at}"
        result = audit(scenario.instrumentation, scenario=f"sweep-{seed}-{crash_at}")
        assert result.passed, f"crash_at={crash_at}\n{result.render()}"
