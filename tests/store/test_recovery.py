"""Crash recovery from the event log: replayable projections end to end."""

import pytest

from repro.delivery import DeliveryPolicy, drain_message_box_wse
from repro.messenger import WsMessenger
from repro.obs import Instrumentation
from repro.obs.audit import audit
from repro.store import BrokerStore, FileEventLog, MemoryEventLog, recover_broker
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import DeliveryMode, EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:rc"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


def _broker(network, log=None, **kwargs):
    # explicit None check: an empty FileEventLog is falsy but very much a log
    store = BrokerStore(log if log is not None else MemoryEventLog())
    return WsMessenger(network, "http://rc-broker", store=store, **kwargs)


def _recover(network, log, **kwargs):
    return recover_broker(network, "http://rc-broker", log, **kwargs)


class TestIdentityPreservation:
    def test_subscription_ids_survive_the_crash(self, network):
        broker = _broker(network)
        sink = EventSink(network, "http://rc-sink")
        consumer = NotificationConsumer(network, "http://rc-consumer")
        wse_handle = WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        wsn_handle = WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="rc")
        projection = broker.store.projection(broker)
        broker.close()
        recovered = _recover(network, broker.store.log)
        assert recovered.store.projection(recovered) == projection
        keys = set(recovered.store.projection(recovered)["subscriptions"])
        assert f"wse:v2004_08:{wse_handle.sub_id}" in keys
        assert f"wsn:v1_3:{wsn_handle.sub_id}" in keys

    def test_old_manager_eprs_still_work(self, network):
        broker = _broker(network)
        sink = EventSink(network, "http://rc-sink")
        consumer = NotificationConsumer(network, "http://rc-consumer")
        wse_subscriber = WseSubscriber(network)
        wsn_subscriber = WsnSubscriber(network)
        wse_handle = wse_subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        wsn_handle = wsn_subscriber.subscribe(broker.epr(), consumer.epr(), topic="rc")
        broker.close()
        recovered = _recover(network, broker.store.log)
        # the manager EPRs minted before the crash address the new broker's
        # managers and carry the same subscription identity
        assert wse_subscriber.get_status(wse_handle)
        wse_subscriber.renew(wse_handle, "PT2H")
        wsn_subscriber.renew(wsn_handle, "PT2H")
        wse_subscriber.unsubscribe(wse_handle)
        wsn_subscriber.unsubscribe(wsn_handle)
        assert recovered.subscription_count() == 0

    def test_granted_expiry_preserved_not_regranted(self, network):
        broker = _broker(network)
        sink = EventSink(network, "http://rc-sink")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr(), expires="PT1H")
        subscriber.renew(handle, "PT4H")
        network.clock.advance(1800.0)  # recovery happens half an hour in
        broker.close()
        recovered = _recover(network, broker.store.log)
        projection = recovered.store.projection(recovered)
        [entry] = projection["subscriptions"].values()
        # absolute expiry from the Renew grant, not 4h from recovery time
        assert entry["expires"] == pytest.approx(4 * 3600.0, abs=1.0)

    def test_unsubscribed_subscriptions_stay_gone(self, network):
        broker = _broker(network)
        sink = EventSink(network, "http://rc-sink")
        keeper = EventSink(network, "http://rc-keeper")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        kept = subscriber.subscribe(broker.epr(), notify_to=keeper.epr())
        subscriber.unsubscribe(handle)
        broker.close()
        recovered = _recover(network, broker.store.log)
        assert recovered.subscription_count() == 1
        keys = set(recovered.store.projection(recovered)["subscriptions"])
        assert keys == {f"wse:v2004_08:{kept.sub_id}"}


class TestObligationRecovery:
    def test_no_duplicate_deliveries_on_replay(self, network):
        instrumentation = Instrumentation.attach(network)
        broker = _broker(network)
        sink = EventSink(network, "http://rc-sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        for n in range(4):
            broker.publish(event(n), topic="rc")
        broker.run_deliveries_until_idle()
        assert len(sink.received) == 4
        broker.close()
        recovered = _recover(network, broker.store.log)
        recovered.run_deliveries_until_idle()
        # settled deliveries replay as suppressed obligations, never re-sent
        assert len(sink.received) == 4
        assert recovered.store.stats.suppressed == 4
        recovered.publish(event(9), topic="rc")
        recovered.run_deliveries_until_idle()
        assert len(sink.received) == 5
        assert audit(instrumentation, scenario="recovery").passed

    def test_parked_obligations_survive_and_drain(self, network):
        network.add_zone("rc-dmz", blocks_inbound=True)
        broker = _broker(network)
        sink = EventSink(network, "http://rc-inside", zone="rc-dmz")
        WseSubscriber(network, zone="rc-dmz").subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event(1), topic="rc")
        broker.publish(event(2), topic="rc")
        broker.run_deliveries_until_idle()
        projection = broker.store.projection(broker)
        assert projection["boxes"]["http://rc-inside"]["pending"] == 2
        broker.close()
        recovered = _recover(network, broker.store.log)
        recovered.run_deliveries_until_idle()
        assert recovered.store.stats.reparked == 2
        assert recovered.store.projection(recovered) == projection
        box = recovered.message_boxes.get("http://rc-inside")
        payloads = drain_message_box_wse(network, box.epr(), zone="rc-dmz")
        assert [p.full_text() for p in payloads] == ["1", "2"]

    def test_dead_letters_survive_and_replay(self, network):
        policy = DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        broker = _broker(network, delivery=policy)
        consumer = NotificationConsumer(network, "http://rc-dark")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="rc")
        consumer.close()
        broker.publish(event(1), topic="rc")
        broker.run_deliveries_until_idle()
        assert len(broker.delivery_manager.dlq) == 1
        broker.close()
        recovered = _recover(network, broker.store.log, delivery=policy)
        recovered.run_deliveries_until_idle()
        assert recovered.store.stats.redead == 1
        assert len(recovered.delivery_manager.dlq) == 1
        # the consumer comes back; DLQ replay delivers exactly once
        revived = NotificationConsumer(network, "http://rc-dark")
        assert recovered.delivery_manager.dlq.replay(recovered.delivery_manager) == 1
        recovered.run_deliveries_until_idle()
        assert len(revived.received) == 1

    def test_pull_queue_trimmed_to_undrained_suffix(self, network):
        broker = _broker(network)
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), mode=DeliveryMode.PULL)
        for n in range(4):
            broker.publish(event(n), topic="rc")
        broker.run_deliveries_until_idle()
        assert len(subscriber.pull(handle, max_messages=2)) == 2
        projection = broker.store.projection(broker)
        [entry] = projection["subscriptions"].values()
        assert entry["queued"] == 2
        broker.close()
        recovered = _recover(network, broker.store.log)
        recovered.run_deliveries_until_idle()
        assert recovered.store.projection(recovered) == projection
        # only the undrained suffix is still pullable
        remaining = subscriber.pull(handle)
        assert [p.full_text() for p in remaining] == ["2", "3"]

    def test_wsn_pause_state_survives(self, network):
        broker = _broker(network)
        consumer = NotificationConsumer(network, "http://rc-consumer")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), consumer.epr(), topic="rc")
        subscriber.pause(handle)
        broker.publish(event(1), topic="rc")
        broker.run_deliveries_until_idle()
        assert consumer.received == []
        broker.close()
        recovered = _recover(network, broker.store.log)
        recovered.run_deliveries_until_idle()
        [entry] = recovered.store.projection(recovered)["subscriptions"].values()
        assert entry["paused"] is True

    def test_dangling_obligations_fail_closed(self, network):
        """A crash strands an unsettled obligation; recovery closes the books."""
        instrumentation = Instrumentation.attach(network)
        policy = DeliveryPolicy(max_attempts=5, base_backoff=10.0, jitter=0.0)
        broker = _broker(network, delivery=policy)
        consumer = NotificationConsumer(network, "http://rc-dark")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="rc")
        consumer.close()
        broker.publish(event(1), topic="rc")
        # crash while the retry is still backing off: no outcome was logged
        broker.close()
        recovered = _recover(network, broker.store.log, delivery=policy)
        recovered.run_deliveries_until_idle()
        assert recovered.store.stats.crash_failures == 1
        result = audit(instrumentation, scenario="dangling")
        assert result.passed
        assert result.failed == 1


class TestFileBackedRecovery:
    def test_fresh_process_recovery_from_disk(self, network, tmp_path):
        path = tmp_path / "broker.log"
        broker = _broker(network, log=FileEventLog(str(path)))
        sink = EventSink(network, "http://rc-sink")
        handle = WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event(1), topic="rc")
        broker.run_deliveries_until_idle()
        projection = broker.store.projection(broker)
        broker.close()
        broker.store.log.close()
        # a "fresh process": re-open the log purely from its on-disk bytes
        recovered = _recover(network, FileEventLog(str(path)))
        recovered.run_deliveries_until_idle()
        assert recovered.store.projection(recovered) == projection
        assert len(sink.received) == 1  # no duplicate delivery
        recovered.publish(event(2), topic="rc")
        recovered.run_deliveries_until_idle()
        assert len(sink.received) == 2
        keys = set(recovered.store.projection(recovered)["subscriptions"])
        assert keys == {f"wse:v2004_08:{handle.sub_id}"}
