"""Transactional-outbox semantics: append first, settle each sink once."""

import pytest

from repro.delivery import DeliveryPolicy
from repro.messenger import WsMessenger
from repro.store import BrokerStore, MemoryEventLog, OutcomeRecorded, PublishRecorded
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:ob"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def store():
    return BrokerStore(MemoryEventLog())


@pytest.fixture
def broker(network, store):
    return WsMessenger(network, "http://ob-broker", store=store)


def _kinds(store):
    return [record.kind for record in store.log.records()]


class TestOutbox:
    def test_publish_appended_before_any_outcome(self, network, store, broker):
        sink = EventSink(network, "http://ob-sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event(), topic="ob")
        broker.run_deliveries_until_idle()
        kinds = _kinds(store)
        assert kinds.index("publish") < kinds.index("outcome")
        publish = next(r for r in store.log.records() if isinstance(r, PublishRecorded))
        outcome = next(r for r in store.log.records() if isinstance(r, OutcomeRecorded))
        assert outcome.message_id == publish.message_id
        assert outcome.outcome == "delivered"
        assert outcome.sink == "http://ob-sink"

    def test_message_ids_are_serial(self, network, store, broker):
        sink = EventSink(network, "http://ob-sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        for n in range(3):
            broker.publish(event(n), topic="ob")
        broker.run_deliveries_until_idle()
        publishes = [r for r in store.log.records() if isinstance(r, PublishRecorded)]
        assert [p.message_id for p in publishes] == ["msg-1", "msg-2", "msg-3"]

    def test_one_outcome_per_sink(self, network, store, broker):
        sink = EventSink(network, "http://ob-sink")
        consumer = NotificationConsumer(network, "http://ob-consumer")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="ob")
        broker.publish(event(), topic="ob")
        broker.run_deliveries_until_idle()
        outcomes = [r for r in store.log.records() if isinstance(r, OutcomeRecorded)]
        assert {(o.sink, o.outcome) for o in outcomes} == {
            ("http://ob-sink", "delivered"),
            ("http://ob-consumer", "delivered"),
        }
        assert len(outcomes) == 2  # idempotent: exactly one per (message, sink)

    def test_duplicate_terminal_outcome_suppressed(self, store):
        store._record_outcome("msg-1", "http://s", "delivered")
        store._record_outcome("msg-1", "http://s", "delivered")
        store._record_outcome("msg-1", "http://s", "dead", "late")
        outcomes = [r for r in store.log.records() if isinstance(r, OutcomeRecorded)]
        assert len(outcomes) == 1

    def test_dead_letter_settles_as_dead(self, network, store):
        policy = DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        broker = WsMessenger(network, "http://ob-broker", store=store, delivery=policy)
        consumer = NotificationConsumer(network, "http://ob-dark")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="ob")
        consumer.close()  # goes dark before the publish
        broker.publish(event(), topic="ob")
        broker.run_deliveries_until_idle()
        outcomes = [r for r in store.log.records() if isinstance(r, OutcomeRecorded)]
        assert [(o.sink, o.outcome) for o in outcomes] == [("http://ob-dark", "dead")]
        assert outcomes[0].reason

    def test_parked_then_drained_settles_in_two_steps(self, network, store):
        network.add_zone("ob-dmz", blocks_inbound=True)
        broker = WsMessenger(network, "http://ob-broker", store=store)
        sink = EventSink(network, "http://ob-inside", zone="ob-dmz")
        WseSubscriber(network, zone="ob-dmz").subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event(), topic="ob")
        broker.run_deliveries_until_idle()
        assert [
            (o.outcome) for o in store.log.records() if isinstance(o, OutcomeRecorded)
        ] == ["parked"]
        from repro.delivery import drain_message_box_wse

        box = broker.message_boxes.get("http://ob-inside")
        drain_message_box_wse(network, box.epr(), zone="ob-dmz")
        assert [
            (o.outcome) for o in store.log.records() if isinstance(o, OutcomeRecorded)
        ] == ["parked", "drained"]

    def test_subscription_lifecycle_recorded(self, network, store, broker):
        sink = EventSink(network, "http://ob-sink")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        subscriber.renew(handle, "PT2H")
        subscriber.unsubscribe(handle)
        assert _kinds(store) == ["subscribe", "renew", "remove"]
        subscribe, renew, remove = store.log.records()
        assert subscribe.sub_id == renew.sub_id == remove.sub_id == handle.sub_id
        assert subscribe.family == "wse"
        assert renew.expires is not None and renew.expires > subscribe.expires
