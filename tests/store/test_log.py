"""The append-only event log: typed records, serialization, file backend."""

import json

import pytest

from repro.store import (
    FileEventLog,
    MemoryEventLog,
    OutcomeRecorded,
    PublishRecorded,
    RemoveRecorded,
    RenewRecorded,
    SubscribeRecorded,
    record_from_dict,
)


class TestRecords:
    def test_roundtrip_every_record_type(self):
        records = [
            SubscribeRecorded(
                at=1.0,
                family="wse",
                tag="v2004_08",
                sub_id="wse-sub-1",
                action="urn:Subscribe",
                wire="<Envelope/>",
                expires=3601.0,
            ),
            RenewRecorded(at=2.0, family="wse", tag="v2004_08", sub_id="wse-sub-1", expires=7201.0),
            RemoveRecorded(at=3.0, family="wsn", tag="v1_3", sub_id="wsn-sub-1", reason="unsubscribed"),
            PublishRecorded(at=4.0, message_id="msg-1", topic="t", payload="<e/>", lineage=None),
            OutcomeRecorded(at=5.0, message_id="msg-1", sink="http://sink", outcome="delivered"),
        ]
        for record in records:
            doc = record.to_dict()
            json.dumps(doc)  # every field must be JSON-serializable
            assert record_from_dict(doc) == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "nonsense", "at": 0.0})


class TestMemoryEventLog:
    def test_append_returns_offset_and_preserves_order(self):
        log = MemoryEventLog()
        a = PublishRecorded(at=1.0, message_id="msg-1", topic=None, payload="<a/>", lineage=None)
        b = OutcomeRecorded(at=2.0, message_id="msg-1", sink="s", outcome="delivered")
        assert log.append(a) == 0
        assert log.append(b) == 1
        assert len(log) == 2
        assert log.records() == [a, b]

    def test_segment_for_handoff(self):
        log = MemoryEventLog()
        for n in range(4):
            log.append(OutcomeRecorded(at=float(n), message_id=f"msg-{n}", sink="s", outcome="delivered"))
        segment = log.segment(2)
        assert [entry["message_id"] for entry in segment] == ["msg-2", "msg-3"]
        # a fresh log extended with a full segment replays identically
        other = MemoryEventLog()
        other.extend(log.segment(0))
        assert other.records() == log.records()


class TestFileEventLog:
    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "broker.log"
        log = FileEventLog(str(path))
        log.append(
            SubscribeRecorded(
                at=1.0,
                family="wsn",
                tag="v1_3",
                sub_id="wsn-sub-1",
                action="urn:Subscribe",
                wire="<Envelope/>",
                expires=None,
            )
        )
        log.append(PublishRecorded(at=2.0, message_id="msg-1", topic="t", payload="<e/>", lineage=None))
        log.close()
        reloaded = FileEventLog(str(path))
        assert reloaded.records() == log.records()
        reloaded.close()

    def test_lines_are_one_json_document_each(self, tmp_path):
        path = tmp_path / "broker.log"
        log = FileEventLog(str(path))
        log.append(OutcomeRecorded(at=1.0, message_id="msg-1", sink="s", outcome="parked"))
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "outcome"

    def test_append_after_reload_extends(self, tmp_path):
        path = tmp_path / "broker.log"
        log = FileEventLog(str(path))
        log.append(PublishRecorded(at=1.0, message_id="msg-1", topic=None, payload="<a/>", lineage=None))
        log.close()
        resumed = FileEventLog(str(path))
        resumed.append(PublishRecorded(at=2.0, message_id="msg-2", topic=None, payload="<b/>", lineage=None))
        resumed.close()
        final = FileEventLog(str(path))
        assert [r.message_id for r in final.records()] == ["msg-1", "msg-2"]
        final.close()
