"""WS-* composition tests: security and reliability layered around the
unmodified notification specifications (paper section VI observation 4)."""

import pytest

from repro.composition import (
    ReliableChannel,
    SecurityFault,
    make_reliable,
    secure_endpoint,
    sign_envelope,
    verify_envelope,
)
from repro.soap import SoapEnvelope, SoapFault, parse_envelope, serialize_envelope
from repro.transport import MessageLost, SimulatedNetwork, SoapClient, SoapEndpoint, VirtualClock
from repro.wsa import EndpointReference
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

KEY = b"shared-secret"


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:comp"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


class TestSigning:
    def test_sign_verify_roundtrip_over_wire(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        sign_envelope(envelope, KEY)
        again = parse_envelope(serialize_envelope(envelope))
        assert verify_envelope(again, KEY)

    def test_wrong_key_fails(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        sign_envelope(envelope, KEY)
        assert not verify_envelope(envelope, b"other-key")

    def test_tampered_body_fails(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        sign_envelope(envelope, KEY)
        envelope.body[0].append(text_element(QName("urn:comp", "extra"), "injected"))
        assert not verify_envelope(envelope, KEY)

    def test_unsigned_fails(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        assert not verify_envelope(envelope, KEY)

    def test_signature_header_is_must_understand(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        sign_envelope(envelope, KEY)
        assert envelope.headers[-1].must_understand


class TestSecuredWseStack:
    """WS-Security composed around an untouched WS-Eventing exchange."""

    def _secured_stack(self, network):
        source = EventSource(network, "http://sec-source")
        secure_endpoint(source.endpoint, KEY)
        secure_endpoint(source.manager_endpoint, KEY)
        sink = EventSink(network, "http://sec-sink")
        return source, sink

    def test_unsigned_subscribe_rejected(self, network):
        source, sink = self._secured_stack(network)
        subscriber = WseSubscriber(network)  # no signing filter
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert excinfo.value.subcode.local == "FailedAuthentication"

    def test_signed_subscribe_accepted(self, network):
        source, sink = self._secured_stack(network)
        subscriber = WseSubscriber(network)
        subscriber._client.envelope_filter = lambda envelope: sign_envelope(envelope, KEY)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert handle.sub_id
        # the notification spec itself was untouched: publish still works
        assert source.publish(event()) == 1
        assert len(sink.received) == 1

    def test_signed_management_operations(self, network):
        source, sink = self._secured_stack(network)
        subscriber = WseSubscriber(network)
        subscriber._client.envelope_filter = lambda envelope: sign_envelope(envelope, KEY)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        subscriber.renew(handle, "PT1H")
        subscriber.unsubscribe(handle)
        assert source.publish(event()) == 0

    def test_wrong_key_client_rejected(self, network):
        source, sink = self._secured_stack(network)
        subscriber = WseSubscriber(network)
        subscriber._client.envelope_filter = lambda envelope: sign_envelope(
            envelope, b"wrong"
        )
        with pytest.raises(SoapFault):
            subscriber.subscribe(source.epr(), notify_to=sink.epr())


class _FlakyWire:
    """Drop selected wire requests (by 1-based index since arming)."""

    def __init__(self, network, drop):
        self.count = 0
        self.drop = drop
        network.observers.append(self._observe)

    def _observe(self, target, payload):
        self.count += 1
        if self.count in self.drop:
            raise MessageLost(target)


class TestReliability:
    def _receiver(self, network):
        received = []
        endpoint = SoapEndpoint(network, "http://rel-sink")
        endpoint.on_any(lambda envelope, headers: received.append(envelope.body_element()) or None)
        make_reliable(endpoint)
        return received, endpoint

    def test_resend_recovers_loss(self, network):
        received, _ = self._receiver(network)
        client = SoapClient(network)
        channel = ReliableChannel(client, EndpointReference("http://rel-sink"))
        _FlakyWire(network, {1})  # first attempt lost
        assert channel.send("urn:comp:Notify", event())
        assert len(received) == 1
        assert channel.resends == 1

    def test_duplicate_suppression(self, network):
        received, _ = self._receiver(network)
        client = SoapClient(network)
        channel = ReliableChannel(client, EndpointReference("http://rel-sink"))
        # manually deliver the same numbered message twice
        from repro.composition.reliability import _sequence_block

        block = _sequence_block(channel.sequence_id, 1)
        for _ in range(2):
            client.call(
                channel.target,
                "urn:comp:Notify",
                [event()],
                expect_reply=False,
                extra_headers=[block],
            )
        assert len(received) == 1  # second delivery acked but suppressed

    def test_gives_up_after_retries(self, network):
        received, _ = self._receiver(network)
        client = SoapClient(network)
        channel = ReliableChannel(
            client, EndpointReference("http://rel-sink"), max_retries=2
        )
        _FlakyWire(network, {1, 2, 3})  # every attempt lost
        assert not channel.send("urn:comp:Notify", event())
        assert channel.gave_up == 1
        assert received == []

    def test_distinct_messages_all_delivered(self, network):
        received, _ = self._receiver(network)
        client = SoapClient(network)
        channel = ReliableChannel(client, EndpointReference("http://rel-sink"))
        for n in range(3):
            assert channel.send("urn:comp:Notify", event(n))
        assert len(received) == 3

    def test_unsequenced_messages_pass_through(self, network):
        received, _ = self._receiver(network)
        client = SoapClient(network)
        for _ in range(2):
            client.call(
                EndpointReference("http://rel-sink"),
                "urn:comp:Notify",
                [event()],
                expect_reply=False,
            )
        assert len(received) == 2  # no sequence header, no dedup


class TestComposedSecurityAndReliability:
    def test_both_layers_stack(self, network):
        """Signing AND sequencing around one unmodified exchange."""
        received = []
        endpoint = SoapEndpoint(network, "http://both-sink")
        endpoint.on_any(
            lambda envelope, headers: received.append(envelope.body_element()) or None
        )
        make_reliable(endpoint)
        secure_endpoint(endpoint, KEY)
        client = SoapClient(
            network, envelope_filter=lambda envelope: sign_envelope(envelope, KEY)
        )
        channel = ReliableChannel(client, EndpointReference("http://both-sink"))
        _FlakyWire(network, {1})
        assert channel.send("urn:comp:Notify", event())
        assert len(received) == 1
