"""Tests for the SOAP envelope model, faults and codec."""

import pytest

from repro.soap import (
    FaultCode,
    SoapEnvelope,
    SoapFault,
    SoapVersion,
    parse_envelope,
    serialize_envelope,
)
from repro.soap.codec import SoapCodecError, envelope_bytes
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

PAYLOAD = QName("urn:app", "Ping")
HEADER = QName("urn:app", "Session")


def make_envelope(version=SoapVersion.V11):
    envelope = SoapEnvelope(version)
    envelope.add_header(text_element(HEADER, "s-1"), must_understand=True)
    envelope.add_body(text_element(PAYLOAD, "hello"))
    return envelope


class TestEnvelopeModel:
    def test_header_lookup(self):
        envelope = make_envelope()
        assert envelope.header_text(HEADER) == "s-1"
        assert envelope.header(QName("urn:app", "Nope")) is None

    def test_headers_named_and_remove(self):
        envelope = make_envelope()
        envelope.add_header(text_element(HEADER, "s-2"))
        assert len(envelope.headers_named(HEADER)) == 2
        assert envelope.remove_headers(HEADER) == 2
        assert envelope.header(HEADER) is None

    def test_body_element_exactly_one(self):
        envelope = make_envelope()
        assert envelope.body_element().name == PAYLOAD
        envelope.add_body(XElem(PAYLOAD))
        with pytest.raises(ValueError):
            envelope.body_element()

    def test_empty_body_first_body_none(self):
        assert SoapEnvelope().first_body() is None

    def test_copy_independent(self):
        envelope = make_envelope()
        dup = envelope.copy()
        dup.body[0].append("mutation")
        assert envelope.body[0] != dup.body[0]

    def test_version_from_namespace(self):
        assert SoapVersion.from_namespace(SoapVersion.V11.namespace) is SoapVersion.V11
        with pytest.raises(ValueError):
            SoapVersion.from_namespace("urn:not-soap")


class TestCodec:
    @pytest.mark.parametrize("version", list(SoapVersion))
    def test_roundtrip(self, version):
        envelope = make_envelope(version)
        again = parse_envelope(serialize_envelope(envelope))
        assert again.version is version
        assert again.header_text(HEADER) == "s-1"
        assert again.body_element() == envelope.body_element()

    def test_must_understand_roundtrip(self):
        wire = serialize_envelope(make_envelope())
        again = parse_envelope(wire)
        assert again.headers[0].must_understand is True

    def test_actor_roundtrip_soap11(self):
        envelope = SoapEnvelope(SoapVersion.V11)
        envelope.add_header(text_element(HEADER, "x"), actor="urn:next")
        again = parse_envelope(serialize_envelope(envelope))
        assert again.headers[0].actor == "urn:next"

    def test_role_roundtrip_soap12(self):
        envelope = SoapEnvelope(SoapVersion.V12)
        envelope.add_header(text_element(HEADER, "x"), actor="urn:next")
        again = parse_envelope(serialize_envelope(envelope))
        assert again.headers[0].actor == "urn:next"

    def test_rejects_non_envelope(self):
        with pytest.raises(SoapCodecError):
            parse_envelope("<NotAnEnvelope/>")

    def test_rejects_wrong_namespace(self):
        with pytest.raises(SoapCodecError):
            parse_envelope('<Envelope xmlns="urn:fake"><Body/></Envelope>')

    def test_rejects_missing_body(self):
        ns = SoapVersion.V11.namespace
        with pytest.raises(SoapCodecError):
            parse_envelope(f'<e:Envelope xmlns:e="{ns}"><e:Header/></e:Envelope>')

    def test_rejects_garbage(self):
        with pytest.raises(SoapCodecError):
            parse_envelope("this is not xml")

    def test_envelope_bytes_utf8(self):
        assert envelope_bytes(make_envelope()).startswith(b"<?xml")


class TestFaults:
    @pytest.mark.parametrize("version", list(SoapVersion))
    def test_fault_roundtrip(self, version):
        fault = SoapFault(
            FaultCode.SENDER,
            "unable to renew",
            subcode=QName("urn:spec", "UnableToRenew"),
        )
        envelope = fault.to_envelope(version)
        assert envelope.is_fault()
        wire = serialize_envelope(envelope)
        parsed = parse_envelope(wire)
        recovered = SoapFault.from_element(parsed.body_element(), version)
        assert recovered.code is FaultCode.SENDER
        assert recovered.reason == "unable to renew"
        assert recovered.subcode.local == "UnableToRenew"

    def test_soap12_subcode_namespace_preserved(self):
        fault = SoapFault(FaultCode.RECEIVER, "x", subcode=QName("urn:spec", "Oops"))
        parsed = parse_envelope(serialize_envelope(fault.to_envelope(SoapVersion.V12)))
        recovered = SoapFault.from_element(parsed.body_element(), SoapVersion.V12)
        assert recovered.subcode == QName("urn:spec", "Oops")

    def test_fault_detail_preserved(self):
        detail = text_element(QName("urn:spec", "Why"), "lease expired")
        fault = SoapFault(FaultCode.SENDER, "x", subcode=QName("urn:spec", "S"), detail=detail)
        parsed = parse_envelope(serialize_envelope(fault.to_envelope(SoapVersion.V11)))
        recovered = SoapFault.from_element(parsed.body_element(), SoapVersion.V11)
        assert recovered.detail == detail

    def test_fault_is_exception(self):
        with pytest.raises(SoapFault):
            raise SoapFault(FaultCode.RECEIVER, "boom")

    def test_fault_str(self):
        fault = SoapFault(FaultCode.SENDER, "bad", subcode=QName("urn:s", "X"))
        assert "bad" in str(fault) and "X" in str(fault)

    def test_version_specific_code_locals(self):
        assert FaultCode.SENDER.local_for(SoapVersion.V11) == "Client"
        assert FaultCode.SENDER.local_for(SoapVersion.V12) == "Sender"
