"""SOAP 1.2 end-to-end and FaultTo coverage: the stack is version-agnostic
on receive (endpoints answer whatever envelope version arrives)."""

import pytest

from repro.soap import SoapEnvelope, SoapFault, SoapVersion
from repro.transport import SimulatedNetwork, SoapClient, SoapEndpoint, VirtualClock
from repro.wsa import EndpointReference, MessageHeaders
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


class TestSoap12Exchange:
    def test_soap12_client_against_soap11_service(self, network):
        """Version detection happens per message: a 1.2 request is parsed,
        dispatched, and answered without configuration."""
        source = EventSource(network, "http://v12-source")
        sink = EventSink(network, "http://v12-sink")
        subscriber = WseSubscriber(network)
        subscriber._client.soap_version = SoapVersion.V12
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert handle.sub_id
        assert source.publish(parse_xml("<e/>")) == 1

    def test_soap12_fault_round_trip(self, network):
        endpoint = SoapEndpoint(network, "http://v12-faulty")

        def refuse(envelope, headers):
            from repro.soap import FaultCode

            # the fault must render in the *request's* SOAP version
            assert envelope.version is SoapVersion.V12
            raise SoapFault(FaultCode.SENDER, "no", subcode=QName("urn:t", "Refused"))

        endpoint.on_any(refuse)
        client = SoapClient(network, soap_version=SoapVersion.V12)
        with pytest.raises(SoapFault) as excinfo:
            client.call(
                EndpointReference("http://v12-faulty"),
                "urn:t:Op",
                [text_element(QName("urn:t", "E"), "x")],
            )
        assert excinfo.value.reason == "no"
        assert excinfo.value.subcode == QName("urn:t", "Refused")


class TestFaultTo:
    def test_fault_to_header_round_trip(self, network):
        from repro.soap import parse_envelope, serialize_envelope
        from repro.wsa import apply_headers, extract_headers
        from repro.wsa.versions import WsaVersion

        headers = MessageHeaders(to="http://svc", action="urn:a")
        headers.fault_to = EndpointReference("http://fault-collector")
        envelope = SoapEnvelope()
        apply_headers(envelope, headers, WsaVersion.V2005_08)
        recovered = extract_headers(parse_envelope(serialize_envelope(envelope)))
        assert recovered.fault_to.address == "http://fault-collector"
