"""Property-based round-trip tests for SOAP envelopes and WSA structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap import SoapEnvelope, SoapVersion, parse_envelope, serialize_envelope
from repro.wsa import EndpointReference, MessageHeaders, WsaVersion, apply_headers, extract_headers
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

_locals = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,8}", fullmatch=True)
_uris = st.from_regex(r"urn:[a-z]{1,8}", fullmatch=True)
_qnames = st.builds(QName, _uris, _locals)
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\r"),
    max_size=20,
)
_addresses = st.from_regex(r"http://[a-z]{1,10}(/[a-z]{1,8}){0,2}", fullmatch=True)


@st.composite
def envelopes(draw):
    envelope = SoapEnvelope(draw(st.sampled_from(list(SoapVersion))))
    for _ in range(draw(st.integers(0, 3))):
        envelope.add_header(
            text_element(draw(_qnames), draw(_texts)),
            must_understand=draw(st.booleans()),
        )
    for _ in range(draw(st.integers(0, 2))):
        body = XElem(draw(_qnames))
        if draw(st.booleans()):
            body.append(text_element(draw(_qnames), draw(_texts)))
        envelope.add_body(body)
    return envelope


@st.composite
def eprs(draw):
    epr = EndpointReference(draw(_addresses))
    for _ in range(draw(st.integers(0, 3))):
        epr.with_parameter(text_element(draw(_qnames), draw(_texts)))
    return epr


class TestEnvelopeRoundTrip:
    @given(envelopes())
    @settings(max_examples=150, deadline=None)
    def test_codec_roundtrip(self, envelope):
        again = parse_envelope(serialize_envelope(envelope))
        assert again.version is envelope.version
        assert len(again.headers) == len(envelope.headers)
        for left, right in zip(again.headers, envelope.headers):
            assert left.must_understand == right.must_understand
            assert left.content == right.content
        assert again.body == envelope.body

    @given(envelopes())
    @settings(max_examples=80, deadline=None)
    def test_copy_equals_roundtrip(self, envelope):
        dup = envelope.copy()
        assert serialize_envelope(dup) == serialize_envelope(envelope)


class TestEprRoundTrip:
    @given(eprs(), st.sampled_from(list(WsaVersion)))
    @settings(max_examples=150, deadline=None)
    def test_epr_roundtrip(self, epr, version):
        element = epr.to_element(version)
        again = EndpointReference.from_element(element, version)
        assert again.address == epr.address
        carried = again.reference_parameters + again.reference_properties
        original = epr.reference_parameters + epr.reference_properties
        assert len(carried) == len(original)
        for name in {e.name for e in original}:
            assert epr.parameter_text(name) == again.parameter_text(name)


class TestHeaderRoundTrip:
    @given(eprs(), st.sampled_from(list(WsaVersion)), _uris)
    @settings(max_examples=150, deadline=None)
    def test_request_headers_roundtrip(self, target, version, action):
        headers = MessageHeaders.request(target, action)
        envelope = SoapEnvelope(SoapVersion.V11)
        apply_headers(envelope, headers, version)
        recovered = extract_headers(parse_envelope(serialize_envelope(envelope)))
        assert recovered.to == target.address
        assert recovered.action == action
        assert recovered.message_id == headers.message_id
        assert len(recovered.echoed) == len(headers.echoed)
