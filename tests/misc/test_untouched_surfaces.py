"""Exercise public surfaces the main suites don't reach."""

import pytest

from repro.baselines.corba.cdr import CdrDecoder, CdrEncoder
from repro.baselines.corba.events import StructuredEvent
from repro.baselines.corba.notification_service import NotificationChannel
from repro.baselines.corba.orb import Orb
from repro.baselines.jms.messages import TextMessage
from repro.baselines.jms.provider import JmsProvider
from repro.qos.properties import QosProfile
from repro.transport import SimulatedNetwork, SoapClient, SoapEndpoint, VirtualClock
from repro.wsn.versions import WsnVersion
from repro.xmlkit.names import Namespaces


class TestCorbaLeftovers:
    def test_generic_event_mapping(self):
        event = StructuredEvent.from_generic({"k": 1})
        assert event.type_name == "%ANY"
        assert event.payload == {"k": 1}

    def test_ushort_roundtrip(self):
        encoder = CdrEncoder().put_octet(1).put_ushort(65535)
        decoder = CdrDecoder(encoder.data())
        assert decoder.get_octet() == 1
        assert decoder.get_ushort() == 65535

    def test_structured_proxy_disconnects(self):
        channel = NotificationChannel(Orb())
        pull = channel.new_for_consumers().obtain_structured_pull_supplier()
        pull.disconnect_structured_pull_supplier()
        from repro.baselines.corba.orb import CorbaError

        with pytest.raises(CorbaError):
            pull.try_pull_structured_event()
        push_consumer = channel.new_for_suppliers().obtain_structured_push_consumer()
        push_consumer.disconnect_structured_push_consumer()
        with pytest.raises(CorbaError):
            push_consumer.push_structured_event(StructuredEvent())


class TestJmsLeftovers:
    def test_queue_purge_expired(self):
        provider = JmsProvider(VirtualClock())
        queue = provider.queue("q")
        fleeting = TextMessage(text="gone")
        fleeting.expiration = 10.0
        queue.put(fleeting)
        queue.put(TextMessage(text="stays"))
        provider.clock.advance(20.0)
        assert queue.purge_expired(provider.clock.now()) == 1
        assert queue.depth() == 1


class TestTransportLeftovers:
    def test_is_registered(self):
        network = SimulatedNetwork(VirtualClock())
        assert not network.is_registered("http://svc")
        SoapEndpoint(network, "http://svc")
        assert network.is_registered("http://svc")
        assert network.zone_of("http://svc") == "public"
        assert network.zone_of("http://nope") is None

    def test_send_envelope_roundtrip(self):
        from repro.soap import SoapEnvelope
        from repro.wsa.headers import MessageHeaders, apply_headers
        from repro.wsa.versions import WsaVersion
        from repro.xmlkit.element import text_element
        from repro.xmlkit.names import QName

        network = SimulatedNetwork(VirtualClock())
        endpoint = SoapEndpoint(network, "http://echo")
        endpoint.on_any(lambda envelope, headers: None)
        client = SoapClient(network)
        envelope = SoapEnvelope()
        apply_headers(
            envelope,
            MessageHeaders(to="http://echo", action="urn:x"),
            WsaVersion.V2005_08,
        )
        envelope.add_body(text_element(QName("urn:x", "E"), "payload"))
        assert client.send_envelope("http://echo", envelope) is None  # 202


class TestMiscLeftovers:
    def test_topics_namespace_per_version(self):
        assert WsnVersion.V1_3.topics_namespace == Namespaces.WSTOP_13
        assert WsnVersion.V1_0.topics_namespace == Namespaces.WSTOP_10
        assert WsnVersion.V1_2.topics_namespace == Namespaces.WSTOP_10

    def test_understood_properties(self):
        assert len(QosProfile.understood_properties()) == 13

    def test_consumer_topics_seen(self):
        from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
        from repro.xmlkit import parse_xml

        network = SimulatedNetwork(VirtualClock())
        producer = NotificationProducer(network, "http://ts-prod")
        consumer = NotificationConsumer(network, "http://ts-cons")
        WsnSubscriber(network).subscribe(producer.epr(), consumer.epr(), topic="a/b")
        producer.publish(parse_xml("<e/>"), topic="a/b")
        assert consumer.topics_seen() == ["a/b"]

    def test_converged_live_count(self):
        from repro.convergence import ConvergedConsumer, ConvergedSource, ConvergedSubscriber

        network = SimulatedNetwork(VirtualClock())
        source = ConvergedSource(network, "http://lc-src")
        consumer = ConvergedConsumer(network, "http://lc-cons")
        subscriber = ConvergedSubscriber(network)
        handle = subscriber.subscribe(source.epr(), consumer=consumer.epr())
        assert source.live_count() == 1
        subscriber.unsubscribe(handle)
        assert source.live_count() == 0

    def test_trace_edge_set(self):
        from repro.comparison import trace_wse_architecture

        edges = trace_wse_architecture().edge_set()
        assert ("Subscriber", "Event Source", "Subscribe") in edges
