"""Remaining unit coverage: envelope helpers, table diff edges, HTTP
details, writer prefix allocation."""

import pytest

from repro.comparison.tables import ComparisonTable
from repro.soap.envelope import SoapEnvelope, SoapVersion, build_envelope
from repro.transport.http import build_request, build_response, parse_request, parse_response
from repro.xmlkit import parse_xml, serialize_xml
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName


class TestBuildEnvelopeHelper:
    def test_builds_from_iterables(self):
        envelope = build_envelope(
            SoapVersion.V12,
            headers=[text_element(QName("urn:h", "H"), "x")],
            body=[XElem(QName("urn:b", "B"))],
        )
        assert envelope.version is SoapVersion.V12
        assert envelope.header(QName("urn:h", "H")) is not None
        assert envelope.body_element().name == QName("urn:b", "B")

    def test_empty(self):
        envelope = build_envelope(SoapVersion.V11)
        assert envelope.headers == [] and envelope.body == []


class TestTableDiffEdges:
    def test_column_mismatch_short_circuits(self):
        left = ComparisonTable("t", ["a"])
        right = ComparisonTable("t", ["b"])
        diff = left.diff(right)
        assert not diff.clean
        assert "columns differ" in diff.mismatches[0]

    def test_missing_row_reported(self):
        left = ComparisonTable("t", ["a"]).add_row("only-left", True)
        right = ComparisonTable("t", ["a"]).add_row("only-right", True)
        diff = left.diff(right)
        assert any("missing" in m for m in diff.mismatches)

    def test_summary_lists_mismatches(self):
        left = ComparisonTable("t", ["a"]).add_row("r", True)
        right = ComparisonTable("t", ["a"]).add_row("r", False)
        summary = left.diff(right).summary()
        assert "mismatches" in summary and "'r'" in summary


class TestHttpDetails:
    def test_content_type_header(self):
        wire = build_request("http://h/p", b"<x/>", content_type="application/soap+xml")
        request = parse_request(wire)
        assert request.headers["Content-Type"] == "application/soap+xml"

    def test_host_header(self):
        request = parse_request(build_request("http://example.org:99/svc", b""))
        assert request.headers["Host"] == "example.org:99"

    def test_unknown_status_reason(self):
        response = parse_response(build_response(418, b""))
        assert response.status == 418 and response.reason == "Unknown"

    def test_default_path(self):
        request = parse_request(build_request("http://host", b""))
        assert request.path == "/"

    def test_content_length_matches_body(self):
        wire = build_request("http://h/p", b"12345")
        request = parse_request(wire)
        assert request.headers["Content-Length"] == "5"
        assert request.body == b"12345"


class TestWriterPrefixAllocation:
    def test_many_unknown_namespaces_get_unique_prefixes(self):
        root = XElem(QName("urn:ns-root", "root"))
        for i in range(12):
            root.append(XElem(QName(f"urn:ns-{i}", "child")))
        text = serialize_xml(root)
        again = parse_xml(text)
        assert again == root
        # all 13 namespaces declared exactly once on the root
        assert text.count("xmlns:") == 13

    def test_prefix_reuse_within_document(self):
        inner = XElem(QName("urn:one", "inner"))
        root = XElem(QName("urn:one", "outer"), children=[inner])
        text = serialize_xml(root)
        assert text.count("xmlns:") == 1  # one declaration serves both
