"""Small edge cases across packages: pull-point capacity, interoperable
ORBs, backbone lifecycle errors, fault code coverage, the CLI report."""

import pytest

from repro.baselines.corba.orb import CorbaError, Orb
from repro.messenger import CorbaBackbone, InMemoryBackbone
from repro.soap.fault import FaultCode, SoapFault, SoapVersion
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import NotificationProducer, PullPointClient, PullPointFactory, WsnSubscriber
from repro.xmlkit import parse_xml


class TestPullPointCapacity:
    def test_queue_bounded(self):
        network = SimulatedNetwork(VirtualClock())
        factory = PullPointFactory(network, "http://pp")
        client = PullPointClient(network)
        pull_point = client.create(factory.epr())
        # shrink the capacity of the created pull point
        backing = factory.pull_points[pull_point.address]
        backing.capacity = 3
        producer = NotificationProducer(network, "http://pp-prod")
        WsnSubscriber(network).subscribe(producer.epr(), pull_point, topic="t")
        for i in range(5):
            producer.publish(parse_xml(f"<e>{i}</e>"), topic="t")
        assert len(client.get_messages(pull_point)) == 3  # overflow dropped


class TestInteropOrbs:
    def test_interop_orb_accepts_foreign_vendor_frames(self):
        host = Orb("acme", interop=True)
        ref = host.register(lambda op, args: "hi")
        # a client ORB of another vendor invoking on the host's routing
        client = Orb("globex")
        # reuse host routing with a frame claiming the foreign vendor
        frame = client._frame_request(ref, "ping", [])
        reply = host._route(ref, frame)
        assert host._parse_reply(reply) == "hi"

    def test_non_interop_rejects_foreign_vendor(self):
        host = Orb("acme", interop=False)
        ref = host.register(lambda op, args: "hi")
        client = Orb("globex")
        frame = client._frame_request(ref, "ping", [])
        reply = host._route(ref, frame)
        with pytest.raises(CorbaError) as excinfo:
            host._parse_reply(reply)
        assert "vendor mismatch" in str(excinfo.value)


class TestBackboneLifecycle:
    def test_publish_before_start_raises(self):
        backbone = InMemoryBackbone()
        with pytest.raises(RuntimeError):
            backbone.publish(parse_xml("<e/>"), None)

    def test_corba_backbone_before_start_raises(self):
        backbone = CorbaBackbone()
        with pytest.raises(RuntimeError):
            backbone.publish(parse_xml("<e/>"), None)


class TestFaultCodes:
    @pytest.mark.parametrize("code", list(FaultCode))
    def test_every_code_roundtrips_both_versions(self, code):
        for version in SoapVersion:
            fault = SoapFault(code, "x")
            element = fault.to_element(version)
            recovered = SoapFault.from_element(element, version)
            assert recovered.code is code


class TestCliReport:
    def test_main_returns_zero_on_clean_reproduction(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "all 84 cells match the paper" in out
        assert "all 78 cells match the paper" in out
        assert "WS-EventNotification prototype" in out
