"""The flight recorder: bounded ring, virtual timestamps, dormant-free."""

import tracemalloc

import pytest

from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FLIGHT_KINDS,
    NULL_FLIGHT,
    FlightRecorder,
)
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock


class TestRing:
    def test_records_carry_virtual_time_and_sequence(self):
        clock = VirtualClock()
        flight = FlightRecorder(clock, 8)
        flight.record("publish", topic="a")
        clock.advance(1.5)
        flight.record("delivery", sink="s", outcome="delivered")
        records = flight.records()
        assert [r.seq for r in records] == [0, 1]
        assert [r.at for r in records] == [0.0, 1.5]
        assert records[1].fields == {"sink": "s", "outcome": "delivered"}

    def test_wraparound_keeps_newest_and_counts_dropped(self):
        flight = FlightRecorder(VirtualClock(), 4)
        for n in range(10):
            flight.record("publish", n=n)
        assert len(flight) == 4
        assert flight.dropped == 6
        assert [r.fields["n"] for r in flight.records()] == [6, 7, 8, 9]
        # sequence numbers are global, not ring positions
        assert [r.seq for r in flight.records()] == [6, 7, 8, 9]

    def test_tail_returns_newest_oldest_first(self):
        flight = FlightRecorder(VirtualClock(), 8)
        for n in range(5):
            flight.record("route", n=n)
        assert [r.fields["n"] for r in flight.tail(2)] == [3, 4]

    def test_unknown_kind_rejected(self):
        flight = FlightRecorder(VirtualClock(), 4)
        with pytest.raises(ValueError):
            flight.record("not-a-kind")
        assert "publish" in FLIGHT_KINDS

    def test_reset_empties_the_ring(self):
        flight = FlightRecorder(VirtualClock(), 4)
        flight.record("publish")
        flight.reset()
        assert len(flight) == 0
        assert flight.records() == []
        assert flight.snapshot()["recorded"] == 0


class TestDormant:
    def test_null_flight_is_inert(self):
        NULL_FLIGHT.record("publish", anything="goes")
        assert NULL_FLIGHT.tail() == []
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.snapshot()["enabled"] is False

    def test_instrumentation_starts_dormant_and_arms_idempotently(self):
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        assert instrumentation.flight is NULL_FLIGHT
        armed = instrumentation.enable_flight()
        assert armed.capacity == DEFAULT_CAPACITY
        assert instrumentation.enable_flight() is armed  # same capacity: kept

    def test_dormant_hot_path_allocates_nothing_for_flight(self):
        """The dormant pattern (`flight = instr.flight; if flight.enabled:`)
        must never build a record: drive real instrumented traffic with the
        recorder dormant and assert zero allocations from the flight module."""
        network = SimulatedNetwork(VirtualClock())
        Instrumentation.attach(network)
        network.register("http://svc", lambda wire: b"ok")
        network.send_request("http://svc", b"warmup")

        flight_file = __import__(
            "repro.obs.flight", fromlist=["__file__"]
        ).__file__
        tracemalloc.start(5)
        try:
            network.send_request("http://svc", b"ping")
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        flight_allocs = [
            stat
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename == flight_file
        ]
        assert flight_allocs == []


class TestReportIntegration:
    def test_armed_flight_appears_in_snapshot_and_report(self):
        from repro.obs.exporters import build_report

        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        instrumentation.enable_flight(capacity=16)
        network.register("http://svc", lambda wire: b"ok")
        network.send_request("http://svc", b"ping")
        instrumentation.flight.record("anomaly", probe="test")
        report = build_report(instrumentation)
        assert report["flight"]["capacity"] == 16
        assert report["flight"]["by_kind"]["anomaly"] == 1

    def test_dormant_flight_absent_from_snapshot(self):
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        assert "flight" not in instrumentation.snapshot()
