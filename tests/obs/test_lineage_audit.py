"""The lineage ledger and the conservation auditor.

Unit level: obligation accounting (opened/closed/pending/parked) derived
from event streams, and each auditor invariant firing on a hand-built
violation.  Integration level: a lossy retried delivery and a firewalled
pull fallback must both leave balanced books and a connected trace.
"""

import pytest

from repro.obs.audit import audit
from repro.obs.instrument import Instrumentation
from repro.obs.lineage import KNOWN_STATES, LineageLedger
from repro.transport import MessageLost, SimulatedNetwork, VirtualClock
from repro.wsa.headers import reset_message_counter
from repro.xmlkit import parse_xml


def make_ledger():
    return LineageLedger(VirtualClock())


class TestLedgerAccounting:
    def test_push_delivery_balances(self):
        ledger = make_ledger()
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://a")
        ledger.record("lin-1", "attempted", n=1)
        ledger.record("lin-1", "delivered", sink="http://a")
        account = ledger.account_of("lin-1")
        assert (account.opened, account.delivered, account.pending) == (1, 1, 0)
        assert account.attempts == 1

    def test_parked_obligation_stays_pending_until_pulled(self):
        ledger = make_ledger()
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://fw")
        ledger.record("lin-1", "attempted", n=1)
        ledger.record("lin-1", "pending_pull", box="http://box")
        account = ledger.account_of("lin-1")
        assert account.pending == 1
        assert account.parked_outstanding == 1
        ledger.record("lin-1", "delivered", sink="http://fw", via="pull")
        account = ledger.account_of("lin-1")
        assert account.pending == 0
        assert account.parked_outstanding == 0

    def test_dead_letter_and_replay_reopen_the_obligation(self):
        ledger = make_ledger()
        ledger.record("lin-1", "published")
        ledger.record("lin-1", "enqueued", sink="http://a")
        ledger.record("lin-1", "dead_lettered", reason="max_attempts")
        assert ledger.account_of("lin-1").pending == 0
        ledger.record("lin-1", "replayed", sink="http://a")
        assert ledger.account_of("lin-1").pending == 1
        ledger.record("lin-1", "delivered", sink="http://a")
        account = ledger.account_of("lin-1")
        assert (account.opened, account.closed, account.pending) == (2, 2, 0)

    def test_unknown_state_is_rejected(self):
        with pytest.raises(ValueError, match="unknown lineage state"):
            make_ledger().record("lin-1", "teleported")

    def test_known_states_cover_the_documented_lifecycle(self):
        assert {
            "published", "mediated", "queued", "enqueued", "replayed",
            "attempted", "pending_pull", "delivered", "dead_lettered",
            "failed", "shed",
        } == set(KNOWN_STATES)


class TestAuditorInvariants:
    def setup_method(self):
        network = SimulatedNetwork(VirtualClock())
        self.instrumentation = Instrumentation.attach(network)

    def record_minimal_lineage(self, lineage_id="lin-00000001"):
        with self.instrumentation.span("publish", mint=True):
            pass
        ledger = self.instrumentation.ledger
        ledger.record(lineage_id, "published")
        return ledger

    def test_balanced_books_pass(self):
        ledger = self.record_minimal_lineage()
        ledger.record("lin-00000001", "enqueued", sink="http://a")
        ledger.record("lin-00000001", "delivered", sink="http://a")
        result = audit(self.instrumentation)
        assert result.passed, [f.render() for f in result.findings]
        assert (result.opened, result.delivered) == (1, 1)

    def test_pending_without_parking_fails_conservation(self):
        ledger = self.record_minimal_lineage()
        ledger.record("lin-00000001", "enqueued", sink="http://a")
        result = audit(self.instrumentation)
        assert not result.passed
        assert any(f.invariant == "conservation" for f in result.findings)

    def test_over_closing_fails_conservation(self):
        ledger = self.record_minimal_lineage()
        ledger.record("lin-00000001", "delivered", sink="http://a")
        result = audit(self.instrumentation)
        assert any(
            f.invariant == "conservation" and "closed 1" in f.message
            for f in result.findings
        )

    def test_missing_published_event_is_flagged(self):
        with self.instrumentation.span("publish", mint=True):
            pass
        self.instrumentation.ledger.record(
            "lin-00000001", "enqueued", sink="http://a"
        )
        self.instrumentation.ledger.record(
            "lin-00000001", "delivered", sink="http://a"
        )
        result = audit(self.instrumentation)
        assert any(
            f.invariant == "first-event-published" for f in result.findings
        )

    def test_ledger_entry_without_spans_is_dangling(self):
        self.instrumentation.ledger.record("lin-unseen", "published")
        result = audit(self.instrumentation)
        assert any(
            f.invariant == "no-dangling-lineage" and f.lineage_id == "lin-unseen"
            for f in result.findings
        )

    def test_span_without_ledger_entry_is_orphaned(self):
        with self.instrumentation.span("publish", mint=True):
            pass
        result = audit(self.instrumentation)
        assert any(
            f.invariant == "no-orphan-spans" for f in result.findings
        )


@pytest.fixture
def broker_stack():
    from repro.delivery import DeliveryPolicy
    from repro.messenger import WsMessenger

    reset_message_counter()
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    broker = WsMessenger(
        network,
        "http://audit-broker",
        delivery=DeliveryPolicy(max_attempts=3, breaker_failure_threshold=3),
    )
    return network, instrumentation, broker


def publish(broker, topic="audit/topic"):
    broker.publish(
        parse_xml('<a:E xmlns:a="urn:audit"><a:n>1</a:n></a:E>'), topic=topic
    )


class TestEndToEnd:
    def test_retried_delivery_keeps_one_connected_lineage(self, broker_stack):
        """Two lost pushes then success: every attempt span hangs off the
        publish and the ledger closes exactly the obligations it opened."""
        from repro.wsn import NotificationConsumer, WsnSubscriber

        network, instrumentation, broker = broker_stack
        consumer = NotificationConsumer(network, "http://audit-flaky")
        WsnSubscriber(network).subscribe(
            broker.epr(), consumer.epr(), topic="audit/topic"
        )
        drops = {"remaining": 2}

        def drop(address, request):
            if address == consumer.address and drops["remaining"] > 0:
                drops["remaining"] -= 1
                raise MessageLost(address)

        network.observers.append(drop)
        publish(broker)
        broker.run_deliveries_until_idle()
        assert len(consumer.received) == 1

        result = audit(instrumentation)
        assert result.passed, [f.render() for f in result.findings]
        tracer = instrumentation.tracer
        (lineage_id,) = instrumentation.ledger.lineages()
        account = instrumentation.ledger.account_of(lineage_id)
        assert account.attempts == 3
        assert (account.opened, account.delivered) == (1, 1)
        attempts = [
            s
            for s in tracer.spans_of_lineage(lineage_id)
            if s.name == "delivery.attempt"
        ]
        assert [s.attrs["attempt"] for s in attempts] == ["1", "2", "3"]
        assert all(tracer.depth_of(span) >= 1 for span in attempts), (
            "scheduler-fired retries must re-join the publish trace"
        )

    def test_firewalled_delivery_is_pending_until_pulled(self, broker_stack):
        """Park → audit shows the imbalance is parked (passes), pull drain
        closes it as delivered via=pull."""
        from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber

        network, instrumentation, broker = broker_stack
        network.add_zone("dmz", blocks_inbound=True)
        hidden = NotificationConsumer(network, "http://audit-hidden", zone="dmz")
        WsnSubscriber(network, zone="dmz").subscribe(
            broker.epr(), hidden.epr(), topic="audit/topic"
        )
        publish(broker)
        broker.run_deliveries_until_idle()

        (lineage_id,) = instrumentation.ledger.lineages()
        parked = audit(instrumentation)
        assert parked.passed, [f.render() for f in parked.findings]
        assert parked.pending == 1
        assert parked.parked_outstanding == 1

        box = broker.message_boxes.get(hidden.address)
        PullPointClient(network, zone="dmz").get_messages(box.epr())
        drained = audit(instrumentation)
        assert drained.passed
        assert (drained.pending, drained.parked_outstanding) == (0, 0)
        events = instrumentation.ledger.events_of(lineage_id)
        assert events[-1].state == "delivered"
        assert events[-1].detail["via"] == "pull"
