"""Unit tests for the lineage SOAP header: encode/decode, inject/extract.

The wire format must round-trip exactly, step the hop count once per wire
crossing, and degrade to ``None`` (never raise) on absent or malformed
headers — a peer running older software must not be able to crash a
dispatch by sending garbage lineage.
"""

import pytest

from repro.obs.propagation import (
    FORMAT_VERSION,
    LINEAGE_HEADER,
    LineageContext,
    extract,
    inject,
)
from repro.soap import parse_envelope, serialize_envelope
from repro.soap.envelope import SoapEnvelope, SoapVersion, build_envelope
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element


def make_envelope() -> SoapEnvelope:
    return build_envelope(
        SoapVersion.V11, body=[parse_xml('<p:E xmlns:p="urn:prop-test"/>')]
    )


class TestEncoding:
    def test_encode_decode_round_trip(self):
        context = LineageContext("lin-00000007", 41, 3)
        assert LineageContext.decode(context.encode()) == context

    def test_encoded_form_is_versioned_and_hex(self):
        assert LineageContext("lin-00000001", 255, 2).encode() == (
            f"{FORMAT_VERSION}-lin-00000001-000000ff-02"
        )

    def test_step_advances_only_the_hop(self):
        stepped = LineageContext("lin-00000001", 9, 1).step()
        assert (stepped.lineage_id, stepped.parent_span, stepped.hop) == (
            "lin-00000001", 9, 2,
        )

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "garbage",
            "99-lin-00000001-00000001-01",  # unknown version
            "01-lin-00000001-xyz-01",  # non-hex parent
            "01-lin-00000001-00000001-zz",  # non-hex hop
            "01-lin-00000001-00000001",  # missing field
            "01--00000001-01",  # empty lineage id
        ],
    )
    def test_malformed_text_decodes_to_none(self, text):
        assert LineageContext.decode(text) is None


class TestWire:
    def test_inject_then_extract_steps_the_hop(self):
        envelope = make_envelope()
        inject(envelope, LineageContext("lin-00000003", 12, 0))
        carried = extract(envelope)
        assert carried == LineageContext("lin-00000003", 12, 1)

    def test_inject_survives_serialization(self):
        envelope = make_envelope()
        inject(envelope, LineageContext("lin-00000004", 5, 2))
        reparsed = parse_envelope(serialize_envelope(envelope))
        assert extract(reparsed) == LineageContext("lin-00000004", 5, 3)

    def test_reinjection_replaces_the_stale_header(self):
        envelope = make_envelope()
        inject(envelope, LineageContext("lin-00000001", 1, 0))
        inject(envelope, LineageContext("lin-00000002", 2, 4))
        carried = extract(envelope)
        assert carried == LineageContext("lin-00000002", 2, 5)
        assert len(envelope.headers_named(LINEAGE_HEADER)) == 1

    def test_absent_header_extracts_to_none(self):
        assert extract(make_envelope()) is None

    def test_malformed_header_extracts_to_none(self):
        envelope = make_envelope()
        envelope.add_header(text_element(LINEAGE_HEADER, "not-a-context"))
        assert extract(envelope) is None
