"""Unit tests for the metrics layer: keys, instruments, registry lifecycle."""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)


class TestMetricKey:
    def test_bare_name_without_labels(self):
        assert metric_key("broker.requests", {}) == "broker.requests"

    def test_labels_render_sorted(self):
        key = metric_key("broker.requests", {"version": "v1_3", "family": "wsn"})
        assert key == "broker.requests{family=wsn,version=v1_3}"


class TestInstruments:
    def test_counter_inc_and_reset(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge_set_add_reset(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0
        gauge.reset()
        assert gauge.value == 0.0

    def test_histogram_buckets_and_stats(self):
        hist = Histogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.minimum == 0.0005
        assert hist.maximum == 5.0
        assert hist.mean == sum((0.0005, 0.005, 0.05, 5.0)) / 4
        snap = hist.snapshot()
        assert snap["buckets"] == {
            "le=0.001": 1,
            "le=0.01": 1,
            "le=0.1": 1,
            "le=+Inf": 1,
        }

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", family="wse")
        b = registry.counter("hits", family="wse")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", family="wse").inc()
        registry.counter("hits", family="wsn").inc(2)
        assert registry.counter_values("hits") == {
            "hits{family=wse}": 1,
            "hits{family=wsn}": 2,
        }

    def test_counter_values_does_not_match_prefix_names(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits.sub").inc()
        assert registry.counter_values("hits") == {"hits": 1}

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("depth").set(7)
        registry.histogram("latency", buckets=DEFAULT_BUCKETS).observe(0.002)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["latency"]["count"] == 1
        assert len(registry) == 4

    def test_reset_keeps_handed_out_references_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("hits").value == 1
