"""End-to-end: an instrumented mediated publish produces a connected trace.

The acceptance scenario: an external WS-Eventing source bridged into the
WS-Messenger broker, delivering to a WS-Notification consumer.  One
publish must come out as a single connected span tree nesting at least
``deliver -> detect_spec/dispatch -> mediate -> ... -> notify``, with the
per-spec-family counters filled in.
"""

import pytest

from repro.messenger import WsMessenger, mediation
from repro.obs import Instrumentation, NULL_INSTRUMENTATION
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSource
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml

TOPIC = "flow/demo"


@pytest.fixture
def stack():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    source = EventSource(
        network, "http://flow-source", topic_header=mediation.WSE_TOPIC_HEADER
    )
    broker = WsMessenger(network, "http://flow-broker")
    broker.bridge_from_wse_source(source.epr())
    consumer = NotificationConsumer(network, "http://flow-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic=TOPIC)
    instrumentation.reset()  # setup traffic is not part of the scenario
    return network, instrumentation, source, consumer


def publish_once(source):
    event = parse_xml('<f:Hit xmlns:f="urn:flow"><f:n>1</f:n></f:Hit>')
    source.publish(event, topic=TOPIC)


class TestSpanTree:
    def test_single_publish_yields_connected_nested_tree(self, stack):
        network, instrumentation, source, consumer = stack
        publish_once(source)
        assert consumer.received, "the mediated notification must arrive"
        tracer = instrumentation.tracer
        assert len(tracer.roots()) == 1, "one publish => one connected tree"
        max_depth = max(tracer.depth_of(span) for span in tracer.spans)
        assert max_depth >= 3
        names = {span.name for span in tracer.spans}
        assert {
            "deliver",
            "dispatch",
            "mediate",
            "broker.publish",
            "broker.fan_out",
            "wsn.publish",
            "notify",
        } <= names
        # every span closed, on the virtual clock, in id order
        assert all(span.end is not None for span in tracer.spans)
        assert all(span.status == "ok" for span in tracer.spans)

    def test_mediate_nests_under_the_brokers_dispatch(self, stack):
        network, instrumentation, source, consumer = stack
        publish_once(source)
        tracer = instrumentation.tracer
        by_id = {span.span_id: span for span in tracer.spans}
        mediate = next(s for s in tracer.spans if s.name == "mediate")
        ancestors = []
        cursor = mediate
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            ancestors.append(cursor.name)
        assert "dispatch" in ancestors
        assert "deliver" in ancestors


class TestCountersAndWire:
    def test_per_spec_family_counters(self, stack):
        network, instrumentation, source, consumer = stack
        publish_once(source)
        counters = instrumentation.metrics.snapshot()["counters"]
        # the broker front door never saw this publish (it entered through
        # the bridge ingest endpoint), but the fan-out and delivery did:
        assert counters["notifications.matched{family=wsn,version=v1_3}"] == 1
        assert counters["notifications.delivered{family=wsn,version=v1_3}"] == 1
        assert counters["mediation.messages{direction=wse-to-neutral}"] == 1
        assert counters["net.requests{outcome=ok}"] == 2  # source->ingest, broker->consumer

    def test_front_door_traffic_counts_by_family(self, stack):
        network, instrumentation, source, consumer = stack
        # a second subscription arrives *after* the reset, so this WSN
        # Subscribe is front-door traffic the detection layer must count
        from repro.wsa import EndpointReference

        other = NotificationConsumer(network, "http://flow-consumer-2")
        WsnSubscriber(network).subscribe(
            EndpointReference("http://flow-broker"), other.epr(), topic=TOPIC
        )
        counters = instrumentation.metrics.counter_values("broker.requests")
        assert counters == {"broker.requests{family=wsn,version=v1_3}": 1}
        detect = [s for s in instrumentation.tracer.spans if s.name == "detect_spec"]
        assert len(detect) == 1
        assert detect[0].attrs["family"] == "wsn"
        assert detect[0].attrs["operation"] == "Subscribe"

    def test_wire_frames_cover_the_publish_hops(self, stack):
        network, instrumentation, source, consumer = stack
        publish_once(source)
        frames = instrumentation.capture.frames
        addresses = [frame.address for frame in frames]
        assert any("ingest" in address for address in addresses)
        assert "http://flow-consumer" in addresses
        assert all(frame.ok for frame in frames)
        assert instrumentation.capture.total_request_bytes() > 0

    def test_uninstall_restores_the_null_object(self, stack):
        network, instrumentation, source, consumer = stack
        instrumentation.uninstall(network)
        assert network.instrumentation is NULL_INSTRUMENTATION
        assert network.wire_observers == []
        publish_once(source)
        assert consumer.received  # behaviour unchanged
        assert instrumentation.tracer.spans == []  # nothing new recorded
