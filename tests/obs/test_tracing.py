"""Unit tests for the tracer: nesting, parentage, error capture, reset."""

import pytest

from repro.obs.tracing import Tracer
from repro.transport import VirtualClock


def make_tracer():
    return Tracer(VirtualClock())


class TestNesting:
    def test_sibling_spans_share_no_parent(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.parent_id for s in tracer.spans] == [None, None]
        assert len(tracer.roots()) == 2

    def test_nested_spans_link_to_enclosing_span(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner") as inner:
                    assert tracer.current() is inner
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert tracer.depth_of(by_name["inner"]) == 2
        assert tracer.children_of(outer) == [by_name["middle"]]
        assert tracer.current() is None

    def test_timestamps_come_from_the_virtual_clock(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("op") as span:
            clock.advance(0.25)
        assert span.start == 0.0
        assert span.end == 0.25
        assert span.duration == 0.25


class TestErrorsAndAttrs:
    def test_exception_marks_span_errored_and_propagates(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert span.end is not None  # closed despite the exception
        assert tracer.current() is None  # stack unwound

    def test_attrs_at_open_and_mid_span(self):
        tracer = make_tracer()
        with tracer.span("detect", family="wse") as span:
            span.set("version", "v2004_08")
        record = tracer.spans[0].to_dict()
        assert record["attrs"] == {"family": "wse", "version": "v2004_08"}
        assert record["status"] == "ok"
        assert "error" not in record


class TestLifecycle:
    def test_reset_drops_finished_but_keeps_open_spans(self):
        tracer = make_tracer()
        with tracer.span("done"):
            pass
        with tracer.span("open") as still_open:
            tracer.reset()
            assert tracer.spans == [still_open]
            with tracer.span("child") as child:
                assert child.parent_id == still_open.span_id

    def test_render_tree_indents_children_and_flags_errors(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with pytest.raises(ValueError):
                with tracer.span("leaf"):
                    raise ValueError("nope")
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root ")
        assert lines[1].startswith("  leaf ")
        assert lines[1].endswith("!error")


class TestLineage:
    def test_mint_assigns_fresh_ids_at_hop_zero(self):
        tracer = make_tracer()
        with tracer.span("publish-1", mint=True) as first:
            pass
        with tracer.span("publish-2", mint=True) as second:
            pass
        assert first.lineage == "lin-00000001"
        assert second.lineage == "lin-00000002"
        assert (first.hop, second.hop) == (0, 0)

    def test_children_inherit_lineage_without_minting(self):
        tracer = make_tracer()
        with tracer.span("publish", mint=True) as root:
            with tracer.span("fan_out", mint=True) as inner:
                pass
        assert inner.lineage == root.lineage  # mint only fires at the root
        assert inner.hop == root.hop

    def test_remote_context_reparents_a_scheduler_fired_retry(self):
        """A retry runs on an empty stack; ``remote=`` must re-link it."""
        from repro.obs.propagation import LineageContext

        tracer = make_tracer()
        with tracer.span("publish", mint=True) as publish:
            carried = tracer.continuation()
        assert tracer.current() is None  # the enqueuing stack unwound
        with tracer.span("retry", remote=carried) as retry:
            pass
        assert retry.parent_id == publish.span_id
        assert retry.lineage == publish.lineage
        assert isinstance(carried, LineageContext)

    def test_nested_spans_across_a_retry_sequence_stay_connected(self):
        """attempt 1 (live stack) and attempts 2..n (scheduler) all land in
        one tree, and a wire dispatch under a retry advances the hop."""
        tracer = make_tracer()
        with tracer.span("publish", mint=True) as publish:
            carried = tracer.continuation()
            with tracer.span("attempt", n="1"):
                pass
        for n in (2, 3):
            with tracer.span("attempt", remote=carried, n=str(n)):
                with tracer.span("dispatch", remote=carried.step()) as dispatch:
                    assert dispatch.hop == publish.hop + 1
        lineage_spans = tracer.spans_of_lineage(publish.lineage)
        assert len(lineage_spans) == 6  # publish + 3 attempts + 2 dispatches
        assert all(
            tracer.depth_of(span) >= 1
            for span in lineage_spans
            if span is not publish
        ), "every attempt must hang off the publish, never a fresh root"

    def test_wire_hop_is_authoritative_on_a_synchronous_send(self):
        """The sender's frames are still on the stack during a synchronous
        dispatch; the hop must still advance (stack parentage is kept)."""
        tracer = make_tracer()
        with tracer.span("notify", mint=True) as notify:
            carried = tracer.continuation().step()
            with tracer.span("dispatch", remote=carried) as dispatch:
                assert dispatch.hop == notify.hop + 1
        assert dispatch.parent_id == notify.span_id  # same-lineage: keep stack

    def test_absent_lineage_degrades_to_a_fresh_untraced_root(self):
        """``remote=None`` (absent or malformed header) must not crash and
        must behave exactly as before propagation existed."""
        tracer = make_tracer()
        with tracer.span("dispatch", remote=None) as span:
            pass
        assert span.lineage is None
        assert span.parent_id is None
        assert span.hop == 0

    def test_malformed_wire_header_yields_an_untraced_dispatch(self):
        """End-to-end: garbage lineage text on the wire never faults the
        receiving endpoint; the dispatch simply starts untraced."""
        from repro.obs.instrument import Instrumentation
        from repro.obs.propagation import LINEAGE_HEADER
        from repro.transport import SimulatedNetwork
        from repro.transport.endpoint import SoapClient, SoapEndpoint
        from repro.wsa.epr import EndpointReference
        from repro.xmlkit import parse_xml
        from repro.xmlkit.element import text_element

        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        endpoint = SoapEndpoint(network, "http://trace-sink")
        endpoint.on_any(lambda envelope, headers: None)

        def corrupt(envelope):
            envelope.remove_headers(LINEAGE_HEADER)
            envelope.add_header(text_element(LINEAGE_HEADER, "99-bogus"))
            return envelope

        client = SoapClient(network, envelope_filter=corrupt)
        client.call(
            EndpointReference("http://trace-sink"),
            "urn:trace-test/Poke",
            [parse_xml('<t:Poke xmlns:t="urn:trace-test"/>')],
        )
        dispatches = [
            s for s in instrumentation.tracer.spans if s.name == "dispatch"
        ]
        assert len(dispatches) == 1
        assert dispatches[0].lineage is None
        assert dispatches[0].status == "ok"

    def test_failed_span_inside_lineage_keeps_error_and_lineage(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("publish", mint=True):
                with tracer.span("attempt"):
                    raise RuntimeError("sink down")
        attempt = next(s for s in tracer.spans if s.name == "attempt")
        assert attempt.status == "error"
        assert attempt.lineage is not None
        record = attempt.to_dict()
        assert record["lineage"] == attempt.lineage
        assert record["error"] == "RuntimeError: sink down"
