"""Unit tests for the tracer: nesting, parentage, error capture, reset."""

import pytest

from repro.obs.tracing import Tracer
from repro.transport import VirtualClock


def make_tracer():
    return Tracer(VirtualClock())


class TestNesting:
    def test_sibling_spans_share_no_parent(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.parent_id for s in tracer.spans] == [None, None]
        assert len(tracer.roots()) == 2

    def test_nested_spans_link_to_enclosing_span(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner") as inner:
                    assert tracer.current() is inner
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert tracer.depth_of(by_name["inner"]) == 2
        assert tracer.children_of(outer) == [by_name["middle"]]
        assert tracer.current() is None

    def test_timestamps_come_from_the_virtual_clock(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("op") as span:
            clock.advance(0.25)
        assert span.start == 0.0
        assert span.end == 0.25
        assert span.duration == 0.25


class TestErrorsAndAttrs:
    def test_exception_marks_span_errored_and_propagates(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert span.end is not None  # closed despite the exception
        assert tracer.current() is None  # stack unwound

    def test_attrs_at_open_and_mid_span(self):
        tracer = make_tracer()
        with tracer.span("detect", family="wse") as span:
            span.set("version", "v2004_08")
        record = tracer.spans[0].to_dict()
        assert record["attrs"] == {"family": "wse", "version": "v2004_08"}
        assert record["status"] == "ok"
        assert "error" not in record


class TestLifecycle:
    def test_reset_drops_finished_but_keeps_open_spans(self):
        tracer = make_tracer()
        with tracer.span("done"):
            pass
        with tracer.span("open") as still_open:
            tracer.reset()
            assert tracer.spans == [still_open]
            with tracer.span("child") as child:
                assert child.parent_id == still_open.span_id

    def test_render_tree_indents_children_and_flags_errors(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with pytest.raises(ValueError):
                with tracer.span("leaf"):
                    raise ValueError("nope")
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root ")
        assert lines[1].startswith("  leaf ")
        assert lines[1].endswith("!error")
