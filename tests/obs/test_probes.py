"""Gauge probes and phase timers: virtual-clock sampling, no wall leakage."""

from repro.obs.instrument import Instrumentation
from repro.obs.probes import PHASES, GaugeProbes, PhaseTimers
from repro.transport import SimulatedNetwork, VirtualClock
from repro.transport.clock import ClockScheduler


def attached():
    network = SimulatedNetwork(VirtualClock())
    return network, Instrumentation.attach(network)


class TestSampling:
    def test_sample_sets_gauges_and_history_on_virtual_time(self):
        network, instrumentation = attached()
        probes = GaugeProbes(instrumentation)
        depth = {"value": 3}
        probes.add_source("delivery.pending", lambda: depth["value"], site="t")
        network.clock.advance(2.0)
        swept = probes.sample()
        assert swept == {"delivery.pending{site=t}": 3.0}
        depth["value"] = 5
        network.clock.advance(2.0)
        probes.sample()
        # history carries (virtual time, value) pairs — no wall clock
        assert probes.series("delivery.pending{site=t}") == [
            (2.0, 3.0),
            (4.0, 5.0),
        ]
        assert instrumentation.metrics.gauge_values("delivery.pending") == {
            "delivery.pending{site=t}": 5.0
        }
        assert instrumentation.metrics.gauge_values("obs.last_sample_at") == {
            "obs.last_sample_at": 4.0
        }

    def test_scheduled_sweeps_land_on_exact_interval_multiples(self):
        network, instrumentation = attached()
        probes = GaugeProbes(instrumentation)
        probes.add_source("delivery.pending", lambda: 0.0)
        scheduler = ClockScheduler(network.clock)
        probes.schedule(scheduler, interval=10.0, count=3)
        scheduler.run_until_idle()
        assert probes.samples == 3
        assert [at for at, _ in probes.series("delivery.pending")] == [
            10.0,
            20.0,
            30.0,
        ]
        assert network.clock.now() == 30.0

    def test_history_is_bounded(self):
        _, instrumentation = attached()
        probes = GaugeProbes(instrumentation, history=4)
        probes.add_source("delivery.pending", lambda: 1.0)
        for _ in range(10):
            probes.sample()
        assert len(probes.series("delivery.pending")) == 4

    def test_armed_flight_records_each_sweep(self):
        _, instrumentation = attached()
        instrumentation.enable_flight(capacity=8)
        probes = GaugeProbes(instrumentation)
        probes.add_source("delivery.pending", lambda: 0.0)
        probes.sample()
        (record,) = instrumentation.flight.tail(1)
        assert record.kind == "sample"
        assert record.fields == {"sweep": 1, "series": 1}


class TestGrowthAnomalies:
    def test_strictly_monotonic_series_flagged(self):
        _, instrumentation = attached()
        probes = GaugeProbes(instrumentation)
        backlog = {"value": 0}
        probes.add_source("broker.sub_queue_depth", lambda: backlog["value"])
        for value in (1, 2, 3, 4):
            backlog["value"] = value
            probes.sample()
        (anomaly,) = probes.growth_anomalies()
        assert anomaly == {
            "gauge": "broker.sub_queue_depth",
            "first": 1.0,
            "last": 4.0,
            "samples": 4,
        }

    def test_series_that_drains_once_is_not_flagged(self):
        _, instrumentation = attached()
        probes = GaugeProbes(instrumentation)
        backlog = {"value": 0}
        probes.add_source("broker.sub_queue_depth", lambda: backlog["value"])
        for value in (1, 2, 0, 4):  # drained at the third sample
            backlog["value"] = value
            probes.sample()
        assert probes.growth_anomalies() == []

    def test_short_series_not_flagged(self):
        _, instrumentation = attached()
        probes = GaugeProbes(instrumentation)
        backlog = {"value": 0}
        probes.add_source("broker.sub_queue_depth", lambda: backlog["value"])
        for value in (1, 2, 3):
            backlog["value"] = value
            probes.sample()
        assert probes.growth_anomalies(min_samples=4) == []


class TestPhaseTimers:
    def test_counts_are_deterministic_and_wall_time_is_opt_in(self):
        timers = PhaseTimers()
        t0 = timers.begin()
        timers.end("publish", t0)
        snapshot = timers.snapshot()
        assert snapshot == {
            "counts": {"publish": 1, "route": 0, "serialize": 0, "deliver": 0}
        }
        with_wall = timers.snapshot(include_wall=True)
        assert set(with_wall) == {"counts", "mean_us"}
        assert with_wall["mean_us"]["publish"] >= 0.0

    def test_instrumented_traffic_counts_phases(self):
        network, instrumentation = attached()
        instrumentation.enable_phase_timers()
        network.register("http://svc", lambda wire: b"ok")
        network.send_request("http://svc", b"ping")
        counts = instrumentation.phases.snapshot()["counts"]
        assert counts["deliver"] == 1
        assert list(counts) == list(PHASES)

    def test_snapshot_includes_phase_counts_when_armed(self):
        network, instrumentation = attached()
        assert "phases" not in instrumentation.snapshot()
        instrumentation.enable_phase_timers()
        assert instrumentation.snapshot()["phases"]["counts"]["publish"] == 0

    def test_reset_zeroes_counts(self):
        _, instrumentation = attached()
        timers = instrumentation.enable_phase_timers()
        timers.end("route", timers.begin())
        instrumentation.reset()
        assert timers.snapshot()["counts"]["route"] == 0
