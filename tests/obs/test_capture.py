"""Wire capture: every outcome recorded via the network's outcome hook."""

import pytest

from repro.obs.capture import WireCapture
from repro.transport import (
    AddressUnreachable,
    FirewallBlocked,
    MessageLost,
    SimulatedNetwork,
    VirtualClock,
)


def wired_network(**kwargs):
    network = SimulatedNetwork(VirtualClock(), **kwargs)
    capture = WireCapture()
    network.wire_observers.append(capture.record)
    return network, capture


class TestOutcomes:
    def test_ok_frame_records_sizes_zones_latency(self):
        network, capture = wired_network(latency=0.002)
        network.register("http://svc", lambda wire: b"PONG!")
        network.send_request("http://svc", b"PING")
        (frame,) = capture.frames
        assert frame.ok
        assert frame.address == "http://svc"
        assert frame.from_zone == "public"
        assert frame.to_zone == "public"
        assert frame.request_size == 4
        assert frame.response_size == 5
        assert frame.latency == pytest.approx(0.004)  # round trip

    def test_unreachable_frame_has_no_target_zone(self):
        network, capture = wired_network()
        with pytest.raises(AddressUnreachable):
            network.send_request("http://nowhere", b"x")
        (frame,) = capture.frames
        assert frame.outcome == "unreachable"
        assert frame.to_zone is None
        assert frame.response_size is None
        assert not frame.ok

    def test_firewall_and_loss_outcomes(self):
        network, capture = wired_network(loss_rate=1.0)
        network.add_zone("intranet", blocks_inbound=True)
        network.register("http://inside", lambda wire: b"", zone="intranet")
        network.register("http://open", lambda wire: b"")
        with pytest.raises(FirewallBlocked):
            network.send_request("http://inside", b"x")
        with pytest.raises(MessageLost):
            network.send_request("http://open", b"x")
        assert capture.by_outcome() == {"firewall_blocked": 1, "lost": 1}

    def test_frames_do_not_retain_payload_bytes(self):
        network, capture = wired_network()
        network.register("http://svc", lambda wire: b"ok")
        network.send_request("http://svc", b"secret")
        frame = capture.frames[0]
        assert not hasattr(frame, "request")
        assert frame.request_size == 6


class TestStoreLifecycle:
    def test_max_frames_drops_oldest_but_keeps_indices(self):
        network, capture = wired_network()
        capture.max_frames = 2
        network.register("http://svc", lambda wire: b"")
        for _ in range(5):
            network.send_request("http://svc", b"x")
        assert [f.index for f in capture.frames] == [3, 4]
        assert capture.snapshot()["dropped"] == 3

    def test_totals_and_reset(self):
        network, capture = wired_network()
        network.register("http://svc", lambda wire: b"abc")
        network.send_request("http://svc", b"12345")
        network.send_request("http://svc", b"12")
        assert capture.total_request_bytes() == 7
        assert capture.total_response_bytes() == 6
        assert len(capture) == 2
        capture.reset()
        assert len(capture) == 0
        assert capture.snapshot()["totals"]["count"] == 0
