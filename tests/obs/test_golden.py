"""Golden-snapshot tests: the CLI output is part of the contract.

``obs-report`` and ``obs-audit`` run entirely on the virtual clock, so
their output is byte-identical across runs and machines.  CI diffs the
live output against these committed snapshots; regenerate them with::

    PYTHONPATH=src python -m repro obs-report > tests/obs/golden/obs_report.txt
    PYTHONPATH=src python -m repro obs-audit  > tests/obs/golden/obs_audit.txt
    PYTHONPATH=src python -m repro obs-health > tests/obs/golden/obs_health.txt
    PYTHONPATH=src python -m repro obs-top    > tests/obs/golden/obs_top.txt

after any intentional change to the demo scenarios, the examples, or the
report/audit/health renderers.
"""

import contextlib
import io
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def run_cli(argv: list[str]) -> tuple[int, str]:
    from repro.__main__ import main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_obs_report_matches_golden_snapshot():
    code, output = run_cli(["obs-report"])
    assert code == 0
    assert output == (GOLDEN_DIR / "obs_report.txt").read_text()


def test_obs_audit_matches_golden_snapshot():
    code, output = run_cli(["obs-audit"])
    assert code == 0
    assert output == (GOLDEN_DIR / "obs_audit.txt").read_text()


def test_obs_health_matches_golden_snapshot():
    code, output = run_cli(["obs-health"])
    assert code == 0
    assert output == (GOLDEN_DIR / "obs_health.txt").read_text()


def test_obs_top_matches_golden_snapshot():
    code, output = run_cli(["obs-top"])
    assert code == 0
    assert output == (GOLDEN_DIR / "obs_top.txt").read_text()


def test_obs_report_is_deterministic_across_runs():
    assert run_cli(["obs-report"]) == run_cli(["obs-report"])


def test_obs_health_is_deterministic_across_runs():
    assert run_cli(["obs-health"]) == run_cli(["obs-health"])
