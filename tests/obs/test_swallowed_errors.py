"""Formerly-silent exception swallows now surface as a counter.

Both sites still skip the failing element (an unparsable filter must not
take down demand reconciliation; an unparsable frame must not break a
figure trace) — but the skip is recorded in
``obs.swallowed_errors_total{site=...}`` so it can never again hide a
broker pausing real publishers or a figure silently losing edges.
"""

from types import SimpleNamespace

from repro.comparison.figures import _Recorder
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn.broker import NotificationBroker


def counter_total(instrumentation, site):
    values = instrumentation.metrics.counter_values("obs.swallowed_errors_total")
    return sum(v for k, v in values.items() if f"site={site}" in k)


def test_demand_for_counts_unparsable_filters():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    broker = object.__new__(NotificationBroker)  # unit-level: no endpoints
    broker.network = network
    good = SimpleNamespace(paused=False, topic_expression="jobs")
    bad = SimpleNamespace(paused=False, topic_expression="")  # FilterError
    broker.producer = SimpleNamespace(live_subscriptions=lambda: [good, bad])

    assert broker.demand_for("jobs") == 1  # the bad filter is skipped...
    assert counter_total(
        instrumentation, "wsn.broker.demand_for"
    ) == 1  # ...but the skip is recorded


def test_figure_recorder_counts_unparsable_frames():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    recorder = _Recorder(network, labels={})
    recorder._observe(
        SimpleNamespace(ok=True, request=b"not an http request", address="x")
    )
    assert recorder.interactions == []
    assert counter_total(instrumentation, "comparison.figures.recorder") == 1


def test_destroy_registration_counts_upstream_unsubscribe_fault():
    from repro.soap.fault import FaultCode, SoapFault

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    broker = object.__new__(NotificationBroker)  # unit-level: no endpoints
    broker.network = network

    def failing_unsubscribe(handle):
        raise SoapFault(FaultCode.SENDER, "already gone")

    broker._upstream_subscriber = SimpleNamespace(unsubscribe=failing_unsubscribe)
    registration = SimpleNamespace(destroyed=False, upstream=object())

    broker.destroy_registration(registration)
    assert registration.destroyed  # the registration is still torn down...
    assert counter_total(instrumentation, "wsn.broker.destroy_registration") == 1


def test_producer_counts_double_destroy_after_delivery_failure():
    from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
    from repro.wsn.messages import NotificationMessage
    from repro.xmlkit import parse_xml

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    producer = NotificationProducer(network, "http://swallow-producer")
    consumer = NotificationConsumer(network, "http://swallow-consumer")
    handle = WsnSubscriber(network).subscribe(
        producer.epr(), consumer.epr(), topic="t"
    )
    subscription = producer._subscriptions[handle.sub_id]
    # the resource dies first (e.g. swept mid-delivery), then the consumer:
    # the failure-path destroy now hits ResourceUnknownFault
    producer.registry.destroy(subscription.key, reason="test teardown")
    consumer.close()
    producer._deliver(
        subscription, [NotificationMessage(parse_xml("<e/>"), topic="t")]
    )
    assert counter_total(instrumentation, "wsn.producer.destroy_after_failure") == 1


def test_convergence_counts_unreachable_end_to():
    from repro.convergence.service import ConvergedConsumer, ConvergedSource, ConvergedSubscriber
    from repro.xmlkit import parse_xml

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    source = ConvergedSource(network, "http://swallow-source")
    consumer = ConvergedConsumer(network, "http://swallow-sink")
    end_sink = ConvergedConsumer(network, "http://swallow-end")
    ConvergedSubscriber(network).subscribe(
        source.epr(), consumer=consumer.epr(), topic="t", end_to=end_sink.epr()
    )
    # both the consumer and the EndTo sink vanish: delivery fails, and the
    # SubscriptionEnd notice cannot be delivered either
    consumer.close()
    end_sink.close()
    source.publish(parse_xml("<e/>"), topic="t")
    assert counter_total(instrumentation, "convergence.send_end") == 1


def test_jms_consumer_double_close_is_counted():
    from repro.baselines.jms.provider import JmsProvider
    from repro.baselines.jms.session import Connection

    provider = JmsProvider()
    provider.instrumentation = instrumentation = Instrumentation(provider.clock)
    session = Connection(provider, "client-1").create_session()
    consumer = session.create_consumer(provider.topic("t"))
    # detach the subscription behind the consumer's back, then close
    provider.topic("t")._subscribers.remove(consumer._subscription)
    consumer.close()
    assert counter_total(instrumentation, "jms.consumer.close") == 1


def test_uninstrumented_runs_still_skip_silently():
    network = SimulatedNetwork(VirtualClock())  # null instrumentation
    recorder = _Recorder(network, labels={})
    recorder._observe(
        SimpleNamespace(ok=True, request=b"garbage", address="x")
    )
    assert recorder.interactions == []  # no crash, no counter, no trace


def test_pullpoint_overflow_drop_is_counted():
    from repro.soap.envelope import SoapEnvelope, SoapVersion
    from repro.wsn.pullpoint import PullPoint
    from repro.wsn.versions import WsnVersion
    from repro.xmlkit.element import XElem

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    version = WsnVersion.V1_3
    pull_point = PullPoint(network, "http://pp-overflow", version, capacity=2)
    notify = XElem(version.qname("Notify"))
    for _ in range(5):
        notify.append(XElem(version.qname("NotificationMessage")))
    envelope = SoapEnvelope(SoapVersion.V11)
    envelope.add_body(notify)

    pull_point._handle_notify(envelope, None)
    assert len(pull_point.queue) == 2  # the queue keeps what fits...
    # ...and the three dropped messages are on the record
    assert counter_total(instrumentation, "wsn.pullpoint.capacity_overflow") == 3


def test_jms_drain_does_not_strand_messages_behind_a_poisoned_one():
    import pytest

    from repro.baselines.jms.messages import TextMessage
    from repro.baselines.jms.provider import JmsProvider
    from repro.messenger.adapters import JmsBackbone
    from repro.xmlkit import parse_xml

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    backbone = JmsBackbone(JmsProvider(network.clock))
    backbone.network = network  # what WsMessenger does when mounting it
    delivered = []

    def deliver(payload, topic):
        if payload.name.local == "bad":
            raise ValueError("poison")
        delivered.append((payload.name.local, topic))

    backbone.start(deliver)
    # two poisoned messages are already buffered when the drain runs
    backbone._producer.send(TextMessage(text="<bad/>"))
    backbone._producer.send(TextMessage(text="<bad/>"))
    with pytest.raises(ValueError):
        backbone.publish(parse_xml("<good/>"), "t")

    assert delivered == [("good", "t")]  # nothing stranded behind the poison
    # the first error surfaced (raised above); only the second was swallowed
    assert counter_total(instrumentation, "messenger.adapters.jms_drain") == 1


def test_journal_replay_counts_dead_front_door():
    from repro.messenger.journal import JournalEntry, SubscriptionJournal

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    journal = SubscriptionJournal(
        entries=[JournalEntry("urn:act", b"<not-really-soap/>")]
    )
    # nobody listens at the broker address: every re-post dies in flight
    recovered = journal.replay(network, "http://journal-gone-broker")
    assert recovered == 0  # the replay completes...
    assert counter_total(instrumentation, "messenger.journal.replay") == 1


def test_store_recovery_counts_failed_subscribe_replay():
    from repro.messenger.broker import WsMessenger
    from repro.store.core import BrokerStore
    from repro.store.log import MemoryEventLog
    from repro.store.records import SubscribeRecorded
    from repro.store.recovery import _replay_subscribe

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    store = BrokerStore(MemoryEventLog())
    broker = WsMessenger(network, "http://replay-broker", store=store)
    # a logged Subscribe whose wire bytes no longer parse as a Subscribe:
    # the front door answers with a fault, not a grant
    record = SubscribeRecorded(
        at=0.0,
        family="wsn",
        tag="v1_3",
        sub_id="sub-bogus",
        action="urn:not-subscribe",
        wire="<bogus/>",
        expires=None,
    )
    _replay_subscribe(broker, store, record)
    assert store.stats.recovered_subscriptions == 0  # the replay moved on...
    assert counter_total(instrumentation, "store.recovery.replay_subscribe") == 1


def test_corba_batch_push_does_not_strand_events_behind_a_poisoned_one():
    import pytest

    from repro.baselines.corba.events import StructuredEvent
    from repro.messenger.adapters import CorbaBackbone

    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    backbone = CorbaBackbone()
    backbone.network = network
    delivered = []

    def deliver(payload, topic):
        if payload.name.local == "bad":
            raise ValueError("poison")
        delivered.append(payload.name.local)

    backbone.start(deliver)
    servant = next(iter(backbone.orb._servants.values()))
    batch = [
        StructuredEvent(
            domain_name="d", type_name="t", filterable_data={}, payload=payload
        ).to_wire()
        for payload in ("<bad/>", "<bad/>", "<ok/>")
    ]
    with pytest.raises(ValueError):
        servant("push_structured_events", [batch])

    assert delivered == ["ok"]
    assert counter_total(instrumentation, "messenger.adapters.corba_push") == 1
