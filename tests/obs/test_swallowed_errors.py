"""Formerly-silent exception swallows now surface as a counter.

Both sites still skip the failing element (an unparsable filter must not
take down demand reconciliation; an unparsable frame must not break a
figure trace) — but the skip is recorded in
``obs.swallowed_errors_total{site=...}`` so it can never again hide a
broker pausing real publishers or a figure silently losing edges.
"""

from types import SimpleNamespace

from repro.comparison.figures import _Recorder
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn.broker import NotificationBroker


def counter_total(instrumentation, site):
    values = instrumentation.metrics.counter_values("obs.swallowed_errors_total")
    return sum(v for k, v in values.items() if f"site={site}" in k)


def test_demand_for_counts_unparsable_filters():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    broker = object.__new__(NotificationBroker)  # unit-level: no endpoints
    broker.network = network
    good = SimpleNamespace(paused=False, topic_expression="jobs")
    bad = SimpleNamespace(paused=False, topic_expression="")  # FilterError
    broker.producer = SimpleNamespace(live_subscriptions=lambda: [good, bad])

    assert broker.demand_for("jobs") == 1  # the bad filter is skipped...
    assert counter_total(
        instrumentation, "wsn.broker.demand_for"
    ) == 1  # ...but the skip is recorded


def test_figure_recorder_counts_unparsable_frames():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    recorder = _Recorder(network, labels={})
    recorder._observe(
        SimpleNamespace(ok=True, request=b"not an http request", address="x")
    )
    assert recorder.interactions == []
    assert counter_total(instrumentation, "comparison.figures.recorder") == 1


def test_uninstrumented_runs_still_skip_silently():
    network = SimulatedNetwork(VirtualClock())  # null instrumentation
    recorder = _Recorder(network, labels={})
    recorder._observe(
        SimpleNamespace(ok=True, request=b"garbage", address="x")
    )
    assert recorder.interactions == []  # no crash, no counter, no trace
