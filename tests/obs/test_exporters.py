"""Exporters and the obs-report CLI: deterministic text and JSON output."""

import json

from repro.__main__ import main
from repro.obs import Instrumentation, build_report, render_json_report, render_text_report
from repro.obs.report import run_demo_scenario
from repro.transport import SimulatedNetwork, VirtualClock


def tiny_instrumented_run():
    network = SimulatedNetwork(VirtualClock())
    instrumentation = Instrumentation.attach(network)
    network.register("http://svc", lambda wire: b"ok")
    network.send_request("http://svc", b"ping")
    return instrumentation


class TestReportDocument:
    def test_summary_matches_layers(self):
        instrumentation = tiny_instrumented_run()
        report = build_report(instrumentation, title="t")
        assert report["title"] == "t"
        assert report["summary"]["spans"] == len(instrumentation.tracer.spans)
        assert report["summary"]["wire_frames"] == 1
        assert report["summary"]["span_errors"] == 0
        assert report["wire"]["totals"]["by_outcome"] == {"ok": 1}

    def test_json_report_is_valid_and_sorted(self):
        text = render_json_report(tiny_instrumented_run())
        document = json.loads(text)
        assert list(document) == sorted(document)
        # deterministic rendering: same document round-trips byte-identically
        assert json.dumps(document, indent=2, sort_keys=True) == text

    def test_text_report_has_all_sections(self):
        rendered = render_text_report(tiny_instrumented_run(), title="tiny run")
        assert rendered.splitlines()[0] == "tiny run"
        for section in ("Metrics", "Spans", "Wire"):
            assert section in rendered
        assert "net.requests{outcome=ok}" in rendered
        assert "deliver" in rendered


class TestDeterminism:
    def test_demo_scenario_renders_identically_across_runs(self):
        first = render_json_report(run_demo_scenario())
        second = render_json_report(run_demo_scenario())
        assert first == second
        first_text = render_text_report(run_demo_scenario())
        second_text = render_text_report(run_demo_scenario())
        assert first_text == second_text

    def test_demo_scenario_shows_all_failure_outcomes(self):
        report = build_report(run_demo_scenario())
        outcomes = report["wire"]["totals"]["by_outcome"]
        assert outcomes["ok"] > 0
        assert outcomes["firewall_blocked"] > 0
        assert outcomes["unreachable"] == 1


class TestCli:
    def test_obs_report_subcommand_runs(self, capsys):
        assert main(["obs-report"]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out
        assert "Metrics" in out
        assert '"summary"' in out  # the JSON document follows the text

    def test_obs_report_json_only(self, capsys):
        assert main(["obs-report", "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["summary"]["spans"] > 0

    def test_unknown_subcommand_fails(self, capsys):
        assert main(["no-such-subcommand"]) == 2


class TestFanoutSummary:
    def test_fanout_counters_are_aggregated_in_the_summary(self):
        instrumentation = tiny_instrumented_run()
        instrumentation.count("fanout.index_hits", 3, family="wsn")
        instrumentation.count("fanout.index_hits", 2, family="wse")
        instrumentation.count("fanout.index_skips", 40, family="wsn")
        instrumentation.count("fanout.payload_copies", family="broker")
        instrumentation.count("fanout.filter_evals", 5, family="wsn")
        report = build_report(instrumentation)
        assert report["summary"]["fanout"] == {
            "filter_evals": 5,
            "index_hits": 5,
            "index_skips": 40,
            "payload_copies": 1,
        }

    def test_fanout_line_in_text_report(self):
        instrumentation = tiny_instrumented_run()
        instrumentation.count("fanout.index_hits", 7, family="wsn")
        rendered = render_text_report(instrumentation)
        assert "fan-out: index_hits=7" in rendered

    def test_no_fanout_counters_no_fanout_summary(self):
        report = build_report(tiny_instrumented_run())
        assert "fanout" not in report["summary"]

    def test_demo_scenario_surfaces_fanout_alongside_delivery(self):
        report = build_report(run_demo_scenario())
        assert "delivery" in report["summary"]
        assert "fanout" in report["summary"]
        assert report["summary"]["fanout"]["index_hits"] >= 1
