"""The obs-health scenario and its anomaly probes."""

import pytest

from repro.obs.health import (
    breaker_flaps,
    build_health_report,
    conservation_drift,
    queue_growth_anomalies,
    run_health_scenario,
    stale_batch_timers,
)
from repro.obs.instrument import Instrumentation
from repro.transport import SimulatedNetwork, VirtualClock


@pytest.fixture(scope="module")
def health_run():
    # module-scoped: the scripted minute is the expensive part, the probes
    # under test only read from it
    return run_health_scenario()


class TestScriptedScenario:
    def test_every_anomaly_probe_fires(self, health_run):
        report = build_health_report(health_run)
        assert report["queue_growth"], "paused/parked backlogs must trip growth"
        assert report["breaker_flaps"], "the flaky consumer must flap"
        assert report["stale_batches"], "the stranded batch must go stale"
        assert report["anomalies"] >= 3

    def test_conservation_balances_despite_the_degradation(self, health_run):
        drift = conservation_drift(
            health_run.instrumentation, health_run.brokers
        )
        assert drift["drift"] == 0
        assert drift["ledger_pending"] == drift["live_parked"]

    def test_paused_queue_is_the_growth_anomaly(self, health_run):
        gauges = [a["gauge"] for a in queue_growth_anomalies(health_run.probes)]
        assert any(g.startswith("broker.sub_queue_depth") for g in gauges)
        # the append-only store log also grows monotonically but must NOT be
        # flagged: unbounded growth is its job
        assert not any(g.startswith("store.") for g in gauges)

    def test_flight_recorder_saw_every_hot_path(self, health_run):
        kinds = health_run.instrumentation.flight.by_kind()
        for kind in ("publish", "delivery", "breaker", "log_append", "sample"):
            assert kinds.get(kind, 0) > 0, f"no {kind!r} flight records"

    def test_mesh_rebalance_counted(self, health_run):
        counters = health_run.instrumentation.metrics.counter_values(
            "mesh.rebalances"
        )
        assert sum(counters.values()) == 1


class TestProbeUnits:
    def test_breaker_flaps_threshold(self):
        network = SimulatedNetwork(VirtualClock())
        instrumentation = Instrumentation.attach(network)
        for state in ("open", "half_open", "open"):
            instrumentation.count(
                "delivery.breaker_transitions", sink="http://s", state=state
            )
        instrumentation.count(
            "delivery.breaker_transitions", sink="http://quiet", state="open"
        )
        (flap,) = breaker_flaps(instrumentation, threshold=3)
        assert flap["sink"] == "http://s"
        assert flap["transitions"] == 3
        assert flap["by_state"] == {"open": 2, "half_open": 1}

    def test_stale_batch_timers_empty_on_flushed_brokers(self, health_run):
        # only the deliberately-stranded publish is stale; a freshly-pumped
        # mesh shard reports nothing
        mesh_brokers = [node.broker for node in health_run.cluster]
        assert stale_batch_timers(mesh_brokers) == []
        core = stale_batch_timers([health_run.broker])
        assert core and all(f["stale_groups"] > 0 for f in core)
