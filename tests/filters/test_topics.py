"""Tests for topic spaces and the WS-Topics expression dialects."""

import pytest

from repro.filters import (
    FilterContext,
    TopicDialect,
    TopicExpression,
    TopicFilter,
    TopicNamespace,
    TopicPath,
)
from repro.filters.base import FilterError
from repro.xmlkit.element import XElem
from repro.xmlkit.names import QName

PAYLOAD = XElem(QName("urn:x", "Event"))


class TestTopicPath:
    def test_parse(self):
        path = TopicPath.parse("jobs/status/progress")
        assert path.parts == ("jobs", "status", "progress")
        assert path.root == "jobs"
        assert str(path) == "jobs/status/progress"

    def test_empty_rejected(self):
        with pytest.raises(FilterError):
            TopicPath.parse("   ")

    def test_wildcard_part_rejected(self):
        with pytest.raises(FilterError):
            TopicPath(("a", "*"))


class TestTopicNamespace:
    def test_add_and_contains(self):
        space = TopicNamespace("urn:grid")
        space.add("jobs/status")
        assert space.contains("jobs")
        assert space.contains("jobs/status")
        assert not space.contains("jobs/errors")

    def test_all_paths(self):
        space = TopicNamespace()
        space.add("a/b")
        space.add("a/c")
        space.add("d")
        assert space.all_paths() == ["a", "a/b", "a/c", "d"]

    def test_final_topic_rejects_children(self):
        space = TopicNamespace()
        space.add("a/b", final=True)
        with pytest.raises(FilterError):
            space.add("a/b/c")

    def test_open_namespace_grows_on_publication(self):
        space = TopicNamespace()
        space.validate_publication("new/topic")
        assert space.contains("new/topic")

    def test_fixed_namespace_rejects_unknown(self):
        space = TopicNamespace(fixed=True)
        space.add("known")
        space.validate_publication("known")
        with pytest.raises(FilterError):
            space.validate_publication("unknown")


class TestSimpleDialect:
    def test_matches_root_only(self):
        expr = TopicExpression("jobs", TopicDialect.SIMPLE)
        assert expr.matches("jobs")
        assert not expr.matches("jobs/status")
        assert not expr.matches("other")

    def test_rejects_paths(self):
        with pytest.raises(FilterError):
            TopicExpression("a/b", TopicDialect.SIMPLE)

    def test_rejects_wildcards(self):
        with pytest.raises(FilterError):
            TopicExpression("a*", TopicDialect.SIMPLE)


class TestConcreteDialect:
    def test_exact_path_match(self):
        expr = TopicExpression("jobs/status", TopicDialect.CONCRETE)
        assert expr.matches("jobs/status")
        assert not expr.matches("jobs")
        assert not expr.matches("jobs/status/progress")

    def test_rejects_wildcards_and_unions(self):
        with pytest.raises(FilterError):
            TopicExpression("jobs/*", TopicDialect.CONCRETE)
        with pytest.raises(FilterError):
            TopicExpression("a|b", TopicDialect.CONCRETE)


class TestFullDialect:
    def test_star_matches_one_level(self):
        expr = TopicExpression("jobs/*", TopicDialect.FULL)
        assert expr.matches("jobs/status")
        assert expr.matches("jobs/errors")
        assert not expr.matches("jobs")
        assert not expr.matches("jobs/status/progress")

    def test_descendant_gap(self):
        expr = TopicExpression("jobs//progress", TopicDialect.FULL)
        assert expr.matches("jobs/progress")
        assert expr.matches("jobs/status/progress")
        assert expr.matches("jobs/a/b/progress")
        assert not expr.matches("jobs/status")

    def test_trailing_subtree(self):
        expr = TopicExpression("jobs//.", TopicDialect.FULL)
        assert expr.matches("jobs")
        assert expr.matches("jobs/status")
        assert expr.matches("jobs/status/progress")
        assert not expr.matches("other")

    def test_union(self):
        expr = TopicExpression("jobs/status | system/alerts", TopicDialect.FULL)
        assert expr.matches("jobs/status")
        assert expr.matches("system/alerts")
        assert not expr.matches("jobs/errors")

    def test_star_and_gap_combination(self):
        expr = TopicExpression("*/status//.", TopicDialect.FULL)
        assert expr.matches("jobs/status")
        assert expr.matches("vm/status/cpu")
        assert not expr.matches("jobs/errors")

    def test_empty_branch_rejected(self):
        with pytest.raises(FilterError):
            TopicExpression("a |", TopicDialect.FULL)

    def test_bare_subtree_rejected(self):
        with pytest.raises(FilterError):
            TopicExpression("//.", TopicDialect.FULL)


class TestTopicFilter:
    def test_filters_on_context_topic(self):
        topic_filter = TopicFilter(TopicExpression("jobs//.", TopicDialect.FULL))
        assert topic_filter.matches(FilterContext(PAYLOAD, topic="jobs/status"))
        assert not topic_filter.matches(FilterContext(PAYLOAD, topic="system"))

    def test_no_topic_never_matches(self):
        topic_filter = TopicFilter(TopicExpression("jobs", TopicDialect.SIMPLE))
        assert not topic_filter.matches(FilterContext(PAYLOAD))

    def test_parse_by_dialect_uri(self):
        topic_filter = TopicFilter.parse("jobs", TopicDialect.SIMPLE.uri)
        assert topic_filter.expression.dialect is TopicDialect.SIMPLE

    def test_unknown_dialect_uri(self):
        with pytest.raises(FilterError):
            TopicFilter.parse("jobs", "urn:not-a-dialect")
