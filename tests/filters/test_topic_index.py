"""The fan-out fast path's topic-subscription trie.

The load-bearing property: for every (expression, path) pair the index's
candidate set agrees exactly with ``TopicExpression.matches`` — the trie is a
pure acceleration of the linear scan, never a semantic change.
"""

import random

import pytest

from repro.filters.base import AcceptAllFilter, AndFilter
from repro.filters.content import MessageContentFilter
from repro.filters.topics import (
    TopicDialect,
    TopicExpression,
    TopicFilter,
    TopicNamespace,
    TopicSubscriptionIndex,
    topic_expression_of,
)

FULL = TopicDialect.FULL


def _index_with(expressions: dict[str, TopicExpression | None]) -> TopicSubscriptionIndex:
    index = TopicSubscriptionIndex()
    for key, expression in expressions.items():
        index.add(key, expression)
    return index


class TestCandidates:
    def test_concrete_exact_match_only(self):
        index = _index_with({"s1": TopicExpression("a/b", TopicDialect.CONCRETE)})
        assert index.candidates("a/b") == ["s1"]
        assert index.candidates("a") == []
        assert index.candidates("a/b/c") == []

    def test_simple_dialect_matches_root_only(self):
        index = _index_with({"s1": TopicExpression("news", TopicDialect.SIMPLE)})
        assert index.candidates("news") == ["s1"]
        assert index.candidates("news/sports") == []

    def test_star_wildcard(self):
        index = _index_with({"s1": TopicExpression("a/*", FULL)})
        assert index.candidates("a/b") == ["s1"]
        assert index.candidates("a/c") == ["s1"]
        assert index.candidates("a") == []
        assert index.candidates("a/b/c") == []

    def test_descendants_suffix(self):
        index = _index_with({"s1": TopicExpression("a//.", FULL)})
        assert index.candidates("a") == ["s1"]
        assert index.candidates("a/b/c") == ["s1"]
        assert index.candidates("b") == []

    def test_gap_wildcard(self):
        index = _index_with({"s1": TopicExpression("a//z", FULL)})
        assert index.candidates("a/z") == ["s1"]
        assert index.candidates("a/b/z") == ["s1"]
        assert index.candidates("a/b/c/z") == ["s1"]
        assert index.candidates("a/z/b") == []

    def test_union_branches(self):
        index = _index_with({"s1": TopicExpression("a/b|c", FULL)})
        assert index.candidates("a/b") == ["s1"]
        assert index.candidates("c") == ["s1"]
        assert index.candidates("a") == []

    def test_always_bucket_matches_everything_including_no_topic(self):
        index = _index_with({"s1": None})
        assert index.candidates("anything/at/all") == ["s1"]
        assert index.candidates(None) == ["s1"]

    def test_topic_filtered_keys_never_match_topicless_publication(self):
        index = _index_with(
            {"s1": TopicExpression("a", TopicDialect.CONCRETE), "s2": None}
        )
        assert index.candidates(None) == ["s2"]

    def test_candidates_preserve_insertion_order(self):
        index = TopicSubscriptionIndex()
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            index.add(key, TopicExpression("a//.", FULL))
        assert index.candidates("a/b") == keys

    def test_reinsertion_moves_key_to_the_back(self):
        index = TopicSubscriptionIndex()
        index.add("k1", TopicExpression("a", TopicDialect.CONCRETE))
        index.add("k2", TopicExpression("a", TopicDialect.CONCRETE))
        index.add("k1", TopicExpression("a", TopicDialect.CONCRETE))
        assert index.candidates("a") == ["k2", "k1"]

    def test_discard(self):
        index = _index_with(
            {
                "s1": TopicExpression("a/b", TopicDialect.CONCRETE),
                "s2": None,
            }
        )
        index.discard("s1")
        index.discard("s2")
        index.discard("missing")  # no-op
        assert index.candidates("a/b") == []
        assert len(index) == 0
        assert "s1" not in index

    def test_len_and_contains(self):
        index = _index_with({"s1": None, "s2": TopicExpression("a", TopicDialect.CONCRETE)})
        assert len(index) == 2
        assert "s1" in index and "s2" in index


class TestDifferentialAgainstLinearMatching:
    """Randomized expressions x paths: trie == TopicExpression.matches."""

    EXPRESSIONS = [
        ("news", TopicDialect.SIMPLE),
        ("news/sports", TopicDialect.CONCRETE),
        ("news/sports/football", TopicDialect.CONCRETE),
        ("news/*", FULL),
        ("news//.", FULL),
        ("*/sports", FULL),
        ("news//football", FULL),
        ("//football", FULL),
        ("news/politics|weather", FULL),
        ("weather/*/alerts", FULL),
        ("*", FULL),
        ("a//b//c", FULL),
        ("a/*//.", FULL),
    ]

    PATHS = [
        "news",
        "news/sports",
        "news/sports/football",
        "news/politics",
        "news/politics/local",
        "weather",
        "weather/alerts",
        "weather/europe/alerts",
        "football",
        "a/b/c",
        "a/x/b/y/c",
        "a/q",
        "other",
    ]

    def test_exhaustive_agreement(self):
        compiled = {
            f"k{i}": TopicExpression(text, dialect)
            for i, (text, dialect) in enumerate(self.EXPRESSIONS)
        }
        index = _index_with(dict(compiled))
        for path in self.PATHS:
            want = sorted(k for k, e in compiled.items() if e.matches(path))
            assert sorted(index.candidates(path)) == want, path

    def test_randomized_agreement(self):
        rng = random.Random(20060813)
        names = ["a", "b", "c", "d"]
        for _ in range(200):
            depth = rng.randint(1, 4)
            segments = []
            for _ in range(depth):
                segments.append(rng.choice(names + ["*"]))
            text = "/".join(segments)
            if rng.random() < 0.3:
                text = text.replace("/", "//", 1)
            if rng.random() < 0.3:
                text += "//."
            try:
                expression = TopicExpression(text, FULL)
            except Exception:
                continue
            index = _index_with({"k": expression})
            for _ in range(20):
                path = "/".join(
                    rng.choice(names) for _ in range(rng.randint(1, 5))
                )
                want = ["k"] if expression.matches(path) else []
                assert index.candidates(path) == want, (text, path)


class TestTopicExpressionOf:
    def test_topic_filter_exposes_its_expression(self):
        expression = TopicExpression("a/b", TopicDialect.CONCRETE)
        assert topic_expression_of(TopicFilter(expression)) is expression

    def test_and_filter_exposes_first_topic_part(self):
        expression = TopicExpression("a", TopicDialect.CONCRETE)
        composite = AndFilter(
            [MessageContentFilter("true()"), TopicFilter(expression)]
        )
        assert topic_expression_of(composite) is expression

    def test_unindexable_filters_map_to_always(self):
        assert topic_expression_of(AcceptAllFilter()) is None
        assert topic_expression_of(MessageContentFilter("true()")) is None

    def test_namespace_mints_indexes(self):
        namespace = TopicNamespace()
        assert isinstance(namespace.new_index(), TopicSubscriptionIndex)
        assert namespace.new_index() is not namespace.new_index()
