"""Property-based tests for filter languages, topic trees and CDR."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.corba.cdr import decode_value, encode_value
from repro.filters.base import FilterError
from repro.filters.selector import MessageSelector
from repro.filters.tcl import TclConstraint
from repro.filters.topics import TopicDialect, TopicExpression, TopicNamespace, TopicPath

# --- generators -----------------------------------------------------------------

_names = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
_paths = st.lists(_names, min_size=1, max_size=4)


class TestTopicProperties:
    @given(_paths)
    @settings(max_examples=150)
    def test_concrete_expression_matches_itself_only(self, parts):
        path = "/".join(parts)
        expression = TopicExpression(path, TopicDialect.CONCRETE)
        assert expression.matches(path)
        assert not expression.matches(path + "/extra")
        if len(parts) > 1:
            assert not expression.matches("/".join(parts[:-1]))

    @given(_paths)
    @settings(max_examples=150)
    def test_subtree_expression_matches_all_descendants(self, parts):
        root = parts[0]
        expression = TopicExpression(f"{root}//.", TopicDialect.FULL)
        assert expression.matches("/".join(parts))  # every path under root
        assert expression.matches(root)
        assert expression.matches(root + "/" + "/".join(parts))
        assert not expression.matches("zzzother")

    @given(_paths)
    @settings(max_examples=150)
    def test_star_matches_any_single_level(self, parts):
        if len(parts) < 2:
            return
        starred = [parts[0], "*", *parts[2:]]
        expression = TopicExpression("/".join(starred), TopicDialect.FULL)
        assert expression.matches("/".join(parts))

    @given(st.lists(_paths, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_namespace_contains_everything_added(self, paths):
        space = TopicNamespace()
        for parts in paths:
            space.add("/".join(parts))
        for parts in paths:
            assert space.contains("/".join(parts))
            # every ancestor is present too
            for i in range(1, len(parts)):
                assert space.contains("/".join(parts[:i]))

    @given(st.lists(_paths, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_all_paths_sorted_and_unique(self, paths):
        space = TopicNamespace()
        for parts in paths:
            space.add("/".join(parts))
        listing = space.all_paths()
        assert listing == sorted(listing)
        assert len(listing) == len(set(listing))

    @given(_paths)
    def test_topic_path_str_parse_roundtrip(self, parts):
        path = TopicPath(tuple(parts))
        assert TopicPath.parse(str(path)) == path


class TestSelectorProperties:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=200)
    def test_numeric_comparisons_consistent(self, a, b):
        fields = {"x": a}
        assert MessageSelector(f"x = {b}").matches(fields) == (a == b)
        assert MessageSelector(f"x < {b}").matches(fields) == (a < b)
        assert MessageSelector(f"x >= {b}").matches(fields) == (a >= b)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=150)
    def test_between_equivalent_to_conjunction(self, x, lo, hi):
        fields = {"x": x}
        between = MessageSelector(f"x BETWEEN {lo} AND {hi}").matches(fields)
        conjunction = MessageSelector(f"x >= {lo} AND x <= {hi}").matches(fields)
        assert between == conjunction

    @given(st.text(alphabet="abc%_", max_size=6))
    @settings(max_examples=150)
    def test_like_never_crashes(self, pattern):
        escaped = pattern.replace("'", "''")
        selector = MessageSelector(f"s LIKE '{escaped}'")
        selector.matches({"s": "abcabc"})  # any boolean is fine; no exception

    @given(st.text(max_size=30))
    @settings(max_examples=200)
    def test_parser_totality(self, text):
        try:
            MessageSelector(text)
        except FilterError:
            pass  # rejection is the only acceptable failure

    @given(st.booleans(), st.booleans())
    def test_de_morgan(self, a, b):
        fields = {"a": a, "b": b}
        left = MessageSelector("NOT (a = TRUE AND b = TRUE)").matches(fields)
        right = MessageSelector("NOT a = TRUE OR NOT b = TRUE").matches(fields)
        assert left == right


class TestTclProperties:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=200)
    def test_comparisons_consistent(self, a, b):
        event = {"filterable_data": {"x": a}}
        assert TclConstraint(f"$x == {b}").matches(event) == (a == b)
        assert TclConstraint(f"$x < {b}").matches(event) == (a < b)

    @given(st.text(max_size=30))
    @settings(max_examples=200)
    def test_parser_totality(self, text):
        try:
            TclConstraint(text)
        except FilterError:
            pass

    @given(st.integers(-1000, 1000))
    def test_arithmetic_identity(self, x):
        event = {"filterable_data": {"x": x}}
        assert TclConstraint("$x + 0 == $x").matches(event)
        assert TclConstraint("$x * 1 == $x").matches(event)


_cdr_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**31), 2**31 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=15),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCdrProperties:
    @given(_cdr_values)
    @settings(max_examples=300)
    def test_encode_decode_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(_cdr_values)
    @settings(max_examples=100)
    def test_decoder_consumes_exactly(self, value):
        from repro.baselines.corba.cdr import CdrDecoder

        decoder = CdrDecoder(encode_value(value))
        decoder.get_any()
        assert decoder.at_end()
