"""Tests for the TCL constraint language, XPath content filters, and
producer-properties filters."""

import pytest

from repro.filters import (
    AcceptAllFilter,
    AndFilter,
    FilterContext,
    MessageContentFilter,
    ProducerPropertiesFilter,
)
from repro.filters.base import FilterError
from repro.filters.tcl import TclConstraint
from repro.xmlkit import parse_xml

EVENT = {
    "header": {
        "fixed_header": {
            "event_type": {"domain_name": "grid", "type_name": "JobStatus"},
            "event_name": "progress-update",
        },
        "variable_header": {"priority": 3},
    },
    "filterable_data": {
        "progress": 75,
        "severity": "warning",
        "job": "job-42",
        "tags": ["urgent", "batch"],
    },
    "variable_header": {"priority": 3},
}


def tcl(expr):
    return TclConstraint(expr).matches(EVENT)


class TestTclComponents:
    def test_type_name_shorthand(self):
        assert tcl("$type_name == 'JobStatus'")

    def test_domain_name_shorthand(self):
        assert tcl("$domain_name == 'grid'")

    def test_event_name_shorthand(self):
        assert tcl("$event_name == 'progress-update'")

    def test_dotted_path(self):
        assert tcl("$.header.fixed_header.event_type.type_name == 'JobStatus'")

    def test_generic_name_searches_filterable_data(self):
        assert tcl("$progress == 75")

    def test_generic_name_falls_back_to_variable_header(self):
        assert tcl("$priority == 3")

    def test_missing_component_is_false(self):
        assert not tcl("$nonexistent == 1")

    def test_exist(self):
        assert tcl("exist $progress")
        assert not tcl("exist $nonexistent")


class TestTclOperators:
    def test_comparisons(self):
        assert tcl("$progress > 50 and $progress <= 75")
        assert tcl("$progress != 80")
        assert not tcl("$progress < 50")

    def test_boolean_connectives(self):
        assert tcl("$progress > 50 or $severity == 'fatal'")
        assert tcl("not ($severity == 'fatal')")

    def test_arithmetic(self):
        assert tcl("$progress + 25 == 100")
        assert tcl("$progress * 2 > 100")
        assert tcl("-$progress == -75")

    def test_substring_match(self):
        assert tcl("$job ~ 'job'")
        assert not tcl("$job ~ 'xyz'")

    def test_in_sequence(self):
        assert tcl("'urgent' in $tags")
        assert not tcl("'idle' in $tags")

    def test_division_by_zero_is_false(self):
        assert not tcl("$progress / 0 > 1")

    def test_string_vs_number_comparison(self):
        assert not tcl("$severity == 75")
        assert tcl("$severity != 75")

    @pytest.mark.parametrize("bad", ["", "$x ==", "(", "$x in", "foo == 1", "'s' ~"])
    def test_bad_syntax(self, bad):
        with pytest.raises(FilterError):
            TclConstraint(bad)


PAYLOAD = parse_xml(
    '<ev:Status xmlns:ev="urn:grid"><ev:progress>75</ev:progress></ev:Status>'
)
NS = {"ev": "urn:grid"}


class TestMessageContentFilter:
    def test_matches_payload(self):
        content = MessageContentFilter("/ev:Status[ev:progress > 50]", NS)
        assert content.matches(FilterContext(PAYLOAD))

    def test_rejects_payload(self):
        content = MessageContentFilter("/ev:Status[ev:progress > 90]", NS)
        assert not content.matches(FilterContext(PAYLOAD))

    def test_invalid_expression(self):
        with pytest.raises(FilterError):
            MessageContentFilter("///", NS)

    def test_dialect_is_xpath(self):
        assert "xpath" in MessageContentFilter("/*", NS).dialect.lower()

    def test_describe(self):
        assert "/*" in MessageContentFilter("/*").describe()


class TestProducerPropertiesFilter:
    def test_matches_properties(self):
        producer = ProducerPropertiesFilter("/*[cluster='A']")
        context = FilterContext(PAYLOAD, producer_properties={"cluster": "A"})
        assert producer.matches(context)

    def test_rejects_properties(self):
        producer = ProducerPropertiesFilter("/*[cluster='B']")
        context = FilterContext(PAYLOAD, producer_properties={"cluster": "A"})
        assert not producer.matches(context)

    def test_numeric_property(self):
        producer = ProducerPropertiesFilter("boolean(/*[load < 0.5])")
        assert producer.matches(FilterContext(PAYLOAD, producer_properties={"load": "0.3"}))

    def test_empty_properties(self):
        producer = ProducerPropertiesFilter("/*[x='1']")
        assert not producer.matches(FilterContext(PAYLOAD))


class TestCombinators:
    def test_accept_all(self):
        assert AcceptAllFilter().matches(FilterContext(PAYLOAD))

    def test_and_filter_conjunction(self):
        combined = AndFilter(
            [
                MessageContentFilter("/ev:Status[ev:progress > 50]", NS),
                ProducerPropertiesFilter("/*[cluster='A']"),
            ]
        )
        good = FilterContext(PAYLOAD, producer_properties={"cluster": "A"})
        bad = FilterContext(PAYLOAD, producer_properties={"cluster": "B"})
        assert combined.matches(good)
        assert not combined.matches(bad)

    def test_empty_and_filter_accepts(self):
        assert AndFilter([]).matches(FilterContext(PAYLOAD))

    def test_describe_joins(self):
        combined = AndFilter([AcceptAllFilter(), AcceptAllFilter()])
        assert "AND" in combined.describe()
