"""Tests for the compiled-filter caches (repro.filters.compilecache)."""

import pytest

from repro.filters.base import FilterContext, FilterError
from repro.filters.compilecache import (
    FILTER_COMPILE_STATS,
    LRUCache,
    clear_caches,
    compiled_xpath,
)
from repro.filters.content import MessageContentFilter
from repro.filters.topics import TopicFilter
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    FILTER_COMPILE_STATS.reset()
    yield
    clear_caches()
    FILTER_COMPILE_STATS.reset()


class TestXPathCache:
    def test_identical_expressions_share_one_instance(self):
        first = compiled_xpath("//a/b", {"p": "urn:x"})
        second = compiled_xpath("//a/b", {"p": "urn:x"})
        assert first is second
        assert FILTER_COMPILE_STATS.snapshot() == {"hits": 1, "misses": 1}

    def test_namespace_order_does_not_split_entries(self):
        a = compiled_xpath("//p:a", {"p": "urn:1", "q": "urn:2"})
        b = compiled_xpath("//p:a", {"q": "urn:2", "p": "urn:1"})
        assert a is b

    def test_different_namespaces_are_different_entries(self):
        a = compiled_xpath("//p:a", {"p": "urn:1"})
        b = compiled_xpath("//p:a", {"p": "urn:2"})
        assert a is not b

    def test_failed_compilations_are_not_cached(self):
        for _ in range(2):
            with pytest.raises(Exception):
                compiled_xpath("///")
        assert FILTER_COMPILE_STATS.misses == 0

    def test_shared_instance_still_filters_correctly(self):
        payload = parse_xml('<e:a xmlns:e="urn:f"><e:b>1</e:b></e:a>')
        filters = [
            MessageContentFilter("//e:b", {"e": "urn:f"}) for _ in range(3)
        ]
        assert all(
            f.matches(FilterContext(payload, topic=None)) for f in filters
        )
        assert FILTER_COMPILE_STATS.misses == 1
        assert FILTER_COMPILE_STATS.hits == 2

    def test_bad_expression_still_raises_filter_error(self):
        with pytest.raises(FilterError):
            MessageContentFilter("///")


class TestTopicExpressionCache:
    def test_parse_shares_compiled_expressions(self):
        first = TopicFilter.parse("news//.", Namespaces.DIALECT_TOPIC_FULL)
        second = TopicFilter.parse("news//.", Namespaces.DIALECT_TOPIC_FULL)
        assert first.expression is second.expression

    def test_same_text_different_dialect_is_a_different_entry(self):
        simple = TopicFilter.parse("news", Namespaces.DIALECT_TOPIC_SIMPLE)
        concrete = TopicFilter.parse("news", Namespaces.DIALECT_TOPIC_CONCRETE)
        assert simple.expression is not concrete.expression

    def test_shared_expression_matches_correctly(self):
        f = TopicFilter.parse("news/*", Namespaces.DIALECT_TOPIC_FULL)
        g = TopicFilter.parse("news/*", Namespaces.DIALECT_TOPIC_FULL)
        context = FilterContext(parse_xml("<x/>"), topic="news/sports")
        assert f.matches(context) and g.matches(context)

    def test_invalid_expression_still_raises(self):
        with pytest.raises(FilterError):
            TopicFilter.parse("a|b", Namespaces.DIALECT_TOPIC_CONCRETE)


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.get_or_build(("a",), lambda: "A")
        cache.get_or_build(("b",), lambda: "B")
        cache.get_or_build(("a",), lambda: "A2")  # refresh a
        cache.get_or_build(("c",), lambda: "C")  # evicts b (LRU)
        assert len(cache) == 2
        assert cache.get_or_build(("a",), lambda: "A3") == "A"  # still cached
        assert cache.get_or_build(("b",), lambda: "B2") == "B2"  # rebuilt
