"""Tests for the JMS SQL92-subset message selector."""

import pytest

from repro.filters.base import FilterError
from repro.filters.selector import MessageSelector

FIELDS = {
    "JMSPriority": 7,
    "JMSType": "status",
    "severity": "warning",
    "progress": 75.0,
    "retries": 0,
    "active": True,
    "label": "job_42%done",
}


def sel(expr):
    return MessageSelector(expr).matches(FIELDS)


class TestComparisons:
    def test_numeric_equality(self):
        assert sel("JMSPriority = 7")
        assert not sel("JMSPriority = 6")

    def test_numeric_int_float_equal(self):
        assert sel("progress = 75")

    def test_not_equal(self):
        assert sel("JMSPriority <> 6")

    def test_ordering(self):
        assert sel("progress > 50 AND progress <= 75")
        assert not sel("progress < 50")

    def test_string_equality(self):
        assert sel("JMSType = 'status'")
        assert not sel("JMSType = 'error'")

    def test_string_ordering_is_unknown(self):
        # SQL ordering on strings is not in the JMS subset: unknown -> no match
        assert not sel("JMSType > 'a'")

    def test_boolean_literal(self):
        assert sel("active = TRUE")
        assert not sel("active = FALSE")

    def test_cross_type_equality_false(self):
        assert not sel("JMSType = 7")


class TestLogic:
    def test_and_or_not(self):
        assert sel("JMSPriority = 7 AND JMSType = 'status'")
        assert sel("JMSPriority = 0 OR JMSType = 'status'")
        assert sel("NOT JMSPriority = 0")

    def test_three_valued_unknown_and_false(self):
        # missing = unknown; unknown AND false = false; NOT unknown = unknown
        assert not sel("missing = 1 AND JMSPriority = 7")
        assert sel("missing = 1 OR JMSPriority = 7")
        assert not sel("NOT missing = 1")

    def test_parentheses(self):
        assert sel("(JMSPriority = 0 OR JMSPriority = 7) AND active = TRUE")


class TestPredicates:
    def test_between(self):
        assert sel("progress BETWEEN 50 AND 100")
        assert not sel("progress BETWEEN 80 AND 100")
        assert sel("progress NOT BETWEEN 80 AND 100")

    def test_in(self):
        assert sel("severity IN ('warning', 'error')")
        assert not sel("severity IN ('info')")
        assert sel("severity NOT IN ('info')")

    def test_in_with_null_is_unknown(self):
        assert not sel("missing IN ('a')")
        assert not sel("missing NOT IN ('a')")

    def test_like_percent(self):
        assert sel("JMSType LIKE 'sta%'")
        assert not sel("JMSType LIKE 'err%'")

    def test_like_underscore(self):
        assert sel("JMSType LIKE 'stat_s'")

    def test_like_escape(self):
        assert sel("label LIKE 'job!_42!%done' ESCAPE '!'")
        assert not sel("JMSType LIKE 'st!_tus' ESCAPE '!'")

    def test_not_like(self):
        assert sel("JMSType NOT LIKE 'err%'")

    def test_is_null(self):
        assert sel("missing IS NULL")
        assert sel("JMSType IS NOT NULL")
        assert not sel("JMSType IS NULL")


class TestArithmetic:
    def test_plus_times_precedence(self):
        assert sel("retries + 2 * 3 = 6")

    def test_division(self):
        assert sel("progress / 3 = 25")

    def test_unary_minus(self):
        assert sel("-JMSPriority = -7")

    def test_arith_on_string_is_unknown(self):
        assert not sel("JMSType + 1 = 2")

    def test_division_by_zero_unknown(self):
        assert not sel("progress / retries > 1")


class TestSyntax:
    def test_keywords_case_insensitive(self):
        assert sel("jmsPriority is not null or JMSPriority = 7")
        assert MessageSelector("severity In ('warning')").matches(FIELDS)

    def test_quoted_quote(self):
        selector = MessageSelector("name = 'O''Brien'")
        assert selector.matches({"name": "O'Brien"})

    @pytest.mark.parametrize(
        "bad",
        ["", "AND", "x =", "x BETWEEN 1", "x IN ()", "x LIKE 'a' ESCAPE 'ab'", "( x = 1", "x = 1 )"],
    )
    def test_bad_syntax_rejected(self, bad):
        with pytest.raises(FilterError):
            MessageSelector(bad)
