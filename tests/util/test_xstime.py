"""Tests for the XML Schema duration/dateTime lexical forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.xstime import (
    format_datetime,
    format_duration,
    parse_datetime,
    parse_duration,
    parse_expires,
)


class TestDuration:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("PT0S", 0.0),
            ("PT1S", 1.0),
            ("PT5M", 300.0),
            ("PT2H", 7200.0),
            ("P1D", 86400.0),
            ("P1DT2H3M4S", 86400.0 + 7200 + 180 + 4),
            ("PT1.5S", 1.5),
            ("P1Y", 365 * 86400.0),
            ("P2M", 60 * 86400.0),
            ("-PT30S", -30.0),
        ],
    )
    def test_parse(self, text, seconds):
        assert parse_duration(text) == seconds

    @pytest.mark.parametrize("bad", ["", "P", "PT", "-P", "1H", "PT1H2", "P1S", "QT1S"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    @pytest.mark.parametrize("seconds", [0.0, 1.0, 59.0, 61.0, 3600.0, 90061.0, 0.25])
    def test_format_parse_roundtrip(self, seconds):
        assert parse_duration(format_duration(seconds)) == pytest.approx(seconds)

    def test_format_negative(self):
        assert format_duration(-90).startswith("-P")

    @given(st.integers(0, 10**7))
    @settings(max_examples=200)
    def test_roundtrip_property_integers(self, seconds):
        assert parse_duration(format_duration(float(seconds))) == float(seconds)


class TestDateTime:
    def test_epoch(self):
        assert parse_datetime("2006-01-01T00:00:00Z") == 0.0

    def test_one_minute_in(self):
        assert parse_datetime("2006-01-01T00:01:00Z") == 60.0

    def test_timezone_offset(self):
        assert parse_datetime("2006-01-01T01:00:00+01:00") == 0.0

    def test_naive_assumed_utc(self):
        assert parse_datetime("2006-01-01T00:00:30") == 30.0

    def test_format(self):
        assert format_datetime(0.0) == "2006-01-01T00:00:00Z"
        assert format_datetime(90.0) == "2006-01-01T00:01:30Z"

    def test_format_fractional(self):
        assert format_datetime(0.5).startswith("2006-01-01T00:00:00.5")

    def test_reject_garbage(self):
        with pytest.raises(ValueError):
            parse_datetime("yesterday")

    @given(st.integers(0, 10**9))
    @settings(max_examples=200)
    def test_roundtrip_property(self, seconds):
        assert parse_datetime(format_datetime(float(seconds))) == float(seconds)


class TestParseExpires:
    def test_duration_is_relative_to_now(self):
        assert parse_expires("PT60S", now=100.0) == 160.0

    def test_datetime_is_absolute(self):
        assert parse_expires("2006-01-01T00:02:00Z", now=100.0) == 120.0

    def test_empty_means_no_expiry(self):
        assert parse_expires("   ", now=0.0) is None

    @pytest.mark.parametrize("bad", ["-PT10S", "PT0S", "-P1D", "P0D"])
    def test_non_positive_duration_raises(self, bad):
        # both spec families fault on a lease that would be born expired
        with pytest.raises(ValueError, match="non-positive"):
            parse_expires(bad, now=100.0)

    def test_past_datetime_is_returned_for_endpoint_policy(self):
        # absolute times in the past parse fine: the endpoint decides the
        # fault (the "past" check needs the granting clock, not the parser)
        assert parse_expires("2006-01-01T00:00:10Z", now=100.0) == 10.0

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_expires("P!", now=0.0)


class TestDurationCanonicalization:
    def test_year_month_canonicalize_to_days(self):
        # documented in format_duration: P1Y2M3DT4H5M6S -> P428DT4H5M6S
        seconds = parse_duration("P1Y2M3DT4H5M6S")
        assert seconds == 36_993_906.0
        assert format_duration(seconds) == "P428DT4H5M6S"

    @pytest.mark.parametrize(
        "text,canonical",
        [
            ("PT90S", "PT1M30S"),
            ("PT3600S", "PT1H"),
            ("P1M", "P30D"),
            ("P1Y", "P365D"),
            ("PT0.250S", "PT0.25S"),
            ("P0DT0H0M0S", "PT0S"),
        ],
    )
    def test_format_of_parse_is_canonical(self, text, canonical):
        assert format_duration(parse_duration(text)) == canonical

    @pytest.mark.parametrize(
        "text", ["PT1M30S", "PT1H", "P30D", "P428DT4H5M6S", "PT0S", "PT0.25S"]
    )
    def test_canonical_forms_are_fixpoints(self, text):
        assert format_duration(parse_duration(text)) == text
