"""Property-based robustness: the broker front door never crashes the
transport — every input either succeeds or produces a well-formed SOAP
fault."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messenger import WsMessenger
from repro.soap import SoapEnvelope, SoapVersion, parse_envelope, serialize_envelope
from repro.transport import SimulatedNetwork, VirtualClock
from repro.transport.http import build_request, parse_response
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wsa.versions import WsaVersion
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit.element import XElem, text_element
from repro.xmlkit.names import QName

_network = SimulatedNetwork(VirtualClock())
_broker = WsMessenger(_network, "http://fuzz-broker")

_namespaces = st.sampled_from(
    [v.namespace for v in WseVersion]
    + [v.namespace for v in WsnVersion]
    + ["urn:garbage", ""]
)
_locals = st.sampled_from(
    ["Subscribe", "Notify", "Renew", "GetCurrentMessage", "Zorble", "Unsubscribe"]
)
_actions = st.sampled_from(
    [v.action("Subscribe") for v in WseVersion]
    + [v.action("Notify") for v in WsnVersion]
    + ["urn:whatever", ""]
)


@st.composite
def random_requests(draw):
    envelope = SoapEnvelope(SoapVersion.V11)
    action = draw(_actions)
    if draw(st.booleans()):
        apply_headers(
            envelope,
            MessageHeaders(to="http://fuzz-broker", action=action),
            draw(st.sampled_from(list(WsaVersion))),
        )
    if draw(st.booleans()):
        body = XElem(QName(draw(_namespaces), draw(_locals)))
        if draw(st.booleans()):
            body.append(text_element(QName("", "child"), draw(st.text(max_size=10))))
        envelope.add_body(body)
    return build_request(
        "http://fuzz-broker",
        serialize_envelope(envelope).encode("utf-8"),
        soap_action=action,
    )


class TestFrontDoorTotality:
    @given(random_requests())
    @settings(max_examples=200, deadline=None)
    def test_every_request_gets_an_http_answer(self, wire):
        raw = _network.send_request("http://fuzz-broker", wire)
        response = parse_response(raw)
        assert response.status in (200, 202, 400, 500)
        if response.status in (400, 500):
            fault_envelope = parse_envelope(response.body)
            assert fault_envelope.is_fault()  # structured rejection, not a crash

    @given(st.binary(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_raw_bytes_never_crash(self, junk):
        wire = build_request("http://fuzz-broker", junk)
        response = parse_response(_network.send_request("http://fuzz-broker", wire))
        assert response.status in (200, 202, 400, 500)


class TestCoverageGaps:
    def test_attribute_wildcard_xpath(self):
        from repro.xmlkit import XPath, parse_xml

        doc = parse_xml('<a x="1" y="2"><b z="3"/></a>')
        assert XPath("count(/*/@*)").evaluate(doc) == 2.0
        assert XPath("count(//@*)").evaluate(doc) == 3.0

    def test_raw_mode_through_broker_wsn(self):
        from repro.wsn import NotificationConsumer, WsnSubscriber
        from repro.xmlkit import parse_xml

        network = SimulatedNetwork(VirtualClock())
        broker = WsMessenger(network, "http://raw-broker")
        consumer = NotificationConsumer(network, "http://raw-consumer")
        WsnSubscriber(network).subscribe(
            broker.epr(), consumer.epr(), topic="t", use_raw=True
        )
        broker.publish(parse_xml('<e xmlns="urn:x">payload</e>'), topic="t")
        assert len(consumer.received) == 1
        assert not consumer.received[0].wrapped
