"""End-to-end tests for the WS-Messenger broker: detection, mediation,
cross-spec delivery and backbone adapters."""

import pytest

from repro.messenger import (
    CorbaBackbone,
    InMemoryBackbone,
    JmsBackbone,
    SpecFamily,
    WsMessenger,
    detect_spec,
)
from repro.messenger.detection import SpecDetectionError
from repro.messenger.mediation import WSE_TOPIC_HEADER
from repro.soap import SoapEnvelope, SoapFault, SoapVersion, parse_envelope, serialize_envelope
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse import EventSink, EventSource, WseSubscriber, WseVersion
from repro.wse import messages as wse_messages
from repro.wsn import (
    NotificationConsumer,
    NotificationProducer,
    PullPointClient,
    WsnSubscriber,
    WsnVersion,
)
from repro.wsn import messages as wsn_messages
from repro.wsa import EndpointReference
from repro.xmlkit import parse_xml

NS = {"ev": "urn:grid:events"}


def event(progress=50):
    return parse_xml(
        f'<ev:Status xmlns:ev="urn:grid:events"><ev:progress>{progress}</ev:progress></ev:Status>'
    )


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def broker(network):
    return WsMessenger(network, "http://broker")


class TestSpecDetection:
    def _subscribe_envelope(self, body, wsa_version, action):
        envelope = SoapEnvelope(SoapVersion.V11)
        headers = MessageHeaders(to="http://broker", action=action)
        apply_headers(envelope, headers, wsa_version)
        envelope.add_body(body)
        return parse_envelope(serialize_envelope(envelope))  # wire round-trip

    @pytest.mark.parametrize("version", list(WseVersion), ids=lambda v: v.name)
    def test_detects_wse_versions(self, version):
        body = wse_messages.build_subscribe(
            version, notify_to=EndpointReference("http://sink")
        )
        envelope = self._subscribe_envelope(
            body, version.wsa_version, version.action("Subscribe")
        )
        spec = detect_spec(envelope)
        assert spec.family is SpecFamily.WS_EVENTING
        assert spec.version is version
        assert spec.operation == "Subscribe"
        assert not spec.wsa_mismatch

    @pytest.mark.parametrize("version", list(WsnVersion), ids=lambda v: v.name)
    def test_detects_wsn_versions(self, version):
        body = wsn_messages.build_subscribe(
            version,
            consumer=EndpointReference("http://consumer"),
        )
        envelope = self._subscribe_envelope(
            body, version.wsa_version, version.action("Subscribe")
        )
        spec = detect_spec(envelope)
        assert spec.family is SpecFamily.WS_NOTIFICATION
        assert spec.version is version

    def test_wsa_mismatch_flagged(self):
        from repro.wsa.versions import WsaVersion

        body = wse_messages.build_subscribe(
            WseVersion.V2004_08, notify_to=EndpointReference("http://sink")
        )
        envelope = self._subscribe_envelope(
            body, WsaVersion.V2003_03, WseVersion.V2004_08.action("Subscribe")
        )
        assert detect_spec(envelope).wsa_mismatch

    def test_unknown_spec_rejected(self):
        envelope = SoapEnvelope()
        envelope.add_body(event())
        with pytest.raises(SpecDetectionError):
            detect_spec(envelope)

    def test_empty_body_rejected(self):
        with pytest.raises(SpecDetectionError):
            detect_spec(SoapEnvelope())


class TestSingleSpecThroughBroker:
    def test_wse_subscriber_at_broker_front_door(self, network, broker):
        sink = EventSink(network, "http://sink")
        subscriber = WseSubscriber(network)
        subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event())
        assert len(sink.received) == 1
        assert broker.stats.detected == {"WS-Eventing/V2004_08": 1}

    def test_wsn_subscriber_at_broker_front_door(self, network, broker):
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        subscriber.subscribe(broker.epr(), consumer.epr(), topic="jobs")
        broker.publish(event(), topic="jobs")
        assert len(consumer.received) == 1

    def test_response_follows_request_spec(self, network, broker):
        """A WSE 01/2004 client gets an 01/2004-shaped reply (bare wse:Id)."""
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        # 01/2004: the source IS the manager, so the handle points at the
        # front door, which mediates Renew/Unsubscribe for this version too
        assert handle.manager.address == broker.address
        assert not handle.manager.reference_parameters  # 01/2004 style
        subscriber.renew(handle, "PT1H")
        subscriber.unsubscribe(handle)
        broker.publish(event())
        assert sink.received == []

    def test_management_ops_work_through_minted_manager(self, network, broker):
        sink = EventSink(network, "http://sink")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        subscriber.renew(handle, "PT2H")
        assert subscriber.get_status(handle)
        subscriber.unsubscribe(handle)
        broker.publish(event())
        assert sink.received == []

    def test_unsupported_operation_faults(self, network, broker):
        from repro.transport.endpoint import SoapClient

        client = SoapClient(network)
        body = wse_messages.build_renew(WseVersion.V2004_08, "PT1H")
        with pytest.raises(SoapFault):
            client.call(broker.epr(), WseVersion.V2004_08.action("Renew"), [body])


class TestCrossSpecMediation:
    def test_wsn_publisher_to_wse_consumer(self, network, broker):
        """The headline mediation: publish with wsnt:Notify, consume via WSE."""
        sink = EventSink(network, "http://sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        # external publisher pushes a wrapped WSN Notify at the broker
        from repro.soap.envelope import SoapVersion
        from repro.transport.endpoint import SoapClient
        from repro.wsn.messages import NotificationMessage

        version = WsnVersion.V1_3
        notify = wsn_messages.build_notify(
            version, [NotificationMessage(event(77), topic="jobs/status")]
        )
        client = SoapClient(network, wsa_version=version.wsa_version)
        client.call(broker.epr(), version.action("Notify"), [notify], expect_reply=False)
        assert len(sink.received) == 1
        # the WSE sink got the *raw* payload (category 5: structures differ)
        assert sink.received[0].payload.name.local == "Status"
        assert "77" in sink.received[0].payload.full_text()

    def test_wse_source_to_wsn_consumer(self, network, broker):
        """Reverse direction: bridge an external WSE source into the broker;
        WSN consumers receive wrapped Notify messages."""
        external = EventSource(network, "http://external-source")
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr())
        broker.bridge_from_wse_source(external.epr())
        external.publish(event(88))
        assert len(consumer.received) == 1
        assert consumer.received[0].wrapped  # WSN consumer sees Notify
        assert "88" in consumer.received[0].payload.full_text()

    def test_wsn_producer_bridged_to_both_families(self, network, broker):
        external = NotificationProducer(network, "http://external-producer")
        wse_sink = EventSink(network, "http://wse-sink")
        wsn_consumer = NotificationConsumer(network, "http://wsn-consumer")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=wse_sink.epr())
        WsnSubscriber(network).subscribe(broker.epr(), wsn_consumer.epr(), topic="jobs")
        broker.bridge_from_wsn_producer(external.epr(), topic="jobs")
        external.publish(event(5), topic="jobs")
        assert len(wse_sink.received) == 1
        assert len(wsn_consumer.received) == 1
        assert wsn_consumer.received[0].topic == "jobs"

    def test_topic_rides_as_header_for_wse_sinks(self, network, broker):
        """Category 6: the topic moves from the WSN body to a SOAP header."""
        captured = []

        from repro.transport.endpoint import SoapEndpoint

        endpoint = SoapEndpoint(network, "http://raw-sink")
        endpoint.on_any(
            lambda envelope, headers: captured.append(
                envelope.header_text(WSE_TOPIC_HEADER)
            )
        )
        WseSubscriber(network).subscribe(
            broker.epr(), notify_to=EndpointReference("http://raw-sink")
        )
        broker.publish(event(), topic="jobs/status")
        assert captured == ["jobs/status"]

    def test_same_event_all_five_versions(self, network, broker):
        """One publication reaches subscribers of every spec version."""
        sinks = {}
        for version in WseVersion:
            sink = EventSink(network, f"http://sink-{version.name}", version=version)
            WseSubscriber(network, version=version).subscribe(
                broker.epr(), notify_to=sink.epr()
            )
            sinks[version.name] = sink
        consumers = {}
        for version in WsnVersion:
            consumer = NotificationConsumer(
                network, f"http://consumer-{version.name}", version=version
            )
            WsnSubscriber(network, version=version).subscribe(
                broker.epr(), consumer.epr(), topic="jobs"
            )
            consumers[version.name] = consumer
        broker.publish(event(), topic="jobs")
        for name, sink in sinks.items():
            assert len(sink.received) == 1, f"WSE {name} missed the event"
        for name, consumer in consumers.items():
            assert len(consumer.received) == 1, f"WSN {name} missed the event"
        assert broker.subscription_count() == 5

    def test_pull_point_via_broker(self, network, broker):
        client = PullPointClient(network)
        subscriber = WsnSubscriber(network)
        factory_epr = EndpointReference(broker.address + "/pullpoints")
        pull_point = client.create(factory_epr)
        subscriber.subscribe(broker.epr(), pull_point, topic="jobs")
        broker.publish(event(), topic="jobs")
        assert len(client.get_messages(pull_point)) == 1


class TestBackbones:
    def _roundtrip(self, network, backbone):
        broker = WsMessenger(network, "http://broker-bb", backbone=backbone)
        sink = EventSink(network, "http://sink-bb")
        consumer = NotificationConsumer(network, "http://consumer-bb")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs")
        broker.publish(event(31), topic="jobs")
        assert len(sink.received) == 1
        assert len(consumer.received) == 1
        assert consumer.received[0].topic == "jobs"

    def test_in_memory(self, network):
        self._roundtrip(network, InMemoryBackbone())

    def test_jms_backbone(self, network):
        from repro.baselines.jms import JmsProvider

        backbone = JmsBackbone(JmsProvider(network.clock))
        self._roundtrip(network, backbone)
        assert backbone.messages_carried == 1  # really went through JMS

    def test_corba_backbone(self, network):
        backbone = CorbaBackbone()
        self._roundtrip(network, backbone)
        assert backbone.messages_carried == 1  # really went through the ORB

    def test_backbone_describe(self):
        assert InMemoryBackbone().describe() == "in-memory"
        assert "corba" in CorbaBackbone().describe()


class TestBrokerStats:
    def test_detection_counters(self, network, broker):
        sink = EventSink(network, "http://sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="t")
        assert broker.stats.detected["WS-Eventing/V2004_08"] == 1
        assert broker.stats.detected["WS-Notification/V1_3"] == 1

    def test_detection_failure_counted(self, network, broker):
        from repro.transport.endpoint import SoapClient

        client = SoapClient(network)
        with pytest.raises(SoapFault):
            client.call(broker.epr(), "urn:mystery:Op", [event()])
        assert broker.stats.detection_failures == 1

    def test_publication_counter(self, network, broker):
        broker.publish(event(), topic="jobs")
        broker.publish(event())
        assert broker.stats.publications == 2
