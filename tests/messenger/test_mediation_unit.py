"""Unit tests for the mediation translations and format-difference analyzer."""

import pytest

from repro.messenger import mediation
from repro.messenger.mediation import (
    MediatedNotification,
    WSE_TOPIC_HEADER,
    compare_message_pair,
    neutral_from_wse_envelope,
    neutral_from_wsn_notify,
    wse_notification_parts,
    wsn_notify_from_neutral,
)
from repro.soap import SoapEnvelope, SoapVersion
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse.versions import WseVersion
from repro.wsn import messages as wsn_messages
from repro.wsn.messages import NotificationMessage
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element

WSE = WseVersion.V2004_08
WSN = WsnVersion.V1_3


def payload(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:mu"><e:n>{n}</e:n></e:V>')


class TestNeutralConversions:
    def test_wsn_notify_to_neutral(self):
        notify = wsn_messages.build_notify(
            WSN,
            [
                NotificationMessage(payload(1), topic="a/b"),
                NotificationMessage(payload(2)),
            ],
        )
        items = neutral_from_wsn_notify(notify, WSN)
        assert [item.topic for item in items] == ["a/b", None]
        assert items[0].payload == payload(1)

    def test_neutral_to_wse_parts(self):
        item = MediatedNotification(payload(), topic="a/b")
        body, headers = wse_notification_parts(item, WSE)
        assert body == payload()
        assert headers[0].name == WSE_TOPIC_HEADER
        assert headers[0].full_text() == "a/b"

    def test_neutral_to_wse_without_topic(self):
        body, headers = wse_notification_parts(MediatedNotification(payload()), WSE)
        assert headers == []

    def test_wse_envelope_to_neutral(self):
        envelope = SoapEnvelope(SoapVersion.V11)
        envelope.add_header(text_element(WSE_TOPIC_HEADER, "x/y"))
        envelope.add_body(payload())
        item = neutral_from_wse_envelope(envelope)
        assert item.topic == "x/y"
        assert item.payload == payload()

    def test_neutral_to_wsn_notify(self):
        items = [MediatedNotification(payload(i), topic="t") for i in range(2)]
        notify = wsn_notify_from_neutral(items, WSN)
        parsed = wsn_messages.parse_notify(notify, WSN)
        assert len(parsed) == 2
        assert all(item.topic == "t" for item in parsed)

    def test_full_wsn_to_wse_to_wsn_roundtrip(self):
        """Topic and payload survive a full mediation cycle unchanged."""
        original = wsn_messages.build_notify(
            WSN, [NotificationMessage(payload(7), topic="jobs/x")]
        )
        neutral = neutral_from_wsn_notify(original, WSN)
        body, headers = wse_notification_parts(neutral[0], WSE)
        envelope = SoapEnvelope()
        for header in headers:
            envelope.add_header(header)
        envelope.add_body(body)
        back = neutral_from_wse_envelope(envelope)
        again = wsn_notify_from_neutral([back], WSN)
        reparsed = wsn_messages.parse_notify(again, WSN)
        assert reparsed[0].topic == "jobs/x"
        assert reparsed[0].payload == payload(7)


def _envelope(body, wsa_version, action, headers=()):
    envelope = SoapEnvelope(SoapVersion.V11)
    apply_headers(envelope, MessageHeaders(to="http://x", action=action), wsa_version)
    for header in headers:
        envelope.add_header(header)
    envelope.add_body(body)
    return envelope


class TestFormatDifferenceAnalyzer:
    def test_identical_messages_no_differences(self):
        left = _envelope(payload(), WSE.wsa_version, "urn:same")
        right = _envelope(payload(), WSE.wsa_version, "urn:same")
        report = compare_message_pair(left, right)
        assert report.categories_present() == []

    def test_namespace_difference_detected(self):
        left = _envelope(payload(), WSE.wsa_version, "urn:same")
        right = _envelope(
            parse_xml('<o:V xmlns:o="urn:other"/>'), WSE.wsa_version, "urn:same"
        )
        report = compare_message_pair(left, right)
        assert 2 in report.categories_present()

    def test_wsa_version_difference_detected(self):
        left = _envelope(payload(), WSE.wsa_version, "urn:same")
        right = _envelope(payload(), WSN.wsa_version, "urn:same")
        report = compare_message_pair(left, right)
        assert report.wsa_version_difference is not None

    def test_action_difference_detected(self):
        left = _envelope(payload(), WSE.wsa_version, "urn:a")
        right = _envelope(payload(), WSE.wsa_version, "urn:b")
        assert compare_message_pair(left, right).action_difference == "urn:a vs urn:b"

    def test_structure_difference_detected(self):
        wrapped = wsn_messages.build_notify(WSN, [NotificationMessage(payload())])
        left = _envelope(payload(), WSE.wsa_version, "urn:x")
        right = _envelope(wrapped, WSN.wsa_version, "urn:x")
        report = compare_message_pair(left, right)
        assert 5 in report.categories_present()

    def test_content_location_difference_detected(self):
        wrapped = wsn_messages.build_notify(
            WSN, [NotificationMessage(payload(), topic="t")]
        )
        left = _envelope(
            payload(),
            WSE.wsa_version,
            "urn:x",
            headers=[text_element(WSE_TOPIC_HEADER, "t")],
        )
        right = _envelope(wrapped, WSN.wsa_version, "urn:x")
        report = compare_message_pair(left, right)
        assert 6 in report.categories_present()
        assert "Topic" in report.content_location_difference
