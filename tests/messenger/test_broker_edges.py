"""Edge cases: endpoint robustness, detection fallbacks, restricted brokers,
WSRF-disabled producers."""

import pytest

from repro.messenger import WsMessenger, detect_spec
from repro.messenger.detection import SpecFamily
from repro.soap import SoapEnvelope, SoapFault, SoapVersion, parse_envelope, serialize_envelope
from repro.transport import SimulatedNetwork, VirtualClock
from repro.transport.http import build_request, parse_response
from repro.wsa.headers import MessageHeaders, apply_headers
from repro.wse import EventSink, WseSubscriber, WseVersion
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber, WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.element import text_element


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:be"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


class TestEndpointRobustness:
    def test_garbage_body_yields_400_fault(self, network):
        broker = WsMessenger(network, "http://broker")
        wire = build_request("http://broker", b"this is not xml", soap_action="urn:x")
        response = parse_response(network.send_request("http://broker", wire))
        assert response.status == 400
        envelope = parse_envelope(response.body)
        assert envelope.is_fault()

    def test_envelope_without_wsa_headers_still_detected(self, network):
        """Detection works from the body namespace even without addressing."""
        broker = WsMessenger(network, "http://broker")
        version = WsnVersion.V1_3
        from repro.wsn import messages as wsn_messages
        from repro.wsn.messages import NotificationMessage

        envelope = SoapEnvelope(SoapVersion.V11)
        envelope.add_body(
            wsn_messages.build_notify(version, [NotificationMessage(event())])
        )
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="t")
        wire = build_request(
            "http://broker",
            serialize_envelope(envelope).encode(),
            soap_action=version.action("Notify"),
        )
        network.send_request("http://broker", wire)
        # topicless publication matches the topicless 1.3 path only; the
        # subscription above is topic-filtered, so nothing is delivered —
        # but detection and acceptance must not fault
        assert broker.stats.detected.get("WS-Notification/V1_3") == 2  # Subscribe + Notify


class TestDetectionFallback:
    def test_raw_body_with_spec_header_detected(self):
        """A raw notification (foreign-namespace body) is attributed through
        its spec-versioned SOAP headers."""
        version = WseVersion.V2004_08
        envelope = SoapEnvelope(SoapVersion.V11)
        apply_headers(
            envelope,
            MessageHeaders(to="http://x", action="urn:any"),
            version.wsa_version,
        )
        envelope.add_header(text_element(version.qname("Identifier"), "sub-1"))
        envelope.add_body(event())
        spec = detect_spec(parse_envelope(serialize_envelope(envelope)))
        assert spec.family is SpecFamily.WS_EVENTING
        assert spec.version is version
        assert spec.operation == "V"  # the raw payload's local name


class TestRestrictedBroker:
    def test_disabled_version_faults(self, network):
        broker = WsMessenger(
            network,
            "http://broker",
            wse_versions=[WseVersion.V2004_08],
            wsn_versions=[WsnVersion.V1_3],
        )
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        assert "not enabled" in excinfo.value.reason

    def test_enabled_versions_still_work(self, network):
        broker = WsMessenger(
            network, "http://broker", wse_versions=[WseVersion.V2004_08], wsn_versions=[]
        )
        sink = EventSink(network, "http://sink")
        WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
        broker.publish(event())
        assert len(sink.received) == 1

    def test_no_wsn_13_no_pullpoints(self, network):
        broker = WsMessenger(network, "http://broker", wsn_versions=[WsnVersion.V1_0])
        assert broker.pullpoint_factory is None


class TestWsrfDisabledProducer:
    def test_13_without_wsrf_port(self, network):
        producer = NotificationProducer(
            network, "http://producer", version=WsnVersion.V1_3, enable_wsrf=False
        )
        consumer = NotificationConsumer(network, "http://consumer")
        subscriber = WsnSubscriber(network)
        handle = subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        # native 1.3 operations still work
        subscriber.renew(handle, "PT1H")
        # but the WSRF port is simply absent
        with pytest.raises(SoapFault):
            subscriber.get_status(handle)
        with pytest.raises(SoapFault):
            subscriber.destroy(handle)
        # and no TerminationNotification is emitted on expiry
        handle2 = subscriber.subscribe(
            producer.epr(), consumer.epr(), topic="t", initial_termination="PT5S"
        )
        network.clock.advance(10.0)
        producer.sweep()
        assert consumer.termination_notices == []
        del handle2

    def test_pre_13_cannot_disable_wsrf(self, network):
        """WSRF is mandatory below 1.3: asking to disable it is overridden."""
        producer = NotificationProducer(
            network, "http://producer10", version=WsnVersion.V1_0, enable_wsrf=False
        )
        assert producer.wsrf_enabled


class TestFixedTopicNamespace:
    def test_fixed_namespace_rejects_unknown_publication(self, network):
        from repro.filters.topics import TopicNamespace

        topics = TopicNamespace(fixed=True)
        topics.add("known/topic")
        producer = NotificationProducer(
            network, "http://producer", topic_namespace=topics
        )
        consumer = NotificationConsumer(network, "http://consumer")
        WsnSubscriber(network).subscribe(producer.epr(), consumer.epr(), topic="known/topic")
        assert producer.publish(event(), topic="known/topic") == 1
        with pytest.raises(SoapFault):
            producer.publish(event(), topic="surprise/topic")
