"""Broker crash recovery via the subscription journal."""

import pytest

from repro.messenger import SubscriptionJournal, WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber, WseVersion
from repro.wsn import NotificationConsumer, WsnSubscriber, WsnVersion
from repro.xmlkit import parse_xml


def event(n=1):
    return parse_xml(f'<e:V xmlns:e="urn:jr"><e:n>{n}</e:n></e:V>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


def _populate(network, broker):
    sink = EventSink(network, "http://jr-sink")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())
    consumer = NotificationConsumer(network, "http://jr-consumer")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jr")
    return sink, consumer


class TestJournal:
    def test_journal_records_subscribes_only(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        sink, consumer = _populate(network, broker)
        broker.publish(event(), topic="jr")  # publications are not journalled
        assert len(journal) == 2

    def test_failed_subscribe_not_journalled(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        from repro.soap import SoapFault

        subscriber = WseSubscriber(network)
        with pytest.raises(SoapFault):
            subscriber.subscribe(broker.epr())  # push without NotifyTo faults
        assert len(journal) == 0

    def test_crash_and_recover(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        sink, consumer = _populate(network, broker)
        broker.publish(event(1), topic="jr")
        # --- crash: the broker and all its internal endpoints vanish ---------
        broker.close()
        # --- recover: a fresh broker at the same address, replay the journal -
        recovered_broker = WsMessenger(network, "http://jr-broker")
        recovered = journal.replay(network, "http://jr-broker")
        assert recovered == 2
        assert recovered_broker.subscription_count() == 2
        recovered_broker.publish(event(2), topic="jr")
        # consumers kept receiving across the crash
        assert len(sink.received) == 2
        assert len(consumer.received) == 2

    def test_replay_skips_vanished_consumers(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        sink, consumer = _populate(network, broker)
        broker.close()
        sink.close()  # one consumer died along with the broker
        recovered_broker = WsMessenger(network, "http://jr-broker")
        # subscriptions are re-created regardless (consumer liveness is only
        # probed at delivery time, as with any live subscription)
        assert journal.replay(network, "http://jr-broker") == 2
        recovered_broker.publish(event(), topic="jr")
        assert len(consumer.received) == 1
        # the dead sink's subscription was reaped at first delivery failure
        assert recovered_broker.subscription_count() == 1

    def test_replay_preserves_ids_and_manager_eprs(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        sink = EventSink(network, "http://jr-sink")
        consumer = NotificationConsumer(network, "http://jr-consumer")
        wse_subscriber = WseSubscriber(network)
        wsn_subscriber = WsnSubscriber(network)
        wse_handle = wse_subscriber.subscribe(broker.epr(), notify_to=sink.epr())
        wsn_handle = wsn_subscriber.subscribe(broker.epr(), consumer.epr(), topic="jr")
        broker.close()
        recovered = WsMessenger(network, "http://jr-broker")
        # passing the broker pins each entry's granted id before the re-post
        assert journal.replay(network, "http://jr-broker", broker=recovered) == 2
        # the manager EPRs minted before the crash still address these
        # subscriptions: Renew and Unsubscribe work without re-subscribing
        wse_subscriber.renew(wse_handle, "PT2H")
        wsn_subscriber.renew(wsn_handle, "PT2H")
        wse_subscriber.unsubscribe(wse_handle)
        wsn_subscriber.unsubscribe(wsn_handle)
        assert recovered.subscription_count() == 0

    def test_replay_restores_granted_expiry(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        sink = EventSink(network, "http://jr-sink")
        subscriber = WseSubscriber(network)
        handle = subscriber.subscribe(broker.epr(), notify_to=sink.epr(), expires="PT1H")
        network.clock.advance(1200.0)
        broker.close()
        recovered = WsMessenger(network, "http://jr-broker")
        assert journal.replay(network, "http://jr-broker", broker=recovered) == 1
        # absolute expiry survives: the remaining lifetime shrank by the
        # 20 minutes that elapsed, instead of being re-granted in full
        source = recovered.wse_sources[WseVersion.V2004_08]
        [subscription] = source.store.live()
        assert subscription.expires == pytest.approx(3600.0, abs=1.0)

    def test_replay_against_unreachable_broker(self, network):
        journal = SubscriptionJournal()
        broker = WsMessenger(network, "http://jr-broker", journal=journal)
        _populate(network, broker)
        broker.close()
        assert journal.replay(network, "http://nowhere") == 0


class TestJournalWithReliableDelivery:
    def test_restart_replays_journal_and_dlq_exactly_once(self, network):
        from repro.delivery import DeliveryPolicy

        journal = SubscriptionJournal()
        policy = DeliveryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.0)
        broker = WsMessenger(
            network, "http://jr-broker", journal=journal, delivery=policy
        )
        sink, consumer = _populate(network, broker)
        # the WSN consumer goes dark: its copy exhausts the retry budget and
        # dead-letters (the subscription itself survives — the DLQ owns it)
        consumer.close()
        broker.publish(event(1), topic="jr")
        broker.run_deliveries_until_idle()
        assert len(sink.received) == 1
        assert len(broker.delivery_manager.dlq) == 1
        pending_dlq = broker.delivery_manager.dlq
        # --- crash ----------------------------------------------------------
        broker.close()
        # --- recover: fresh broker, re-created subscriptions, consumer back -
        recovered = WsMessenger(network, "http://jr-broker", delivery=policy)
        assert journal.replay(network, "http://jr-broker") == 2
        assert recovered.subscription_count() == 2
        revived = NotificationConsumer(network, "http://jr-consumer")
        # replay the carried-over dead letters through the new pipeline
        assert pending_dlq.replay(recovered.delivery_manager) == 1
        recovered.run_deliveries_until_idle()
        assert len(pending_dlq) == 0
        # the replayed message arrived exactly once
        assert len(revived.received) == 1
        # and live traffic flows exactly once to every consumer
        recovered.publish(event(2), topic="jr")
        recovered.run_deliveries_until_idle()
        assert len(revived.received) == 2
        assert len(sink.received) == 2
