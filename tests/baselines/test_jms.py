"""Tests for the JMS baseline: styles, message types, selectors, QoS."""

import pytest

from repro.baselines.jms import (
    BytesMessage,
    Connection,
    DeliveryMode,
    JmsError,
    JmsProvider,
    MapMessage,
    ObjectMessage,
    StreamMessage,
    TextMessage,
)
from repro.transport import VirtualClock


@pytest.fixture
def provider():
    return JmsProvider(VirtualClock())


@pytest.fixture
def connection(provider):
    conn = Connection(provider, "client-1")
    conn.start()
    return conn


@pytest.fixture
def session(connection):
    return connection.create_session()


class TestPointToPoint:
    def test_queue_delivers_once(self, provider, session):
        queue = provider.queue("jobs")
        session.create_producer(queue).send(TextMessage(text="work"))
        consumer_a = session.create_consumer(queue)
        consumer_b = session.create_consumer(queue)
        first = consumer_a.receive()
        assert first.text == "work"
        assert consumer_b.receive() is None  # point-to-point: one delivery

    def test_queue_holds_until_received(self, provider, session):
        queue = provider.queue("jobs")
        session.create_producer(queue).send(TextMessage(text="later"))
        assert queue.depth() == 1
        consumer = session.create_consumer(queue)
        assert consumer.receive().text == "later"
        assert queue.depth() == 0

    def test_priority_order(self, provider, session):
        queue = provider.queue("jobs")
        producer = session.create_producer(queue)
        producer.send(TextMessage(text="low"), priority=1)
        producer.send(TextMessage(text="high"), priority=9)
        producer.send(TextMessage(text="mid"), priority=5)
        consumer = session.create_consumer(queue)
        assert [consumer.receive().text for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_within_priority(self, provider, session):
        queue = provider.queue("jobs")
        producer = session.create_producer(queue)
        for name in ("a", "b", "c"):
            producer.send(TextMessage(text=name), priority=4)
        consumer = session.create_consumer(queue)
        assert [consumer.receive().text for _ in range(3)] == ["a", "b", "c"]

    def test_selector_on_queue(self, provider, session):
        queue = provider.queue("jobs")
        producer = session.create_producer(queue)
        urgent = TextMessage(text="urgent")
        urgent.set_property("severity", "high")
        boring = TextMessage(text="boring")
        boring.set_property("severity", "low")
        producer.send(boring)
        producer.send(urgent)
        picky = session.create_consumer(queue, "severity = 'high'")
        assert picky.receive().text == "urgent"
        assert picky.receive() is None  # low-severity message left behind
        assert queue.depth() == 1

    def test_invalid_priority(self, provider, session):
        queue = provider.queue("jobs")
        with pytest.raises(JmsError):
            session.create_producer(queue).send(TextMessage(), priority=11)


class TestPubSub:
    def test_topic_fanout(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        sub_a = session.create_consumer(topic)
        sub_b = session.create_consumer(topic)
        session.create_producer(topic).send(TextMessage(text="fire"))
        assert sub_a.receive().text == "fire"
        assert sub_b.receive().text == "fire"

    def test_non_durable_misses_while_away(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        producer = session.create_producer(topic)
        producer.send(TextMessage(text="before"))  # no subscriber yet
        subscriber = session.create_consumer(topic)
        producer.send(TextMessage(text="after"))
        assert subscriber.receive().text == "after"
        assert subscriber.receive() is None

    def test_durable_subscriber_backlog(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        durable = session.create_durable_subscriber(topic, "audit")
        durable.close()  # goes dormant
        session.create_producer(topic).send(TextMessage(text="while-away"))
        revived = session.create_durable_subscriber(topic, "audit")
        assert revived.receive().text == "while-away"

    def test_durable_selector(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        durable = session.create_durable_subscriber(topic, "audit", "kind = 'error'")
        durable.close()
        producer = session.create_producer(topic)
        error = TextMessage(text="bad")
        error.set_property("kind", "error")
        info = TextMessage(text="fine")
        info.set_property("kind", "info")
        producer.send(info)
        producer.send(error)
        revived = session.create_durable_subscriber(topic, "audit")
        assert revived.receive().text == "bad"
        assert revived.receive() is None

    def test_unsubscribe_durable(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        session.create_durable_subscriber(topic, "audit").close()
        session.unsubscribe(topic, "audit")
        with pytest.raises(JmsError):
            session.unsubscribe(topic, "audit")

    def test_topic_selector(self, provider, connection):
        topic = provider.topic("alerts")
        session = connection.create_session()
        picky = session.create_consumer(topic, "JMSPriority >= 7")
        producer = session.create_producer(topic)
        producer.send(TextMessage(text="meh"), priority=3)
        producer.send(TextMessage(text="wow"), priority=8)
        assert picky.receive().text == "wow"
        assert picky.receive() is None


class TestQos:
    def test_stopped_connection_receives_nothing(self, provider, connection):
        queue = provider.queue("jobs")
        session = connection.create_session()
        session.create_producer(queue).send(TextMessage(text="x"))
        connection.stop()
        consumer = session.create_consumer(queue)
        assert consumer.receive() is None
        connection.start()
        assert consumer.receive().text == "x"

    def test_ttl_expiry(self, provider, session):
        queue = provider.queue("jobs")
        session.create_producer(queue).send(TextMessage(text="fleeting"), time_to_live=10.0)
        provider.clock.advance(11.0)
        assert session.create_consumer(queue).receive() is None

    def test_transacted_send_commits(self, provider, connection):
        queue = provider.queue("jobs")
        tx = connection.create_session(transacted=True)
        tx.create_producer(queue).send(TextMessage(text="atomic"))
        assert queue.depth() == 0  # not visible before commit
        tx.commit()
        assert queue.depth() == 1

    def test_transacted_rollback_discards_sends(self, provider, connection):
        queue = provider.queue("jobs")
        tx = connection.create_session(transacted=True)
        tx.create_producer(queue).send(TextMessage(text="never"))
        tx.rollback()
        assert queue.depth() == 0

    def test_rollback_redelivers_receives(self, provider, connection):
        queue = provider.queue("jobs")
        plain = connection.create_session()
        plain.create_producer(queue).send(TextMessage(text="retry-me"))
        tx = connection.create_session(transacted=True)
        consumer = tx.create_consumer(queue)
        message = consumer.receive()
        assert message.text == "retry-me" and not message.redelivered
        tx.rollback()
        again = consumer.receive()
        assert again.text == "retry-me" and again.redelivered
        tx.commit()
        assert consumer.receive() is None

    def test_commit_on_untransacted_session(self, provider, session):
        with pytest.raises(JmsError):
            session.commit()

    def test_persistence_survives_crash(self, provider, session):
        queue = provider.queue("jobs")
        producer = session.create_producer(queue)
        producer.send(TextMessage(text="durable"), delivery_mode=DeliveryMode.PERSISTENT)
        producer.send(TextMessage(text="volatile"), delivery_mode=DeliveryMode.NON_PERSISTENT)
        provider.crash_and_recover()
        consumer = session.create_consumer(queue)
        assert consumer.receive().text == "durable"
        assert consumer.receive() is None

    def test_platform_gate(self, provider):
        """Table 3: JMS only works on Java platforms."""
        with pytest.raises(JmsError):
            Connection(provider, "c", platform="python")


class TestMessageTypes:
    def test_text_message(self):
        assert TextMessage(text="hello").text == "hello"

    def test_bytes_message(self):
        assert BytesMessage(data=b"\x00\x01").data == b"\x00\x01"
        with pytest.raises(JmsError):
            BytesMessage(data="not bytes")

    def test_map_message(self):
        message = MapMessage()
        message.set_value("count", 3)
        assert message.get_value("count") == 3
        with pytest.raises(JmsError):
            message.set_value("bad", object())

    def test_stream_message(self):
        message = StreamMessage()
        message.write(1)
        message.write("two")
        assert message.read() == 1
        assert message.read() == "two"
        with pytest.raises(JmsError):
            message.read()

    def test_object_message(self):
        message = ObjectMessage()
        message.set_object({"nested": [1, 2, 3]})
        assert message.get_object() == {"nested": [1, 2, 3]}

    def test_property_type_check(self):
        message = TextMessage()
        with pytest.raises(JmsError):
            message.set_property("bad", [1, 2])

    def test_selector_fields_include_headers(self):
        message = TextMessage(jms_type="status")
        message.set_property("custom", 7)
        fields = message.selector_fields()
        assert fields["JMSType"] == "status"
        assert fields["JMSPriority"] == 4
        assert fields["custom"] == 7
