"""Tests for the CORBA baseline: CDR, ORB, Event Service, Notification Service."""

import pytest

from repro.baselines.corba import (
    CdrDecoder,
    CdrEncoder,
    CdrError,
    CorbaError,
    EventChannel,
    NotificationChannel,
    Orb,
    StructuredEvent,
)
from repro.baselines.corba.cdr import decode_value, encode_value
from repro.baselines.corba.notification_service import FilterObject
from repro.qos.properties import DiscardPolicy, OrderPolicy, QosProfile


class TestCdr:
    def test_primitive_roundtrip(self):
        encoder = CdrEncoder()
        encoder.put_boolean(True).put_short(-5).put_ulong(7).put_double(2.5).put_string("hi")
        decoder = CdrDecoder(encoder.data())
        assert decoder.get_boolean() is True
        assert decoder.get_short() == -5
        assert decoder.get_ulong() == 7
        assert decoder.get_double() == 2.5
        assert decoder.get_string() == "hi"

    def test_alignment(self):
        encoder = CdrEncoder()
        encoder.put_octet(1).put_long(42)  # long must align to 4
        data = encoder.data()
        assert len(data) == 8  # 1 octet + 3 pad + 4
        decoder = CdrDecoder(data)
        assert decoder.get_octet() == 1
        assert decoder.get_long() == 42

    @pytest.mark.parametrize(
        "value",
        [None, True, 42, -1, 3.5, "text", ["a", 1, None], {"k": "v", "n": [1, 2]}, {}],
    )
    def test_any_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_unicode_string(self):
        assert decode_value(encode_value("grüße-グリッド")) == "grüße-グリッド"

    def test_truncated_buffer(self):
        with pytest.raises(CdrError):
            CdrDecoder(b"\x04").get_long()

    def test_long_out_of_range(self):
        with pytest.raises(CdrError):
            CdrEncoder().put_long(2**40)

    def test_unmarshallable_type(self):
        with pytest.raises(CdrError):
            encode_value(object())

    def test_non_string_struct_key(self):
        with pytest.raises(CdrError):
            encode_value({1: "x"})


class TestOrb:
    def test_invoke_roundtrip(self):
        orb = Orb()

        def servant(operation, args):
            assert operation == "add"
            return args[0] + args[1]

        ref = orb.register(servant)
        assert orb.invoke(ref, "add", [2, 3]) == 5

    def test_unknown_object(self):
        orb = Orb()
        ref = orb.register(lambda op, args: None)
        orb.unregister(ref)
        with pytest.raises(CorbaError):
            orb.invoke(ref, "ping", [])

    def test_foreign_reference_rejected(self):
        """CORBA interop is intranet-scale: references don't cross ORBs."""
        orb_a, orb_b = Orb("acme"), Orb("globex")
        ref = orb_b.register(lambda op, args: "hi")
        with pytest.raises(CorbaError) as excinfo:
            orb_a.invoke(ref, "ping", [])
        assert "intranet" in str(excinfo.value)

    def test_servant_exception_propagates(self):
        orb = Orb()

        def failing(operation, args):
            raise CorbaError("BAD_OPERATION")

        ref = orb.register(failing)
        with pytest.raises(CorbaError):
            orb.invoke(ref, "x", [])

    def test_frames_and_bytes_accounted(self):
        orb = Orb()
        ref = orb.register(lambda op, args: None)
        orb.invoke(ref, "ping", [])
        assert orb.frames_routed == 1
        assert orb.bytes_routed > 24  # two GIOP frames


class TestEventService:
    def _consumer(self, orb):
        received = []
        ref = orb.register(lambda op, args: received.append(args[0]))
        return received, ref

    def test_push_fanout_no_filtering(self):
        """Every consumer receives all events on the channel."""
        orb = Orb()
        channel = EventChannel(orb)
        received_a, ref_a = self._consumer(orb)
        received_b, ref_b = self._consumer(orb)
        channel.for_consumers().obtain_push_supplier().connect_push_consumer(ref_a)
        channel.for_consumers().obtain_push_supplier().connect_push_consumer(ref_b)
        supplier = channel.for_suppliers().obtain_push_consumer()
        supplier.push({"kind": "status", "value": 1})
        supplier.push("uninteresting")  # no way to filter it out
        assert len(received_a) == 2 and len(received_b) == 2

    def test_pull_model(self):
        orb = Orb()
        channel = EventChannel(orb)
        pull_supplier = channel.for_consumers().obtain_pull_supplier()
        channel.for_suppliers().obtain_push_consumer().push("e1")
        event, ok = pull_supplier.try_pull()
        assert ok and event == "e1"
        _, ok = pull_supplier.try_pull()
        assert not ok

    def test_channel_pulls_from_supplier(self):
        orb = Orb()
        channel = EventChannel(orb)
        queue = ["a", "b"]

        def supplier_servant(operation, args):
            assert operation == "try_pull"
            if queue:
                return [queue.pop(0), True]
            return [None, False]

        supplier_ref = orb.register(supplier_servant)
        proxy = channel.for_suppliers().obtain_pull_consumer()
        proxy.connect_pull_supplier(supplier_ref)
        received, consumer_ref = self._consumer(orb)
        channel.for_consumers().obtain_push_supplier().connect_push_consumer(consumer_ref)
        assert proxy.poll() == 2
        assert received == ["a", "b"]

    def test_dead_consumer_disconnected(self):
        orb = Orb()
        channel = EventChannel(orb)

        def dying(operation, args):
            raise CorbaError("COMM_FAILURE")

        proxy = channel.for_consumers().obtain_push_supplier()
        proxy.connect_push_consumer(orb.register(dying))
        channel.for_suppliers().obtain_push_consumer().push("x")
        assert not proxy.connected

    def test_double_connect_rejected(self):
        orb = Orb()
        channel = EventChannel(orb)
        proxy = channel.for_consumers().obtain_push_supplier()
        ref = orb.register(lambda op, args: None)
        proxy.connect_push_consumer(ref)
        with pytest.raises(CorbaError):
            proxy.connect_push_consumer(ref)


def _status_event(progress, severity="info", priority=0):
    return StructuredEvent(
        domain_name="grid",
        type_name="JobStatus",
        event_name="update",
        variable_header={"Priority": priority},
        filterable_data={"progress": progress, "severity": severity},
        payload={"detail": f"at {progress}%"},
    )


class TestNotificationService:
    def test_filtering_with_tcl(self):
        orb = Orb()
        channel = NotificationChannel(orb)
        received = []
        consumer_ref = orb.register(lambda op, args: received.append(args[0]))
        admin = channel.new_for_consumers()
        proxy = admin.obtain_structured_push_supplier()
        filter_object = FilterObject()
        filter_object.add_constraint("$progress > 50")
        proxy.add_filter(filter_object)
        proxy.connect_structured_push_consumer(consumer_ref)
        supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
        supplier.push_structured_event(_status_event(30))
        supplier.push_structured_event(_status_event(80))
        assert len(received) == 1
        assert received[0]["filterable_data"]["progress"] == 80

    def test_structured_event_wire_roundtrip(self):
        event = _status_event(50)
        again = StructuredEvent.from_wire(
            decode_value(encode_value(event.to_wire()))
        )
        assert again == event

    def test_admin_filters_apply_to_all_proxies(self):
        orb = Orb()
        channel = NotificationChannel(orb)
        admin = channel.new_for_consumers()
        filter_object = FilterObject()
        filter_object.add_constraint("$severity == 'fatal'")
        admin.add_filter(filter_object)
        pull = admin.obtain_structured_pull_supplier()
        supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
        supplier.push_structured_event(_status_event(10, "info"))
        supplier.push_structured_event(_status_event(20, "fatal"))
        assert pull.pending() == 1

    def test_filter_disjunction(self):
        filter_object = FilterObject()
        filter_object.add_constraint("$severity == 'fatal'")
        filter_object.add_constraint("$progress >= 99")
        assert filter_object.match_structured(_status_event(99, "info"))
        assert filter_object.match_structured(_status_event(1, "fatal"))
        assert not filter_object.match_structured(_status_event(1, "info"))

    def test_constraint_management(self):
        filter_object = FilterObject()
        cid = filter_object.add_constraint("$x == 1")
        assert cid in filter_object.get_constraints()
        filter_object.remove_constraint(cid)
        with pytest.raises(CorbaError):
            filter_object.remove_constraint(cid)

    def test_invalid_constraint(self):
        with pytest.raises(CorbaError):
            FilterObject().add_constraint("((")

    def test_priority_order_pull(self):
        orb = Orb()
        channel = NotificationChannel(orb)
        pull = channel.new_for_consumers().obtain_structured_pull_supplier(
            QosProfile({"OrderPolicy": OrderPolicy.PRIORITY_ORDER})
        )
        supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
        supplier.push_structured_event(_status_event(1, priority=1))
        supplier.push_structured_event(_status_event(2, priority=9))
        event, _ = pull.try_pull_structured_event()
        assert event.priority == 9

    def test_bounded_queue_discard_policy(self):
        orb = Orb()
        channel = NotificationChannel(orb)
        pull = channel.new_for_consumers().obtain_structured_pull_supplier(
            QosProfile(
                {"MaxEventsPerConsumer": 2, "DiscardPolicy": DiscardPolicy.FIFO_ORDER}
            )
        )
        supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
        for i in range(4):
            supplier.push_structured_event(_status_event(i))
        assert pull.pending() == 2
        assert pull.discarded == 2
        event, _ = pull.try_pull_structured_event()
        assert event.filterable_data["progress"] == 2  # oldest two discarded

    def test_batched_push(self):
        orb = Orb()
        channel = NotificationChannel(orb)
        batches = []
        consumer_ref = orb.register(lambda op, args: batches.append((op, args[0])))
        proxy = channel.new_for_consumers().obtain_structured_push_supplier(
            QosProfile({"MaximumBatchSize": 3})
        )
        proxy.connect_structured_push_consumer(consumer_ref)
        supplier = channel.new_for_suppliers().obtain_structured_push_consumer()
        for i in range(3):
            supplier.push_structured_event(_status_event(i))
        assert len(batches) == 1
        operation, batch = batches[0]
        assert operation == "push_structured_events"
        assert len(batch) == 3

    def test_qos_validation(self):
        from repro.qos.properties import QosError

        channel = NotificationChannel(Orb())
        with pytest.raises(QosError):
            channel.validate_qos({"Priority": "very high"})
        with pytest.raises(QosError):
            channel.validate_qos({"NotAProperty": 1})
        channel.validate_qos({"Priority": 5})  # fine
