"""Tests for the OGSI notification baseline and the QoS property models."""

import pytest

from repro.baselines.ogsi import GridService, NotificationSink, NotificationSource, OgsiError
from repro.qos import CORBA_QOS_PROPERTIES, JMS_QOS_CRITERIA, QosError, QosProfile
from repro.transport import SimulatedNetwork, VirtualClock
from repro.util.xstime import format_datetime
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

SDE_VALUE = QName("urn:grid", "jobStatus")


def value(text):
    return text_element(SDE_VALUE, text)


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def source(network):
    src = NotificationSource(network, "http://grid-service")
    src.declare_service_data("jobStatus", value("PENDING"))
    return src


class TestServiceData:
    def test_declare_and_set(self, source):
        source.set_service_data("jobStatus", value("RUNNING"))
        assert source.service_data["jobStatus"].value.text() == "RUNNING"

    def test_unknown_sde_rejected(self, source):
        with pytest.raises(OgsiError):
            source.set_service_data("nope", value("x"))

    def test_immutable_sde(self, network):
        service = GridService(network, "http://gs")
        service.declare_service_data("fixed", value("const"), mutability="constant")
        with pytest.raises(OgsiError):
            service.set_service_data("fixed", value("changed"))


class TestOgsiNotification:
    def test_change_pushes_to_sink(self, network, source):
        sink = NotificationSink(network, "http://sink")
        source.subscribe("jobStatus", sink.epr())
        assert source.set_service_data("jobStatus", value("RUNNING")) == 1
        name, payload = sink.received[0]
        assert name == "jobStatus"
        assert payload.text() == "RUNNING"

    def test_filter_is_service_data_name(self, network, source):
        source.declare_service_data("nodeCount", value("4"))
        sink = NotificationSink(network, "http://sink")
        source.subscribe("jobStatus", sink.epr())
        assert source.set_service_data("nodeCount", value("8")) == 0
        assert sink.received == []

    def test_soft_state_expiry(self, network, source):
        sink = NotificationSink(network, "http://sink")
        source.subscribe("jobStatus", sink.epr(), termination_time=60.0)
        network.clock.advance(120.0)
        assert source.set_service_data("jobStatus", value("DONE")) == 0

    def test_dead_sink_dropped(self, network, source):
        sink = NotificationSink(network, "http://sink")
        source.subscribe("jobStatus", sink.epr())
        sink.close()
        source.set_service_data("jobStatus", value("RUNNING"))
        assert source.live_subscriptions() == []

    def test_unsubscribe(self, network, source):
        sink = NotificationSink(network, "http://sink")
        subscription = source.subscribe("jobStatus", sink.epr())
        source.unsubscribe(subscription.key)
        assert source.set_service_data("jobStatus", value("X")) == 0
        with pytest.raises(OgsiError):
            source.unsubscribe(subscription.key)

    def test_multiple_sinks(self, network, source):
        sinks = [NotificationSink(network, f"http://sink{i}") for i in range(3)]
        for sink in sinks:
            source.subscribe("jobStatus", sink.epr())
        assert source.set_service_data("jobStatus", value("GO")) == 3


class TestGridServiceLifetime:
    def test_request_termination_after_extends(self, network):
        service = GridService(network, "http://gs")
        from repro.soap.envelope import SoapVersion
        from repro.transport.endpoint import SoapClient
        from repro.wsa.versions import WsaVersion
        from repro.baselines.ogsi.grid_service import _action, _q

        client = SoapClient(network, wsa_version=WsaVersion.V2003_03)
        client.call(
            service.epr(),
            _action("requestTerminationAfter"),
            [text_element(_q("after"), format_datetime(300.0))],
        )
        assert service.termination_time == 300.0
        # an earlier 'after' request does not shrink the lifetime
        client.call(
            service.epr(),
            _action("requestTerminationAfter"),
            [text_element(_q("after"), format_datetime(100.0))],
        )
        assert service.termination_time == 300.0

    def test_request_termination_before_shrinks(self, network):
        from repro.transport.endpoint import SoapClient
        from repro.wsa.versions import WsaVersion
        from repro.baselines.ogsi.grid_service import _action, _q

        service = GridService(network, "http://gs")
        service.termination_time = 300.0
        client = SoapClient(network, wsa_version=WsaVersion.V2003_03)
        client.call(
            service.epr(),
            _action("requestTerminationBefore"),
            [text_element(_q("before"), format_datetime(100.0))],
        )
        assert service.termination_time == 100.0

    def test_destroy(self, network):
        from repro.transport import AddressUnreachable
        from repro.transport.endpoint import SoapClient
        from repro.wsa.versions import WsaVersion
        from repro.baselines.ogsi.grid_service import _action, _q

        service = GridService(network, "http://gs")
        client = SoapClient(network, wsa_version=WsaVersion.V2003_03)
        client.call(service.epr(), _action("destroy"), [text_element(_q("destroy"), "")])
        assert service.destroyed
        with pytest.raises(AddressUnreachable):
            client.call(service.epr(), _action("destroy"), [text_element(_q("destroy"), "")])


class TestQosModels:
    def test_thirteen_corba_properties(self):
        assert len(CORBA_QOS_PROPERTIES) == 13

    def test_jms_criteria(self):
        assert set(JMS_QOS_CRITERIA) == {
            "Priority",
            "Persistence",
            "Durability",
            "Transaction",
            "MessageOrder",
        }

    def test_defaults(self):
        profile = QosProfile()
        assert profile.get("Priority") == 0
        assert profile.get("EventReliability") == "BestEffort"

    def test_unknown_property_rejected(self):
        with pytest.raises(QosError):
            QosProfile({"Shininess": 11})

    def test_extensions_allowed_when_opted_in(self):
        profile = QosProfile({"Shininess": 11}, allow_extensions=True)
        assert profile.get("Shininess") == 11

    def test_value_validation(self):
        with pytest.raises(QosError):
            QosProfile({"Priority": "high"})
        with pytest.raises(QosError):
            QosProfile({"MaximumBatchSize": 0})
        with pytest.raises(QosError):
            QosProfile({"EventReliability": "Sorta"})

    def test_merged_with(self):
        base = QosProfile({"Priority": 1})
        merged = base.merged_with({"Priority": 5})
        assert merged.get("Priority") == 5
        assert base.get("Priority") == 1
