"""Unit tests for the WS-Eventing subscription store and model."""

import pytest

from repro.filters.base import AcceptAllFilter, FilterContext
from repro.transport import VirtualClock
from repro.wsa import EndpointReference
from repro.wse.model import DeliveryMode, SubscriptionStore, WseSubscription
from repro.wse.versions import WseVersion
from repro.xmlkit import parse_xml


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def store(clock):
    return SubscriptionStore(clock)


def make(store, expires=None):
    return store.create(
        version=WseVersion.V2004_08,
        notify_to=EndpointReference("http://sink"),
        mode=DeliveryMode.PUSH,
        filter=AcceptAllFilter(),
        expires=expires,
    )


class TestDeliveryModeUris:
    def test_uri_shape(self):
        uri = DeliveryMode.PULL.uri(WseVersion.V2004_08)
        assert uri.endswith("/DeliveryModes/Pull")
        assert WseVersion.V2004_08.namespace in uri

    def test_from_uri_roundtrip(self):
        for mode in DeliveryMode:
            for version in WseVersion:
                assert DeliveryMode.from_uri(mode.uri(version), version) is mode

    def test_from_uri_rejects_cross_version(self):
        pull_01 = DeliveryMode.PULL.uri(WseVersion.V2004_01)
        with pytest.raises(ValueError):
            DeliveryMode.from_uri(pull_01, WseVersion.V2004_08)


class TestStore:
    def test_ids_unique_and_prefixed(self, store):
        first, second = make(store), make(store)
        assert first.id != second.id
        assert first.id.startswith("wse-sub-")

    def test_get_live(self, store):
        subscription = make(store)
        assert store.get(subscription.id) is subscription

    def test_get_unknown_none(self, store):
        assert store.get("nope") is None

    def test_get_expired_none(self, store, clock):
        subscription = make(store, expires=10.0)
        clock.advance(11.0)
        assert store.get(subscription.id) is None

    def test_remove(self, store):
        subscription = make(store)
        assert store.remove(subscription.id) is subscription
        assert store.remove(subscription.id) is None

    def test_live_excludes_expired(self, store, clock):
        make(store, expires=10.0)
        keeper = make(store)
        clock.advance(20.0)
        assert [s.id for s in store.live()] == [keeper.id]
        assert len(store) == 1

    def test_sweep_returns_and_drops_expired(self, store, clock):
        doomed = make(store, expires=5.0)
        make(store)
        clock.advance(6.0)
        swept = store.sweep_expired()
        assert [s.id for s in swept] == [doomed.id]
        assert store.sweep_expired() == []


class TestSubscriptionModel:
    def test_never_expires(self, store, clock):
        subscription = make(store, expires=None)
        clock.advance(10**9)
        assert not subscription.is_expired(clock.now())

    def test_accepts_delegates_to_filter(self, store):
        subscription = make(store)
        payload = parse_xml("<e/>")
        assert subscription.accepts(FilterContext(payload))

    def test_queue_starts_empty(self, store):
        assert make(store).queue == []
