"""Unit tests for WS-Eventing message building/parsing, per version."""

import pytest

from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wse import messages
from repro.wse.model import DeliveryMode, SubscriptionEndCode
from repro.wse.versions import WseVersion
from repro.xmlkit import parse_xml, serialize_xml
from repro.xmlkit.names import Namespaces, QName


def roundtrip(element):
    """Serialize + reparse, as the wire would."""
    return parse_xml(serialize_xml(element))


@pytest.fixture(params=list(WseVersion), ids=lambda v: v.name)
def version(request):
    return request.param


class TestSubscribeMessage:
    def test_minimal_roundtrip(self, version):
        built = messages.build_subscribe(
            version, notify_to=EndpointReference("http://sink")
        )
        parsed = messages.parse_subscribe(roundtrip(built), version)
        assert parsed.mode is DeliveryMode.PUSH
        assert parsed.notify_to.address == "http://sink"
        assert parsed.end_to is None
        assert parsed.filter_expression is None

    def test_full_roundtrip(self, version):
        built = messages.build_subscribe(
            version,
            notify_to=EndpointReference("http://sink"),
            end_to=EndpointReference("http://end"),
            expires_text="PT10M",
            filter_expression="/ev:E[ev:n > 1]",
            filter_namespaces={"ev": "urn:m"},
        )
        parsed = messages.parse_subscribe(roundtrip(built), version)
        assert parsed.end_to.address == "http://end"
        assert parsed.expires_text == "PT10M"
        assert parsed.filter_expression == "/ev:E[ev:n > 1]"
        assert parsed.filter_dialect == Namespaces.DIALECT_XPATH10
        assert parsed.filter_namespaces == {"ev": "urn:m"}

    def test_pull_mode_roundtrip_08(self):
        version = WseVersion.V2004_08
        built = messages.build_subscribe(version, mode=DeliveryMode.PULL)
        parsed = messages.parse_subscribe(roundtrip(built), version)
        assert parsed.mode is DeliveryMode.PULL
        assert parsed.notify_to is None

    def test_wrong_body_element_faults(self, version):
        with pytest.raises(SoapFault):
            messages.parse_subscribe(parse_xml("<a/>"), version)

    def test_missing_delivery_faults(self, version):
        from repro.xmlkit.element import XElem

        with pytest.raises(SoapFault):
            messages.parse_subscribe(XElem(version.qname("Subscribe")), version)

    def test_unknown_mode_uri_faults(self, version):
        built = messages.build_subscribe(
            version, notify_to=EndpointReference("http://sink")
        )
        delivery = built.find(version.qname("Delivery"))
        delivery.attrs[QName("", "Mode")] = "urn:not-a-mode"
        with pytest.raises(SoapFault) as excinfo:
            messages.parse_subscribe(built, version)
        assert excinfo.value.subcode.local == "DeliveryModeRequestedUnavailable"

    def test_cross_version_namespaces_differ(self):
        bodies = {
            v: serialize_xml(
                messages.build_subscribe(v, notify_to=EndpointReference("http://s"))
            )
            for v in WseVersion
        }
        assert Namespaces.WSE_2004_01 in bodies[WseVersion.V2004_01]
        assert Namespaces.WSE_2004_08 in bodies[WseVersion.V2004_08]
        assert Namespaces.WSE_2004_08 not in bodies[WseVersion.V2004_01]


class TestSubscribeResponse:
    def test_roundtrip(self, version):
        built = messages.build_subscribe_response(
            version,
            sub_id="sub-7",
            manager_address="http://mgr",
            expires_text="2006-01-01T01:00:00Z",
        )
        result = messages.parse_subscribe_response(
            roundtrip(built), version, source_address="http://src"
        )
        assert result.sub_id == "sub-7"
        assert result.expires_text == "2006-01-01T01:00:00Z"
        if version.subscription_id_in_epr:
            assert result.manager.address == "http://mgr"
        else:
            assert result.manager.address == "http://src"  # source is manager

    def test_01_has_bare_id_element(self):
        built = messages.build_subscribe_response(
            WseVersion.V2004_01, sub_id="s", manager_address="http://m", expires_text="x"
        )
        assert built.find(WseVersion.V2004_01.qname("Id")) is not None
        assert built.find(WseVersion.V2004_01.qname("SubscriptionManager")) is None

    def test_08_has_manager_epr(self):
        built = messages.build_subscribe_response(
            WseVersion.V2004_08, sub_id="s", manager_address="http://m", expires_text="x"
        )
        assert built.find(WseVersion.V2004_08.qname("SubscriptionManager")) is not None
        assert built.find(WseVersion.V2004_08.qname("Id")) is None


class TestSubscriptionIdentityTransport:
    def test_08_identifier_from_echoed_headers(self):
        version = WseVersion.V2004_08
        from repro.xmlkit.element import text_element

        header = text_element(version.qname("Identifier"), "sub-9")
        sub_id = messages.subscription_id_from_request(
            version, parse_xml("<x/>"), [header]
        )
        assert sub_id == "sub-9"

    def test_08_missing_identifier_faults(self):
        with pytest.raises(SoapFault):
            messages.subscription_id_from_request(
                WseVersion.V2004_08, parse_xml("<x/>"), []
            )

    def test_01_id_from_body(self):
        version = WseVersion.V2004_01
        body = messages.build_renew(version, None)
        messages.attach_subscription_id(version, body, "sub-3")
        assert messages.subscription_id_from_request(version, body, []) == "sub-3"

    def test_01_missing_id_faults(self):
        version = WseVersion.V2004_01
        with pytest.raises(SoapFault):
            messages.subscription_id_from_request(
                version, messages.build_renew(version, None), []
            )

    def test_attach_is_noop_on_08(self):
        version = WseVersion.V2004_08
        body = messages.build_renew(version, None)
        messages.attach_subscription_id(version, body, "sub-3")
        assert body.find(version.qname("Id")) is None


class TestManagementMessages:
    def test_renew_roundtrip(self, version):
        built = messages.build_renew(version, "PT1H")
        assert messages.expires_from_body(roundtrip(built), version) == "PT1H"

    def test_renew_without_expires(self, version):
        built = messages.build_renew(version, None)
        assert messages.expires_from_body(built, version) is None

    def test_get_status_only_on_08(self):
        assert messages.build_get_status(WseVersion.V2004_08) is not None
        with pytest.raises(SoapFault):
            messages.build_get_status(WseVersion.V2004_01)

    def test_unsubscribe_shapes(self, version):
        assert messages.build_unsubscribe(version).name == version.qname("Unsubscribe")
        assert messages.build_unsubscribe_response(version).name == version.qname(
            "UnsubscribeResponse"
        )


class TestSubscriptionEndMessage:
    def test_roundtrip(self, version):
        built = messages.build_subscription_end(
            version,
            manager_address="http://mgr",
            sub_id="sub-1",
            code=SubscriptionEndCode.DELIVERY_FAILURE,
            reason="sink vanished",
        )
        parsed = messages.parse_subscription_end(roundtrip(built), version)
        assert parsed.sub_id == "sub-1"
        assert parsed.code is SubscriptionEndCode.DELIVERY_FAILURE
        assert parsed.reason == "sink vanished"

    @pytest.mark.parametrize("code", list(SubscriptionEndCode))
    def test_all_codes(self, version, code):
        built = messages.build_subscription_end(
            version, manager_address="http://m", sub_id="s", code=code
        )
        assert messages.parse_subscription_end(roundtrip(built), version).code is code


class TestPullAndWrapped:
    def test_pull_response_roundtrip(self):
        version = WseVersion.V2004_08
        payloads = [parse_xml(f'<e xmlns="urn:m">{i}</e>') for i in range(3)]
        built = messages.build_pull_response(version, payloads)
        parsed = messages.parse_pull_response(roundtrip(built), version)
        assert parsed == payloads

    def test_wrapped_roundtrip(self):
        version = WseVersion.V2004_08
        payloads = [parse_xml(f'<e xmlns="urn:m">{i}</e>') for i in range(2)]
        built = messages.build_wrapped_notification(version, payloads)
        assert built.name == version.qname("Notifications")
        parsed = messages.parse_wrapped_notification(roundtrip(built), version)
        assert parsed == payloads

    def test_filter_namespace_encoding(self):
        from repro.xmlkit.element import text_element

        filter_elem = text_element(QName("urn:x", "Filter"), "//a:b")
        messages.encode_filter_namespaces(filter_elem, {"a": "urn:a", "b": "urn:b"})
        again = roundtrip(filter_elem)
        assert messages.decode_filter_namespaces(again) == {"a": "urn:a", "b": "urn:b"}
