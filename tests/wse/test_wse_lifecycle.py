"""End-to-end WS-Eventing tests: full SOAP lifecycles over the simulated wire."""

import pytest

from repro.soap import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import (
    DeliveryMode,
    EventSink,
    EventSource,
    SubscriptionEndCode,
    WseSubscriber,
    WseVersion,
)
from repro.xmlkit import parse_xml

NS = {"ev": "urn:grid:events"}


def event(progress=50, level="info"):
    return parse_xml(
        f'<ev:Status xmlns:ev="urn:grid:events" level="{level}">'
        f"<ev:progress>{progress}</ev:progress></ev:Status>"
    )


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture(params=list(WseVersion), ids=lambda v: v.name)
def version(request):
    return request.param


@pytest.fixture
def stack(network, version):
    source = EventSource(network, "http://source", version=version)
    sink = EventSink(network, "http://sink", version=version)
    subscriber = WseSubscriber(network, version=version)
    return source, sink, subscriber


class TestSubscribeAndNotify:
    def test_push_delivery(self, stack):
        source, sink, subscriber = stack
        subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert source.publish(event()) == 1
        assert len(sink.received) == 1
        assert sink.received[0].payload.name.local == "Status"

    def test_filtered_subscription(self, stack):
        source, sink, subscriber = stack
        subscriber.subscribe(
            source.epr(),
            notify_to=sink.epr(),
            filter="/ev:Status[ev:progress > 60]",
            filter_namespaces=NS,
        )
        assert source.publish(event(progress=50)) == 0
        assert source.publish(event(progress=80)) == 1
        assert len(sink.received) == 1

    def test_multiple_sinks(self, network, version):
        source = EventSource(network, "http://source", version=version)
        sinks = [EventSink(network, f"http://sink{i}", version=version) for i in range(3)]
        subscriber = WseSubscriber(network, version=version)
        for sink in sinks:
            subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert source.publish(event()) == 3
        assert all(len(sink.received) == 1 for sink in sinks)

    def test_bad_filter_faults(self, stack):
        source, sink, subscriber = stack
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(source.epr(), notify_to=sink.epr(), filter="///bad")
        assert "Filtering" in excinfo.value.subcode.local

    def test_unknown_dialect_faults(self, stack):
        source, sink, subscriber = stack
        with pytest.raises(SoapFault):
            subscriber.subscribe(
                source.epr(),
                notify_to=sink.epr(),
                filter="x",
                filter_dialect="urn:not-a-dialect",
            )

    def test_push_requires_notify_to(self, stack):
        source, _, subscriber = stack
        with pytest.raises(SoapFault):
            subscriber.subscribe(source.epr())


class TestSubscriptionIdentity:
    def test_08_id_travels_in_manager_epr(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_08)
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        # separate manager endpoint, id as reference parameter
        assert handle.manager.address == "http://source/subscriptions"
        assert handle.manager.parameter_text(
            WseVersion.V2004_08.qname("Identifier")
        ) == handle.sub_id

    def test_01_id_is_bare_element_manager_is_source(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_01)
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        assert handle.manager.address == "http://source"
        assert not handle.manager.reference_parameters


class TestManagement:
    def test_renew_extends_expiry(self, stack, network):
        source, sink, subscriber = stack
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr(), expires="PT60S")
        network.clock.advance(30.0)
        new_expires = subscriber.renew(handle, "PT120S")
        assert new_expires  # granted
        network.clock.advance(100.0)  # inside the renewed lease
        assert source.publish(event()) == 1

    def test_expiry_without_renew(self, stack, network):
        source, sink, subscriber = stack
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), expires="PT60S")
        network.clock.advance(61.0)
        assert source.publish(event()) == 0
        assert len(sink.received) == 0

    def test_unsubscribe_stops_delivery(self, stack):
        source, sink, subscriber = stack
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        subscriber.unsubscribe(handle)
        assert source.publish(event()) == 0

    def test_unsubscribe_twice_faults(self, stack):
        source, sink, subscriber = stack
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        subscriber.unsubscribe(handle)
        with pytest.raises(SoapFault):
            subscriber.unsubscribe(handle)

    def test_get_status_08(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_08)
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr(), expires="PT90S")
        status = subscriber.get_status(handle)
        assert status.startswith("2006-")  # absolute dateTime of the lease

    def test_get_status_01_not_defined(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_01)
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        handle = subscriber.subscribe(source.epr(), notify_to=sink.epr())
        with pytest.raises(SoapFault):
            subscriber.get_status(handle)

    def test_absolute_datetime_expiry(self, stack, network):
        source, sink, subscriber = stack
        subscriber.subscribe(
            source.epr(), notify_to=sink.epr(), expires="2006-01-01T00:02:00Z"
        )
        network.clock.advance(60.0)
        assert source.publish(event()) == 1
        network.clock.advance(61.0)
        assert source.publish(event()) == 0

    def test_past_expiry_faults(self, stack, network):
        source, sink, subscriber = stack
        network.clock.advance(3600.0)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(
                source.epr(), notify_to=sink.epr(), expires="2006-01-01T00:00:30Z"
            )
        assert "InvalidExpirationTime" == excinfo.value.subcode.local

    def test_max_lifetime_caps_grant(self, network, version):
        source = EventSource(network, "http://source", version=version, max_lifetime=60.0)
        sink = EventSink(network, "http://sink", version=version)
        subscriber = WseSubscriber(network, version=version)
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), expires="PT2H")
        network.clock.advance(61.0)
        assert source.publish(event()) == 0


class TestSubscriptionEnd:
    def test_delivery_failure_sends_end(self, stack, network, version):
        source, sink, subscriber = stack
        end_sink = EventSink(network, "http://end-sink", version=version)
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), end_to=end_sink.epr())
        sink.close()  # sink dies
        assert source.publish(event()) == 1  # matched, but delivery fails
        assert len(end_sink.subscription_ends) == 1
        assert end_sink.subscription_ends[0].code is SubscriptionEndCode.DELIVERY_FAILURE
        # subscription is gone afterwards
        assert source.publish(event()) == 0

    def test_shutdown_sends_source_shutting_down(self, stack, network, version):
        source, sink, subscriber = stack
        end_sink = EventSink(network, "http://end-sink", version=version)
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), end_to=end_sink.epr())
        source.shutdown()
        assert end_sink.subscription_ends[0].code is SubscriptionEndCode.SOURCE_SHUTTING_DOWN

    def test_no_end_to_no_message(self, stack, network):
        source, sink, subscriber = stack
        subscriber.subscribe(source.epr(), notify_to=sink.epr())
        sink.close()
        source.publish(event())  # fails, ends silently
        assert source.ended_subscriptions  # recorded internally, nothing sent
        assert network.stats.refused >= 1


class TestPullDelivery:
    def test_pull_08(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        handle = subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
        source.publish(event(10))
        source.publish(event(20))
        messages = subscriber.pull(handle)
        assert len(messages) == 2
        assert subscriber.pull(handle) == []  # queue drained

    def test_pull_max_messages(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        handle = subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
        for i in range(5):
            source.publish(event(i))
        assert len(subscriber.pull(handle, max_messages=2)) == 2
        assert len(subscriber.pull(handle)) == 3

    def test_pull_rejected_on_01(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
        assert excinfo.value.subcode.local == "DeliveryModeRequestedUnavailable"

    def test_pull_through_firewall(self, network):
        """The paper's motivating scenario: consumer behind a firewall."""
        network.add_zone("lan", blocks_inbound=True)
        source = EventSource(network, "http://source", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08, zone="lan")
        handle = subscriber.subscribe(source.epr(), mode=DeliveryMode.PULL)
        source.publish(event())
        assert len(subscriber.pull(handle)) == 1


class TestWrappedDelivery:
    def test_wrapped_batches(self, network):
        source = EventSource(
            network, "http://source", version=WseVersion.V2004_08, wrapped_batch_size=3
        )
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), mode=DeliveryMode.WRAPPED)
        source.publish(event(1))
        source.publish(event(2))
        assert len(sink.received) == 0  # below batch size
        source.publish(event(3))
        assert len(sink.received) == 3
        assert all(item.wrapped for item in sink.received)

    def test_flush_delivers_partial_batch(self, network):
        source = EventSource(
            network, "http://source", version=WseVersion.V2004_08, wrapped_batch_size=10
        )
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_08)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_08)
        subscriber.subscribe(source.epr(), notify_to=sink.epr(), mode=DeliveryMode.WRAPPED)
        source.publish(event())
        source.flush()
        assert len(sink.received) == 1

    def test_wrapped_rejected_on_01(self, network):
        source = EventSource(network, "http://source", version=WseVersion.V2004_01)
        sink = EventSink(network, "http://sink", version=WseVersion.V2004_01)
        subscriber = WseSubscriber(network, version=WseVersion.V2004_01)
        with pytest.raises(SoapFault):
            subscriber.subscribe(
                source.epr(), notify_to=sink.epr(), mode=DeliveryMode.WRAPPED
            )
