"""Wire fidelity of batched (multi-message) Notify envelopes.

A coalesced Notify is rendered through the envelope byte-template — it never
passes through the tree serializer — so this suite holds it to the same
standard the conformance codec engine holds generated documents to:

* the rendered wire text must be a serialize→parse→serialize **fixpoint**
  (byte-identical roundtrip through the ordinary codec);
* parsing must split it back into exactly the coalesced
  ``NotificationMessage`` entries, each with its own subscription identity;
* every coalesced notification ledgers its own per-message lineage entries,
  and the conservation audit balances (opened == delivered).
"""

import pytest

from repro.delivery.policy import BatchingPolicy
from repro.obs import Instrumentation
from repro.obs.audit import audit
from repro.soap.codec import parse_envelope, serialize_envelope
from repro.transport import SimulatedNetwork, VirtualClock
from repro.transport.http import parse_request
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.writer import serialize_xml

N_SUBSCRIPTIONS = 5


def event(n=1):
    return parse_xml(
        f'<e:Reading xmlns:e="urn:batch"><e:n>{n}</e:n>'
        f"<e:text>a &amp; b &lt; c</e:text></e:Reading>"
    )


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


def _batched_stack(network, *, instrument: bool):
    if instrument:
        Instrumentation.attach(network)
    producer = NotificationProducer(
        network,
        "http://batch-producer",
        batching=BatchingPolicy(window=0.0, max_batch=100),
    )
    consumer = NotificationConsumer(network, "http://batch-consumer")
    subscriber = WsnSubscriber(network)
    handles = [
        subscriber.subscribe(producer.epr(), consumer.epr(), topic="t")
        for _ in range(N_SUBSCRIPTIONS)
    ]
    return producer, consumer, handles


def _notify_bodies(frames):
    texts = []
    for frame in frames:
        body = parse_request(bytes(frame)).body
        if b"Notify" in body:
            texts.append(body.decode("utf-8"))
    return texts


class TestBatchedRoundtrip:
    def test_batched_envelope_is_a_codec_fixpoint(self, network):
        frames = []
        network.wire_observers.append(lambda obs: frames.append(obs.request))
        producer, consumer, _ = _batched_stack(network, instrument=False)
        assert producer.publish(event(), topic="t") == N_SUBSCRIPTIONS
        [wire_text] = _notify_bodies(frames)
        # serialize(parse(x)) == x: the template-rendered text is exactly
        # what the tree codec would emit for the parsed document
        reparsed = parse_xml(wire_text)
        assert serialize_xml(reparsed, xml_declaration=True) == wire_text
        # and again through the SOAP envelope layer
        envelope = parse_envelope(wire_text)
        assert serialize_envelope(envelope) == wire_text

    def test_batched_envelope_splits_into_the_coalesced_messages(self, network):
        frames = []
        network.wire_observers.append(lambda obs: frames.append(obs.request))
        producer, consumer, handles = _batched_stack(network, instrument=False)
        producer.publish(event(7), topic="t")
        [wire_text] = _notify_bodies(frames)
        body = parse_envelope(wire_text).body_element()
        messages = [
            child
            for child in body.elements()
            if child.name.local == "NotificationMessage"
        ]
        assert len(messages) == N_SUBSCRIPTIONS
        # one consumer-side record per coalesced message, payloads intact
        assert len(consumer.received) == N_SUBSCRIPTIONS
        assert {
            item.subscription_address for item in consumer.received
        } == {handle.reference.address for handle in handles}
        for item in consumer.received:
            assert item.payload.full_text() == "7a & b < c"

    def test_lineage_books_balance_per_coalesced_message(self, network):
        producer, consumer, _ = _batched_stack(network, instrument=True)
        instr = network.instrumentation
        producer.publish(event(1), topic="t")
        producer.publish(event(2), topic="t")
        assert len(consumer.received) == 2 * N_SUBSCRIPTIONS
        # one lineage per publish; each carries an obligation per coalesced
        # message, every one individually enqueued and delivered
        lineages = list(instr.ledger.lineages())
        assert len(lineages) == 2
        for lineage_id in lineages:
            account = instr.ledger.account_of(lineage_id)
            assert account.opened == N_SUBSCRIPTIONS
            assert account.delivered == N_SUBSCRIPTIONS
        result = audit(instr, scenario="batched-notify")
        assert result.passed, result.render()
