"""Regression corpus replay: every frozen counterexample stays fixed.

Each file under ``corpus/`` is a shrunk counterexample that exposed a real
wire-fidelity bug (attribute whitespace loss, Content-Length tampering,
non-ASCII SOAPAction crashes, request-path mangling, lifecycle and mediation
contracts).  Replaying them through the same engines the fuzzer uses means a
regression reintroducing any fixed bug fails this suite immediately — no
fuzzing luck required.
"""

from pathlib import Path

import pytest

from repro.conformance import ENGINES, load_corpus, run_corpus

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


@pytest.mark.parametrize("entry", CORPUS, ids=[entry.name for entry in CORPUS])
def test_corpus_case_passes(entry):
    failure = ENGINES[entry.engine].check(entry.case)
    assert failure is None, f"{entry.name}: {failure}"


def test_corpus_covers_every_engine():
    # the corpus is the fuzzer's memory: each engine must have at least one
    # frozen counterexample so `run_corpus` exercises all four checkers
    assert {entry.engine for entry in CORPUS} == set(ENGINES)


def test_run_corpus_matches_parametrized_replay():
    results = run_corpus(CORPUS_DIR)
    assert len(results) == len(CORPUS)
    assert all(message is None for _, message in results)


def test_known_prefix_bugs_are_pinned():
    # spot-check that the corpus actually encodes the headline bugs, so a
    # well-meaning cleanup can't hollow the files out without failing here
    names = {entry.name for entry in CORPUS}
    assert {
        "codec-attr-whitespace",
        "framing-content-length-mismatch",
        "framing-nonascii-soapaction",
        "lifecycle-wsn-zero-expires",
        "mediation-differential",
    } <= names
