"""The conformance harness itself: determinism, shrinking, CLI contract."""

import json

import pytest

from repro.conformance import ENGINES, run_conformance
from repro.conformance.cli import conformance_main
from repro.conformance.shrink import shrink
from repro.util.rng import SeededRng


class TestSmokeFuzz:
    def test_all_engines_pass_smoke_run(self):
        report = run_conformance(2006, 200)
        assert report.ok, report.render()
        assert [run.engine for run in report.runs] == list(ENGINES)

    def test_case_split_covers_total(self):
        report = run_conformance(1, 10)
        assert sum(run.cases for run in report.runs) == 10

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            run_conformance(1, 4, engines=["codec", "nope"])


class TestDeterminism:
    def test_report_is_byte_identical_across_runs(self):
        first = run_conformance(2006, 80)
        second = run_conformance(2006, 80)
        assert first.render() == second.render()
        assert first.to_json() == second.to_json()

    def test_generation_depends_only_on_coordinates(self):
        # the case at (engine, index) must not depend on which other engines
        # run or how many cases they get — that is what makes a single
        # failure re-investigable in isolation
        engine = ENGINES["codec"]
        direct = engine.generate(SeededRng(2006).fork("codec/7"))
        again = engine.generate(SeededRng(2006).fork("codec/7"))
        assert direct == again

    def test_different_seeds_generate_different_cases(self):
        engine = ENGINES["codec"]
        a = engine.generate(SeededRng(1).fork("codec/0"))
        b = engine.generate(SeededRng(2).fork("codec/0"))
        assert a != b


class TestShrinker:
    def test_shrinks_list_to_minimal_failing_element(self):
        failing = lambda case: isinstance(case, list) and "bad" in case
        result = shrink(["a", "bad", "c", "d"], failing)
        assert result == ["bad"]

    def test_shrinks_nested_strings(self):
        # string variants are prefix truncations only, so the shortest
        # failing *prefix* is the deterministic floor
        failing = lambda case: isinstance(case, dict) and "x" in case.get("s", "")
        assert shrink({"s": "aaxaa"}, failing) == {"s": "aax"}

    def test_halves_integers_toward_zero(self):
        failing = lambda case: isinstance(case, dict) and case.get("n", 0) >= 10
        # 500 → 250 → 125 → 62 → 31 → 15 (both 0 and 7 stop failing)
        assert shrink({"n": 500}, failing) == {"n": 15}

    def test_budget_bounds_probe_count(self):
        calls = []

        def failing(case):
            calls.append(case)
            return True  # everything "fails": only the budget stops us

        shrink(["a"] * 50, failing, budget=17)
        assert len(calls) <= 17

    def test_result_always_still_failing(self):
        failing = lambda case: isinstance(case, list) and sum(
            1 for item in case if item == "k"
        ) >= 2
        result = shrink(["k", "j", "k", "k"], failing)
        assert failing(result)
        assert result == ["k", "k"]


class TestCli:
    def test_exit_zero_and_report_on_stdout(self, capsys):
        assert conformance_main(["--seed", "2006", "--cases", "40"]) == 0
        out = capsys.readouterr().out
        assert "result: PASS (0 failures)" in out
        assert "seed=2006 cases=40" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert conformance_main(["--seed", "2006", "--cases", "40", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["result"] == "pass"
        assert set(record["engines"]) == set(ENGINES)

    def test_engine_subset(self, capsys):
        assert conformance_main(["--cases", "20", "--engines", "codec,framing"]) == 0
        out = capsys.readouterr().out
        assert "engines=codec,framing" in out
        assert "lifecycle" not in out

    def test_unknown_engine_is_usage_error(self, capsys):
        assert conformance_main(["--cases", "4", "--engines", "warp"]) == 2

    def test_corpus_replay_flag(self, capsys, tmp_path):
        good = {"engine": "codec", "name": "ok", "case": {"kind": "raw", "xml": "<a/>"}}
        (tmp_path / "ok.json").write_text(json.dumps(good))
        assert conformance_main(["--cases", "8", "--corpus", str(tmp_path)]) == 0
        assert "corpus: 1 cases, 0 failures" in capsys.readouterr().out

    def test_failing_corpus_sets_exit_code(self, capsys, tmp_path, monkeypatch):
        # no real corpus case fails on fixed code, so force a failure to pin
        # the exit-1 contract CI depends on
        entry = {"engine": "codec", "name": "boom", "case": {"kind": "raw", "xml": "<a/>"}}
        (tmp_path / "boom.json").write_text(json.dumps(entry))
        monkeypatch.setattr(ENGINES["codec"], "check", lambda case: "forced failure")
        code = conformance_main(
            ["--cases", "8", "--engines", "framing", "--corpus", str(tmp_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "corpus: 1 cases, 1 failures" in out
        assert "FAIL codec/boom: forced failure" in out
