"""Table 3's "Management operations" row, verified by introspection:
every operation the row lists must exist as a callable surface in the
corresponding implementation."""

from repro.baselines.corba.event_service import (
    ConsumerAdmin,
    ProxyPullConsumer,
    ProxyPullSupplier,
    ProxyPushConsumer,
    ProxyPushSupplier,
    SupplierAdmin,
)
from repro.baselines.corba.notification_service import (
    FilterObject,
    NotificationChannel,
    NotificationConsumerAdmin,
    StructuredProxyPushSupplier,
)
from repro.baselines.jms.session import Session
from repro.baselines.ogsi.grid_service import GridService, NotificationSource, _action
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse.source import EventSource
from repro.wse.versions import WseVersion
from repro.wsn.producer import NotificationProducer
from repro.wsn.versions import WsnVersion
from repro.wsn import messages as wsn_messages


class TestCorbaEventServiceOps:
    def test_connect_and_obtain_operations(self):
        assert hasattr(ProxyPushSupplier, "connect_push_consumer")
        assert hasattr(ProxyPullConsumer, "connect_pull_supplier")
        assert hasattr(ConsumerAdmin, "obtain_push_supplier")
        assert hasattr(ConsumerAdmin, "obtain_pull_supplier")
        assert hasattr(SupplierAdmin, "obtain_push_consumer")
        assert hasattr(SupplierAdmin, "obtain_pull_consumer")
        assert hasattr(ProxyPushConsumer, "disconnect_push_consumer")
        assert hasattr(ProxyPullSupplier, "disconnect_pull_supplier")


class TestCorbaNotificationServiceOps:
    def test_structured_proxies_and_qos(self):
        assert hasattr(NotificationConsumerAdmin, "obtain_structured_push_supplier")
        assert hasattr(NotificationConsumerAdmin, "obtain_structured_pull_supplier")
        assert hasattr(StructuredProxyPushSupplier, "suspend_connection")
        assert hasattr(StructuredProxyPushSupplier, "resume_connection")
        assert hasattr(StructuredProxyPushSupplier, "set_qos")
        assert hasattr(NotificationChannel, "set_qos")
        assert hasattr(NotificationChannel, "validate_qos")

    def test_filter_admin_operations(self):
        for op in ("add_filter", "remove_filter", "remove_all_filters", "get_all_filters"):
            assert hasattr(StructuredProxyPushSupplier, op)
        for op in ("add_constraint", "remove_constraint", "get_constraints"):
            assert hasattr(FilterObject, op)


class TestJmsOps:
    def test_subscriber_operations(self):
        assert hasattr(Session, "create_consumer")  # createSubscriber
        assert hasattr(Session, "create_durable_subscriber")
        assert hasattr(Session, "unsubscribe")


class TestOgsiOps:
    def test_ogsi_actions_registered(self):
        network = SimulatedNetwork(VirtualClock())
        source = NotificationSource(network, "http://ops-ogsi")
        handlers = source.endpoint._handlers
        for op in (
            "subscribe",
            "requestTerminationAfter",
            "requestTerminationBefore",
            "destroy",
            "findServiceData",
        ):
            assert _action(op) in handlers, op


class TestWseOps:
    def test_wse_08_actions_registered(self):
        network = SimulatedNetwork(VirtualClock())
        version = WseVersion.V2004_08
        source = EventSource(network, "http://ops-wse", version=version)
        assert version.action("Subscribe") in source.endpoint._handlers
        manager_ops = source.manager_endpoint._handlers
        for op in ("Renew", "GetStatus", "Unsubscribe"):
            assert version.action(op) in manager_ops, op

    def test_wse_01_has_no_get_status(self):
        network = SimulatedNetwork(VirtualClock())
        version = WseVersion.V2004_01
        source = EventSource(network, "http://ops-wse01", version=version)
        assert version.action("GetStatus") not in source.manager_endpoint._handlers


class TestWsnOps:
    def test_wsn_13_actions_registered(self):
        network = SimulatedNetwork(VirtualClock())
        version = WsnVersion.V1_3
        producer = NotificationProducer(network, "http://ops-wsn", version=version)
        assert version.action("Subscribe") in producer.endpoint._handlers
        assert version.action("GetCurrentMessage") in producer.endpoint._handlers
        manager_ops = producer.manager_endpoint._handlers
        for op in ("Renew", "Unsubscribe", "PauseSubscription", "ResumeSubscription"):
            assert version.action(op) in manager_ops, op
        # WSRF port (optional, mounted by default)
        assert wsn_messages.wsrf_action("GetResourceProperty") in manager_ops
        assert wsn_messages.wsrf_lifetime_action("SetTerminationTime") in manager_ops
        assert wsn_messages.wsrf_lifetime_action("Destroy") in manager_ops

    def test_wsn_10_has_no_native_renew(self):
        network = SimulatedNetwork(VirtualClock())
        version = WsnVersion.V1_0
        producer = NotificationProducer(network, "http://ops-wsn10", version=version)
        manager_ops = producer.manager_endpoint._handlers
        assert version.action("Renew") not in manager_ops
        assert version.action("Unsubscribe") not in manager_ops
        # lifetime management is WSRF-only, as the paper's Table 3 lists
        assert wsn_messages.wsrf_lifetime_action("Destroy") in manager_ops
