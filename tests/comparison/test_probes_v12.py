"""WSN 1.2 probing: the paper skips 1.2 in Table 1 because it is "very
similar to version 1.0" — verify that claim against the implementations by
running every probe on both versions and diffing."""

import pytest

from repro.comparison import probes
from repro.wsn.versions import WsnVersion

PROBES = [
    probes.probe_separate_manager,
    probes.probe_get_status,
    probes.probe_id_in_epr,
    probes.probe_wrapped_delivery,
    probes.probe_pull_delivery,
    probes.probe_duration_expiry,
    probes.probe_requires_topic,
    probes.probe_get_current_message,
    probes.probe_pull_point_interface,
    probes.probe_pull_mode_in_subscription,
    probes.probe_subscription_end_notice,
    probes.probe_pause_resume,
]


@pytest.mark.parametrize("probe", PROBES, ids=lambda p: p.__name__)
def test_v12_behaves_like_v10(probe):
    assert probe(WsnVersion.V1_2) == probe(WsnVersion.V1_0)


def test_v12_differs_only_in_namespace_and_wsa():
    """The 1.0 -> 1.2 delta is packaging: namespace + WSA binding."""
    assert WsnVersion.V1_2.namespace != WsnVersion.V1_0.namespace
    assert WsnVersion.V1_2.wsa_version != WsnVersion.V1_0.wsa_version
    structural_flags = [
        "requires_wsrf",
        "requires_topic",
        "requires_pause_resume",
        "has_native_unsubscribe",
        "supports_duration_expiry",
        "defines_xpath_dialect",
        "has_filter_element",
        "defines_pull_point_interface",
        "requires_subscription_end",
    ]
    for flag in structural_flags:
        assert getattr(WsnVersion.V1_2, flag) == getattr(WsnVersion.V1_0, flag), flag
