"""The reproduction's headline assertions: every cell of Tables 1-3 and
every edge of Figs. 1-2, measured against the live implementations, matches
the paper."""

import pytest

from repro.comparison import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    build_table1,
    build_table2,
    build_table3,
    trace_wse_architecture,
    trace_wsn_architecture,
)
from repro.comparison.tables import ComparisonTable, render_cell
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion


class TestTableModel:
    def test_render_cell(self):
        assert render_cell(True) == "Yes"
        assert render_cell(False) == "No"
        assert render_cell("2/2006") == "2/2006"

    def test_add_row_arity_checked(self):
        table = ComparisonTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("r", True)

    def test_cell_lookup(self):
        table = ComparisonTable("t", ["a", "b"]).add_row("r", True, "x")
        assert table.cell("r", "a") is True
        assert table.cell("r", "b") == "x"
        with pytest.raises(KeyError):
            table.cell("missing", "a")

    def test_diff_reports_mismatches(self):
        left = ComparisonTable("t", ["a"]).add_row("r", True)
        right = ComparisonTable("t", ["a"]).add_row("r", False)
        diff = left.diff(right)
        assert not diff.clean
        assert "r" in diff.mismatches[0]

    def test_diff_clean(self):
        left = ComparisonTable("t", ["a"]).add_row("r", True)
        right = ComparisonTable("t", ["a"]).add_row("r", True)
        diff = left.diff(right)
        assert diff.clean and diff.matched_cells == 1

    def test_render_contains_rows_and_columns(self):
        text = PAPER_TABLE1.render()
        assert "WSE 01/2004" in text
        assert "Require WSRF" in text


@pytest.fixture(scope="module")
def table1():
    return build_table1()


@pytest.fixture(scope="module")
def table2():
    return build_table2()


@pytest.fixture(scope="module")
def table3():
    return build_table3()


class TestTable1:
    """Experiment E1: every measured Table 1 cell equals the paper's."""

    def test_all_cells_match_paper(self, table1):
        diff = table1.diff(PAPER_TABLE1)
        assert diff.clean, diff.summary()

    def test_dimensions(self, table1):
        assert len(table1.columns) == 4
        assert len(table1.rows) == 21  # version-date row + 20 feature rows

    @pytest.mark.parametrize(
        "row,expected",
        [
            ("Support Pull delivery mode", [False, False, True, True]),
            ("Require WSRF", [False, True, False, False]),
            ("Require a topic in subscription", [False, True, False, False]),
            ("Define PullPoint interface", [False, False, False, True]),
        ],
    )
    def test_convergence_rows(self, table1, row, expected):
        values = [table1.cell(row, column) for column in table1.columns]
        assert values == expected

    def test_wsa_versions_row(self, table1):
        assert [table1.cell("WS-Addressing version", c) for c in table1.columns] == [
            "2003/03",
            "2003/03",
            "2004/08",
            "2005/08",
        ]


class TestTable2:
    """Experiment E2: the function mapping, executed."""

    def test_all_cells_match_paper(self, table2):
        diff = table2.diff(PAPER_TABLE2)
        assert diff.clean, diff.summary()

    def test_wsrf_mappings_present(self, table2):
        assert "WSRF" in table2.cell("GetStatus", "WS-BaseNotification")
        assert "WSRF" in table2.cell("SubscriptionEnd", "WS-BaseNotification")

    def test_wsn_only_operations(self, table2):
        assert table2.cell("Pause/resume Subscription", "WS-Eventing") == "Not available"
        assert table2.cell("GetCurrentMessage", "WS-Eventing") == "Not available"


class TestTable3:
    """Experiment E3: the six-spec cross-generation matrix."""

    def test_all_cells_match_paper(self, table3):
        diff = table3.diff(PAPER_TABLE3)
        assert diff.clean, diff.summary()

    def test_no_probe_failures(self, table3):
        for label, cells in table3.rows:
            for cell in cells:
                assert "FAILED" not in str(cell), f"{label}: {cell}"

    def test_evolution_observation_1_transport(self, table3):
        """Section VI observation (1): delivery moves to transport-independent."""
        row = [table3.cell("Message transport", c) for c in table3.columns]
        assert row[:3] == ["RPC", "RPC", "RPC"]
        assert row[4] == row[5] == "Transport independent"

    def test_evolution_observation_3_filtering(self, table3):
        """Observation (3): from no filter to content-based XPath."""
        assert table3.cell("Filter", "CORBA Event Service") == "No"
        assert "XPath" in table3.cell("Filter language", "WS-Eventing")

    def test_evolution_observation_4_qos(self, table3):
        """Observation (4): QoS moves out of the specs into WS-* composition."""
        assert "13 QoS" in table3.cell("QoS criteria", "CORBA Notification Service")
        assert "composition" in table3.cell("QoS criteria", "WS-Notification")

    def test_evolution_observation_5_soft_state(self, table3):
        """Observation (5): subscription timeouts appear in the Grid/WS era."""
        assert table3.cell("Subscription Timeout", "CORBA Event Service") == "No"
        assert "duration" in table3.cell("Subscription Timeout", "WS-Eventing").lower()


class TestFigures:
    """Experiments E4/E5: the architecture diagrams, traced live."""

    def test_fig1_wse_08_entities(self):
        trace = trace_wse_architecture(WseVersion.V2004_08)
        assert trace.entities == [
            "Subscriber",
            "Event Source",
            "Subscription Manager",
            "Event Sink",
        ]

    def test_fig1_wse_08_edges(self):
        trace = trace_wse_architecture(WseVersion.V2004_08)
        assert trace.operations_between("Subscriber", "Event Source") == ["Subscribe"]
        assert trace.operations_between("Subscriber", "Subscription Manager") == [
            "Renew",
            "GetStatus",
            "Unsubscribe",
        ]
        sink_ops = trace.operations_between("Event Source", "Event Sink")
        assert "Notify" in sink_ops and "SubscriptionEnd" in sink_ops

    def test_fig1_wse_01_manager_collapsed_into_source(self):
        trace = trace_wse_architecture(WseVersion.V2004_01)
        assert "Subscription Manager" not in trace.entities
        ops = trace.operations_between("Subscriber", "Event Source")
        assert {"Subscribe", "Renew", "Unsubscribe"} <= set(ops)

    def test_fig2_wsn_entities(self):
        trace = trace_wsn_architecture()
        assert "Publisher" in trace.entities  # separate from the producer
        assert "Notification Producer" in trace.entities
        assert "Subscription Manager" in trace.entities
        assert "Notification Consumer" in trace.entities

    def test_fig2_wsn_13_edges(self):
        trace = trace_wsn_architecture(WsnVersion.V1_3)
        producer_ops = trace.operations_between("Subscriber", "Notification Producer")
        assert "Subscribe" in producer_ops and "GetCurrentMessage" in producer_ops
        manager_ops = trace.operations_between("Subscriber", "Subscription Manager")
        assert {"PauseSubscription", "ResumeSubscription", "Renew", "Unsubscribe"} <= set(
            manager_ops
        )
        assert trace.operations_between(
            "Notification Producer", "Notification Consumer"
        ) == ["Notify"]

    def test_fig2_wsn_10_uses_wsrf_lifetime(self):
        trace = trace_wsn_architecture(WsnVersion.V1_0)
        manager_ops = trace.operations_between("Subscriber", "Subscription Manager")
        assert "SetTerminationTime" in manager_ops
        assert "Destroy" in manager_ops
        assert "Unsubscribe" not in manager_ops

    def test_render_is_textual_diagram(self):
        text = trace_wse_architecture().render()
        assert "-->" in text and "[Event Sink]" in text
