"""The extended Table 1: checking the paper's reason for omitting WSN 1.2."""

import pytest

from repro.comparison.table1 import build_table1, build_table1_extended


@pytest.fixture(scope="module")
def extended():
    return build_table1_extended()


class TestExtendedTable1:
    def test_five_columns(self, extended):
        assert extended.columns == [
            "WSE 01/2004",
            "WSN 1.0",
            "WSN 1.2",
            "WSE 08/2004",
            "WSN 1.3",
        ]

    def test_v12_equals_v10_except_packaging(self, extended):
        """The paper's omission rationale, measured: every 1.2 cell equals
        the 1.0 cell except the version date and WSA binding rows."""
        differing = []
        for label, cells in extended.rows:
            v10, v12 = cells[1], cells[2]
            if v10 != v12:
                differing.append(label)
        assert differing == ["Version date", "WS-Addressing version"]

    def test_v12_wsa_is_2004_08(self, extended):
        assert extended.cell("WS-Addressing version", "WSN 1.2") == "2004/08"

    def test_other_columns_unchanged(self, extended):
        base = build_table1()
        for label, cells in base.rows:
            for column in base.columns:
                assert extended.cell(label, column) == base.cell(label, column)
