"""Tests for the WSRF subset: resources, properties, lifetime."""

import pytest

from repro.soap import SoapFault
from repro.transport import VirtualClock
from repro.wsrf import (
    InvalidResourcePropertyFault,
    ResourceRegistry,
    ResourceUnknownFault,
    destroy_resource,
    get_multiple_resource_properties,
    get_resource_property,
    query_resource_properties,
    set_resource_properties,
    set_termination_time,
    sweep_expired,
)
from repro.wsrf.lifetime import UnableToSetTerminationTimeFault
from repro.wsrf.resource import RESOURCE_ID
from repro.xmlkit.element import text_element
from repro.xmlkit.names import QName

STATE = QName("urn:sub", "State")
FILTER = QName("urn:sub", "Filter")


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def registry(clock):
    return ResourceRegistry(clock, key_prefix="sub")


class TestRegistry:
    def test_create_assigns_unique_keys(self, registry):
        assert registry.create().key != registry.create().key

    def test_get_live(self, registry):
        resource = registry.create()
        assert registry.get(resource.key) is resource

    def test_get_unknown_faults(self, registry):
        with pytest.raises(ResourceUnknownFault):
            registry.get("sub-999")

    def test_destroy_then_get_faults(self, registry):
        resource = registry.create()
        registry.destroy(resource.key)
        with pytest.raises(ResourceUnknownFault):
            registry.get(resource.key)

    def test_double_destroy_faults(self, registry):
        resource = registry.create()
        registry.destroy(resource.key)
        with pytest.raises(ResourceUnknownFault):
            registry.destroy(resource.key)

    def test_lifetime_expiry(self, registry, clock):
        resource = registry.create(lifetime=10.0)
        assert registry.get(resource.key) is resource
        clock.advance(11.0)
        with pytest.raises(ResourceUnknownFault):
            registry.get(resource.key)

    def test_len_counts_live_only(self, registry, clock):
        registry.create(lifetime=5.0)
        registry.create()
        assert len(registry) == 2
        clock.advance(6.0)
        assert len(registry) == 1

    def test_resolve_by_reference_parameter(self, registry):
        resource = registry.create()
        epr = registry.epr_for(resource, "http://svc")
        assert epr.parameter_text(RESOURCE_ID) == resource.key
        assert registry.resolve(epr.reference_parameters) is resource

    def test_resolve_without_id_faults(self, registry):
        with pytest.raises(ResourceUnknownFault):
            registry.resolve([text_element(QName("urn:x", "Other"), "1")])

    def test_termination_listener_fires_on_destroy(self, registry):
        fired = []
        resource = registry.create()
        resource.termination_listeners.append(lambda r, reason: fired.append(reason))
        registry.destroy(resource.key)
        assert fired == ["destroyed"]

    def test_termination_listener_fires_once_on_expiry_sweep(self, registry, clock):
        fired = []
        resource = registry.create(lifetime=1.0)
        resource.termination_listeners.append(lambda r, reason: fired.append(reason))
        clock.advance(2.0)
        assert [r.key for r in sweep_expired(registry)] == [resource.key]
        sweep_expired(registry)
        assert fired == ["expired"]


class TestProperties:
    def _resource(self, registry):
        resource = registry.create()
        resource.set_text_property(STATE, "Active")
        resource.set_text_property(FILTER, "//event")
        return resource

    def test_get_property(self, registry):
        resource = self._resource(registry)
        values = get_resource_property(resource, STATE)
        assert values[0].full_text() == "Active"

    def test_get_unknown_property_faults(self, registry):
        with pytest.raises(InvalidResourcePropertyFault):
            get_resource_property(self._resource(registry), QName("urn:sub", "Nope"))

    def test_get_multiple(self, registry):
        resource = self._resource(registry)
        result = get_multiple_resource_properties(resource, [STATE, FILTER])
        assert set(result) == {STATE, FILTER}

    def test_set_insert(self, registry):
        resource = self._resource(registry)
        extra = QName("urn:sub", "Extra")
        set_resource_properties(resource, insert=[text_element(extra, "v")])
        assert resource.property_text(extra) == "v"

    def test_set_update_replaces_values(self, registry):
        resource = self._resource(registry)
        set_resource_properties(resource, update=[text_element(STATE, "Paused")])
        assert resource.property_text(STATE) == "Paused"
        assert len(resource.get_property(STATE)) == 1

    def test_set_delete(self, registry):
        resource = self._resource(registry)
        set_resource_properties(resource, delete=[FILTER])
        assert resource.property_text(FILTER) is None

    def test_update_unknown_property_is_atomic(self, registry):
        resource = self._resource(registry)
        with pytest.raises(InvalidResourcePropertyFault):
            set_resource_properties(
                resource,
                delete=[STATE],
                update=[text_element(QName("urn:sub", "Ghost"), "x")],
            )
        # nothing was applied
        assert resource.property_text(STATE) == "Active"

    def test_query_with_xpath(self, registry):
        resource = self._resource(registry)
        results = query_resource_properties(
            resource, "/*/s:State", {"s": "urn:sub"}
        )
        assert results[0].full_text() == "Active"

    def test_query_scalar_wrapped(self, registry):
        resource = self._resource(registry)
        results = query_resource_properties(resource, "count(/*/*)")
        assert results[0].full_text() == "2"

    def test_query_bad_expression_faults(self, registry):
        with pytest.raises(SoapFault):
            query_resource_properties(self._resource(registry), "///")

    def test_property_document_contains_all(self, registry):
        resource = self._resource(registry)
        doc = resource.property_document(QName("urn:sub", "Doc"))
        assert len(list(doc.elements())) == 2


class TestLifetime:
    def test_destroy(self, registry):
        resource = registry.create()
        destroy_resource(registry, resource)
        with pytest.raises(ResourceUnknownFault):
            registry.get(resource.key)

    def test_set_termination_time(self, registry, clock):
        resource = registry.create()
        set_termination_time(registry, resource, clock.now() + 30.0)
        clock.advance(31.0)
        with pytest.raises(ResourceUnknownFault):
            registry.get(resource.key)

    def test_set_termination_time_infinite(self, registry, clock):
        resource = registry.create(lifetime=5.0)
        set_termination_time(registry, resource, None)
        clock.advance(100.0)
        assert registry.get(resource.key) is resource

    def test_past_termination_time_rejected(self, registry, clock):
        clock.advance(10.0)
        resource = registry.create()
        with pytest.raises(UnableToSetTerminationTimeFault):
            set_termination_time(registry, resource, 5.0)
