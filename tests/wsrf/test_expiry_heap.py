"""Amortized expiry: the earliest-expiry heaps must agree with the full scans."""

from repro.transport.clock import VirtualClock
from repro.wse.model import DeliveryMode, SubscriptionStore
from repro.wse.versions import WseVersion
from repro.wsrf.lifetime import set_termination_time
from repro.wsrf.resource import ResourceRegistry
from repro.filters.base import AcceptAllFilter


class TestRegistrySweepDue:
    def test_sweep_due_expires_exactly_the_overdue(self):
        clock = VirtualClock()
        registry = ResourceRegistry(clock)
        early = registry.create(lifetime=10.0)
        late = registry.create(lifetime=100.0)
        forever = registry.create()
        clock.advance(50.0)
        expired = registry.sweep_due()
        assert [r.key for r in expired] == [early.key]
        assert registry.find(late.key) is late
        assert registry.find(forever.key) is forever

    def test_sweep_due_fires_termination_listeners(self):
        clock = VirtualClock()
        registry = ResourceRegistry(clock)
        resource = registry.create(lifetime=5.0)
        seen = []
        resource.termination_listeners.append(lambda r, reason: seen.append(reason))
        clock.advance(10.0)
        registry.sweep_due()
        assert seen == ["expired"]

    def test_destroyed_resource_leaves_only_a_stale_heap_entry(self):
        clock = VirtualClock()
        registry = ResourceRegistry(clock)
        resource = registry.create(lifetime=5.0)
        registry.destroy(resource.key)
        clock.advance(10.0)
        assert registry.sweep_due() == []

    def test_extension_makes_the_old_entry_stale(self):
        clock = VirtualClock()
        registry = ResourceRegistry(clock)
        resource = registry.create(lifetime=5.0)
        set_termination_time(registry, resource, clock.now() + 100.0)
        clock.advance(10.0)  # past the original expiry, not the new one
        assert registry.sweep_due() == []
        assert registry.find(resource.key) is resource
        clock.advance(100.0)
        assert registry.sweep_due() == [resource]

    def test_set_termination_time_to_infinite_never_expires(self):
        clock = VirtualClock()
        registry = ResourceRegistry(clock)
        resource = registry.create(lifetime=5.0)
        set_termination_time(registry, resource, None)
        clock.advance(1000.0)
        assert registry.sweep_due() == []
        assert resource.alive(clock.now())

    def test_sweep_due_agrees_with_full_sweep(self):
        # same population, two registries, two sweep strategies: same deaths
        clock_a, clock_b = VirtualClock(), VirtualClock()
        scan = ResourceRegistry(clock_a)
        heap = ResourceRegistry(clock_b)
        lifetimes = [3.0, 7.0, 7.0, 20.0, None, 1.0]
        for lifetime in lifetimes:
            scan.create(lifetime=lifetime)
            heap.create(lifetime=lifetime)
        for step in (2.0, 3.0, 10.0, 50.0):
            clock_a.advance(step)
            clock_b.advance(step)
            want = sorted(r.key for r in scan.sweep())
            got = sorted(r.key for r in heap.sweep_due())
            assert got == want
            assert len(scan) == len(heap)


class TestStoreSweepDue:
    def _store(self):
        clock = VirtualClock()
        return clock, SubscriptionStore(clock)

    def _create(self, store, expires):
        return store.create(
            version=WseVersion.V2004_08,
            notify_to=None,
            mode=DeliveryMode.PULL,
            filter=AcceptAllFilter(),
            expires=expires,
        )

    def test_sweep_due_matches_sweep_expired(self):
        clock, store = self._store()
        self._create(store, 5.0)
        keeper = self._create(store, 100.0)
        self._create(store, None)
        clock.advance(10.0)
        expired = store.sweep_due()
        assert [s.expires for s in expired] == [5.0]
        assert store.get(keeper.id) is keeper
        assert store.sweep_expired() == []  # nothing left overdue

    def test_renew_through_update_expiry_staleness(self):
        clock, store = self._store()
        subscription = self._create(store, 5.0)
        store.update_expiry(subscription, clock.now() + 100.0)
        clock.advance(10.0)
        assert store.sweep_due() == []
        assert store.get(subscription.id) is subscription

    def test_removed_subscription_is_not_resurrected(self):
        clock, store = self._store()
        subscription = self._create(store, 5.0)
        store.remove(subscription.id)
        clock.advance(10.0)
        assert store.sweep_due() == []

    def test_hooks_fire_on_create_and_every_removal_path(self):
        clock, store = self._store()
        events = []
        store.on_created.append(lambda s: events.append(("created", s.id)))
        store.on_removed.append(lambda s: events.append(("removed", s.id)))
        a = self._create(store, 5.0)
        b = self._create(store, 6.0)
        c = self._create(store, None)
        store.remove(a.id)
        clock.advance(10.0)
        store.sweep_due()
        store.remove(c.id)
        assert events == [
            ("created", a.id),
            ("created", b.id),
            ("created", c.id),
            ("removed", a.id),
            ("removed", b.id),
            ("removed", c.id),
        ]

    def test_has_subscriptions(self):
        clock, store = self._store()
        assert not store.has_subscriptions()
        subscription = self._create(store, None)
        assert store.has_subscriptions()
        store.remove(subscription.id)
        assert not store.has_subscriptions()
