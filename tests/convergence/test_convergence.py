"""Tests for the WS-EventNotification prototype (experiment E9)."""

import pytest

from repro.convergence import (
    MODE_PULL,
    MODE_WRAP,
    ConvergedConsumer,
    ConvergedProfile,
    ConvergedSource,
    ConvergedSubscriber,
    converged_table_column,
)
from repro.soap import SoapFault
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse.versions import WseVersion
from repro.wsn.versions import WsnVersion
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces

NS = {"ev": "urn:conv"}


def event(n=1):
    return parse_xml(f'<ev:E xmlns:ev="urn:conv"><ev:n>{n}</ev:n></ev:E>')


@pytest.fixture
def network():
    return SimulatedNetwork(VirtualClock())


@pytest.fixture
def stack(network):
    source = ConvergedSource(network, "http://converged")
    consumer = ConvergedConsumer(network, "http://converged-consumer")
    subscriber = ConvergedSubscriber(network)
    return source, consumer, subscriber


class TestProfile:
    def test_dominates_both_parents(self):
        assert ConvergedProfile().dominates_parents()

    def test_union_capabilities(self):
        column = converged_table_column()
        # capabilities from WSE only
        assert column["Specify pull delivery mode in subscription"]
        # capabilities from WSN only
        assert column["GetCurrentMessage operation"]
        assert column["Define PullPoint interface"]
        assert column["Define Wrapped message format"]
        # capabilities from both
        assert column["Support Pull delivery mode"]
        assert column["Specify subscription expiration using duration"]

    def test_intersection_obligations(self):
        column = converged_table_column()
        assert not column["Require WSRF"]
        assert not column["Require a topic in subscription"]
        assert not column["Require SubscriptionEnd"]

    def test_every_parent_capability_retained(self):
        profile = ConvergedProfile()
        from repro.convergence.profile import _CAPABILITY_FLAGS

        for flag, _label in _CAPABILITY_FLAGS:
            for parent in (WseVersion.V2004_08, WsnVersion.V1_3):
                if getattr(parent, flag, False):
                    assert profile.capability(flag), flag


class TestConvergedLifecycle:
    def test_push_with_topic_and_content_filter(self, stack):
        source, consumer, subscriber = stack
        subscriber.subscribe(
            source.epr(),
            consumer=consumer.epr(),
            topic="jobs//.",
            topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
            message_content="/ev:E[ev:n > 5]",
            namespaces=NS,
        )
        assert source.publish(event(3), topic="jobs/a") == 0
        assert source.publish(event(9), topic="jobs/a") == 1
        assert source.publish(event(9), topic="other") == 0
        payload, topic, wrapped = consumer.received[0]
        assert topic == "jobs/a" and wrapped  # wrapped is the default
        assert "9" in payload.full_text()

    def test_raw_mode_topic_rides_header(self, stack):
        source, consumer, subscriber = stack
        subscriber.subscribe(
            source.epr(), consumer=consumer.epr(), topic="t", use_raw=True
        )
        source.publish(event(), topic="t")
        payload, topic, wrapped = consumer.received[0]
        assert topic == "t" and not wrapped

    def test_pull_mode_in_subscription(self, stack):
        """WSE's contribution: pull selected in the Subscribe message."""
        source, consumer, subscriber = stack
        handle = subscriber.subscribe(source.epr(), mode=MODE_PULL, topic="t")
        source.publish(event(1), topic="t")
        source.publish(event(2), topic="t")
        pulled = subscriber.pull(handle)
        assert len(pulled) == 2
        assert pulled[0][1] == "t"  # topic preserved in the defined format
        assert subscriber.pull(handle) == []

    def test_pull_through_firewall(self, network):
        network.add_zone("lan", blocks_inbound=True)
        source = ConvergedSource(network, "http://conv-src")
        subscriber = ConvergedSubscriber(network, zone="lan")
        handle = subscriber.subscribe(source.epr(), mode=MODE_PULL)
        source.publish(event())
        assert len(subscriber.pull(handle)) == 1

    def test_wrapped_mode_with_defined_format(self, stack):
        source, consumer, subscriber = stack
        source.wrapped_batch_size = 2
        subscriber.subscribe(
            source.epr(), consumer=consumer.epr(), mode=MODE_WRAP, topic="t"
        )
        source.publish(event(1), topic="t")
        assert consumer.received == []
        source.publish(event(2), topic="t")
        assert len(consumer.received) == 2
        assert all(wrapped for _, _, wrapped in consumer.received)
        assert all(topic == "t" for _, topic, _ in consumer.received)

    def test_get_status_and_renew(self, stack, network):
        """WSE's GetStatus plus duration renewal."""
        source, consumer, subscriber = stack
        handle = subscriber.subscribe(
            source.epr(), consumer=consumer.epr(), expires="PT60S"
        )
        assert subscriber.get_status(handle) == "Active"
        network.clock.advance(30.0)
        subscriber.renew(handle, "PT120S")
        network.clock.advance(100.0)
        assert source.publish(event()) == 1

    def test_pause_resume_and_status(self, stack):
        """WSN's Pause/Resume, visible through WSE's GetStatus."""
        source, consumer, subscriber = stack
        handle = subscriber.subscribe(source.epr(), consumer=consumer.epr())
        subscriber.pause(handle)
        assert subscriber.get_status(handle) == "Paused"
        source.publish(event())
        assert consumer.received == []
        subscriber.resume(handle)
        assert len(consumer.received) == 1

    def test_get_current_message(self, stack):
        source, consumer, subscriber = stack
        subscriber.subscribe(source.epr(), consumer=consumer.epr(), topic="t")
        source.publish(event(5), topic="t")
        current = subscriber.get_current_message(source.epr(), "t")
        assert "5" in current.full_text()
        with pytest.raises(SoapFault):
            subscriber.get_current_message(source.epr(), "silent")

    def test_unsubscribe(self, stack):
        source, consumer, subscriber = stack
        handle = subscriber.subscribe(source.epr(), consumer=consumer.epr())
        subscriber.unsubscribe(handle)
        assert source.publish(event()) == 0
        with pytest.raises(SoapFault):
            subscriber.get_status(handle)

    def test_subscription_end_on_delivery_failure(self, network):
        source = ConvergedSource(network, "http://conv-src")
        consumer = ConvergedConsumer(network, "http://conv-consumer")
        end_watcher = ConvergedConsumer(network, "http://conv-ends")
        subscriber = ConvergedSubscriber(network)
        subscriber.subscribe(
            source.epr(), consumer=consumer.epr(), end_to=end_watcher.epr()
        )
        consumer.close()
        source.publish(event())
        assert len(end_watcher.ends) == 1
        assert "DeliveryFailure" in end_watcher.ends[0]

    def test_topicless_subscription_allowed(self, stack):
        """No topic obligation (intersection of parents' requirements)."""
        source, consumer, subscriber = stack
        subscriber.subscribe(source.epr(), consumer=consumer.epr())
        assert source.publish(event()) == 1

    def test_push_requires_consumer(self, stack):
        source, _, subscriber = stack
        with pytest.raises(SoapFault):
            subscriber.subscribe(source.epr())

    def test_bad_filter_faults(self, stack):
        source, consumer, subscriber = stack
        with pytest.raises(SoapFault) as excinfo:
            subscriber.subscribe(
                source.epr(), consumer=consumer.epr(), message_content="///"
            )
        assert excinfo.value.subcode.local == "InvalidFilterFault"

    def test_expiry_sends_end_notice(self, stack, network):
        source, consumer, subscriber = stack
        end_watcher = ConvergedConsumer(network, "http://conv-ends-2")
        subscriber.subscribe(
            source.epr(),
            consumer=consumer.epr(),
            expires="PT10S",
            end_to=end_watcher.epr(),
        )
        network.clock.advance(20.0)
        assert source.publish(event()) == 0
        assert end_watcher.ends == ["SubscriptionExpired"]

    def test_producer_properties_filter(self, network):
        source = ConvergedSource(
            network, "http://conv-pp", producer_properties={"cluster": "A"}
        )
        consumer = ConvergedConsumer(network, "http://conv-pp-consumer")
        subscriber = ConvergedSubscriber(network)
        subscriber.subscribe(
            source.epr(), consumer=consumer.epr(), producer_properties="/*[cluster='A']"
        )
        assert source.publish(event()) == 1


class TestConvergedArchitectureTrace:
    def test_union_edges(self):
        from repro.comparison.figures import trace_converged_architecture

        trace = trace_converged_architecture()
        source_ops = trace.operations_between("Subscriber", "Event Source")
        assert {"Subscribe", "GetCurrentMessage"} <= set(source_ops)
        manager_ops = set(trace.operations_between("Subscriber", "Subscription Manager"))
        # WSE operations and WSN operations on one manager
        assert {"GetStatus", "Renew", "Unsubscribe", "Pull"} <= manager_ops
        assert {"PauseSubscription", "ResumeSubscription"} <= manager_ops
        assert trace.operations_between("Event Source", "Consumer") == ["Notify"]

    def test_render(self):
        from repro.comparison.figures import trace_converged_architecture

        text = trace_converged_architecture().render()
        assert "union of both families" in text
