"""The WS-EventNotification prototype: one spec with both families' power.

The paper's conclusion reports a proposal to merge the two competing
specifications.  This example exercises the prototype built in
``repro.convergence``: a single Subscribe carries a WSN-style three-part
filter *and* a WSE-style in-message pull-mode selection; the same endpoint
answers GetStatus (WSE) and Pause/Resume + GetCurrentMessage (WSN).

Run:  python examples/converged_prototype.py
"""

from repro.convergence import (
    MODE_PULL,
    ConvergedConsumer,
    ConvergedProfile,
    ConvergedSource,
    ConvergedSubscriber,
)
from repro.transport import SimulatedNetwork, VirtualClock
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces

EV = "urn:conv:events"


def event(job, progress):
    return parse_xml(
        f'<ev:S xmlns:ev="{EV}"><ev:job>{job}</ev:job>'
        f"<ev:progress>{progress}</ev:progress></ev:S>"
    )


def main(network=None) -> None:
    profile = ConvergedProfile()
    assert profile.dominates_parents()
    print("converged profile dominates WSE 08/2004 and WSN 1.3:", profile.dominates_parents())

    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    network.add_zone("lan", blocks_inbound=True)
    source = ConvergedSource(network, "http://converged")
    subscriber = ConvergedSubscriber(network)

    # a push consumer with a topic wildcard AND a content filter in one Subscribe
    consumer = ConvergedConsumer(network, "http://dashboard")
    handle = subscriber.subscribe(
        source.epr(),
        consumer=consumer.epr(),
        topic="jobs//.",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        message_content="/ev:S[ev:progress >= 50]",
        namespaces={"ev": EV},
        expires="PT1H",
    )

    # a pull consumer behind a firewall — mode chosen in the Subscribe message
    lan_subscriber = ConvergedSubscriber(network, zone="lan")
    pull_handle = lan_subscriber.subscribe(source.epr(), mode=MODE_PULL, topic="jobs//.",
                                           topic_dialect=Namespaces.DIALECT_TOPIC_FULL)

    source.publish(event("job-1", 30), topic="jobs/job-1")   # filtered out for push
    source.publish(event("job-1", 80), topic="jobs/job-1")   # delivered

    print("push consumer received:", len(consumer.received))
    print("  ", consumer.received[0][0].full_text(), "on topic", consumer.received[0][1])
    pulled = lan_subscriber.pull(pull_handle)
    print("firewalled pull consumer drained:", len(pulled), "messages")

    print("status (WSE-style GetStatus):", subscriber.get_status(handle))
    subscriber.pause(handle)                                   # WSN-style pause
    source.publish(event("job-1", 95), topic="jobs/job-1")
    print("while paused, received stays:", len(consumer.received))
    subscriber.resume(handle)
    print("after resume (backlog flushed):", len(consumer.received))
    current = subscriber.get_current_message(source.epr(), "jobs/job-1")
    print("GetCurrentMessage (WSN-style):", current.full_text())

    assert len(consumer.received) == 2
    assert len(pulled) == 2
    print("\nok: one specification, both families' capabilities")


if __name__ == "__main__":
    main()
