"""The paper's motivating scenario: Grid workflow monitoring.

"Event notifications are disseminated for various purposes in Grid
computing applications, such as logging, monitoring and auditing.  Possible
events include computation results, status updates, errors, exceptions..."

A workflow engine runs a three-stage computation and publishes status, log
and error events on a hierarchical topic space through WS-Messenger.  Four
consumers watch with different filters:

- a dashboard subscribed to all job status updates (Full-dialect wildcard);
- an alerting service subscribed to errors only (Concrete topic);
- an auditor receiving *everything* under jobs//. into a durable log;
- a progress tracker using a content filter (XPath over the message body)
  to wake up only when progress crosses 90%.

Run:  python examples/grid_monitoring.py
"""

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml
from repro.xmlkit.names import Namespaces

EV = "urn:grid:events"


def status_event(job, stage, progress):
    return parse_xml(
        f'<ev:Status xmlns:ev="{EV}"><ev:job>{job}</ev:job>'
        f"<ev:stage>{stage}</ev:stage><ev:progress>{progress}</ev:progress></ev:Status>"
    )


def log_event(job, line):
    return parse_xml(
        f'<ev:Log xmlns:ev="{EV}"><ev:job>{job}</ev:job><ev:line>{line}</ev:line></ev:Log>'
    )


def error_event(job, message):
    return parse_xml(
        f'<ev:Error xmlns:ev="{EV}"><ev:job>{job}</ev:job>'
        f"<ev:message>{message}</ev:message></ev:Error>"
    )


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker.grid")
    subscriber = WsnSubscriber(network)

    dashboard = NotificationConsumer(network, "http://dashboard")
    subscriber.subscribe(
        broker.epr(),
        dashboard.epr(),
        topic="jobs/*/status",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
    )

    alerting = NotificationConsumer(network, "http://alerting")
    subscriber.subscribe(
        broker.epr(),
        alerting.epr(),
        topic="jobs/job-42/errors",  # Concrete dialect (default)
    )

    auditor = NotificationConsumer(network, "http://auditor")
    subscriber.subscribe(
        broker.epr(),
        auditor.epr(),
        topic="jobs//.",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
    )

    tracker = NotificationConsumer(network, "http://tracker")
    subscriber.subscribe(
        broker.epr(),
        tracker.epr(),
        topic="jobs//.",
        topic_dialect=Namespaces.DIALECT_TOPIC_FULL,
        message_content="/ev:Status[ev:progress >= 90]",
        namespaces={"ev": EV},
    )

    # --- the workflow runs --------------------------------------------------
    job = "job-42"
    for stage, progress in [("transfer", 30), ("compute", 60), ("compute", 95)]:
        broker.publish(status_event(job, stage, progress), topic=f"jobs/{job}/status")
        broker.publish(log_event(job, f"{stage} at {progress}%"), topic=f"jobs/{job}/logs")
    broker.publish(error_event(job, "node n17 dropped"), topic=f"jobs/{job}/errors")

    print(f"dashboard: {len(dashboard.received)} status updates")
    print(f"alerting : {len(alerting.received)} errors")
    print(f"auditor  : {len(auditor.received)} events of all kinds")
    print(f"tracker  : {len(tracker.received)} near-completion signals")
    for item in tracker.received:
        print("   tracker saw:", item.payload.full_text())

    assert len(dashboard.received) == 3
    assert len(alerting.received) == 1
    assert len(auditor.received) == 7
    assert len(tracker.received) == 1
    print("\nok: every monitor saw exactly its filtered slice")


if __name__ == "__main__":
    main()
