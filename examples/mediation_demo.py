"""Cross-specification mediation, in both directions (paper section VII).

An external WS-Eventing event source and an external WS-Notification
producer both feed WS-Messenger; consumers of *both* families subscribe at
the broker and each receives every event in its own spec's message shape:

- the WSE sink gets raw payloads (topic riding as a SOAP header);
- the WSN consumer gets wrapped Notify messages (topic in the body).

"It makes no difference to the event consumers since WS-Messenger performs
mediations automatically."

Run:  python examples/mediation_demo.py
"""

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, EventSource, WseSubscriber
from repro.wsn import NotificationConsumer, NotificationProducer, WsnSubscriber
from repro.xmlkit import parse_xml

EV = "urn:weather:events"


def reading(station, celsius):
    return parse_xml(
        f'<w:Reading xmlns:w="{EV}"><w:station>{station}</w:station>'
        f"<w:celsius>{celsius}</w:celsius></w:Reading>"
    )


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker.weather")

    # consumers, one per family, both subscribed at the broker front door
    wse_sink = EventSink(network, "http://wse-display")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=wse_sink.epr())
    wsn_consumer = NotificationConsumer(network, "http://wsn-archive")
    WsnSubscriber(network).subscribe(broker.epr(), wsn_consumer.epr(), topic="weather")

    # publisher A speaks WS-Eventing: an event source the broker bridges from
    wse_station = EventSource(network, "http://station-alpha")
    broker.bridge_from_wse_source(wse_station.epr())

    # publisher B speaks WS-Notification: a producer the broker bridges from
    wsn_station = NotificationProducer(network, "http://station-beta")
    broker.bridge_from_wsn_producer(wsn_station.epr(), topic="weather")

    wse_station.publish(reading("alpha", 21))
    wsn_station.publish(reading("beta", 19), topic="weather")

    print("WSE sink received:")
    for item in wse_sink.received:
        print("  raw:", item.payload.full_text(), "| wrapped:", item.wrapped)
    print("WSN consumer received:")
    for item in wsn_consumer.received:
        print("  wrapped:", item.wrapped, "| topic:", item.topic, "|", item.payload.full_text())

    # the WSE publisher's event reached the WSN consumer and vice versa
    assert len(wse_sink.received) == 2
    assert len(wsn_consumer.received) >= 1  # topic-filtered: only station-beta's
    assert all(item.wrapped for item in wsn_consumer.received)
    assert all(not item.wrapped for item in wse_sink.received)
    print("\nok: producers of either spec reached consumers of either spec")


if __name__ == "__main__":
    main()
