"""Wrapping existing messaging systems (paper section VII, last paragraph).

"WS-Messenger provides a generic interface that can use existing
publish/subscribe systems as the underlying message systems.  In this way,
WS-Messenger provides Web service interfaces to existing messaging systems."

Two brokers run side by side, identical except for the backbone: one routes
every notification through the *JMS baseline* (XML payload in a TextMessage
over a JMS topic), the other through the *CORBA Notification Service*
baseline (XML payload inside a CDR-marshalled structured event).  WS
consumers subscribed over SOAP receive the events either way.

Run:  python examples/legacy_bridge.py
"""

from repro.baselines.jms import JmsProvider
from repro.messenger import CorbaBackbone, JmsBackbone, WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml


def order_event(sku, quantity):
    return parse_xml(
        f'<o:Order xmlns:o="urn:shop"><o:sku>{sku}</o:sku>'
        f"<o:quantity>{quantity}</o:quantity></o:Order>"
    )


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())

    # --- broker 1: JMS underneath ------------------------------------------
    jms_provider = JmsProvider(network.clock)
    jms_backbone = JmsBackbone(jms_provider, topic_name="shop-events")
    jms_broker = WsMessenger(network, "http://broker.jms", backbone=jms_backbone)
    jms_consumer = NotificationConsumer(network, "http://consumer.jms")
    WsnSubscriber(network).subscribe(jms_broker.epr(), jms_consumer.epr(), topic="orders")

    # --- broker 2: CORBA Notification Service underneath ----------------------
    corba_backbone = CorbaBackbone()
    corba_broker = WsMessenger(network, "http://broker.corba", backbone=corba_backbone)
    corba_consumer = NotificationConsumer(network, "http://consumer.corba")
    WsnSubscriber(network).subscribe(
        corba_broker.epr(), corba_consumer.epr(), topic="orders"
    )

    for sku, quantity in [("widget", 3), ("sprocket", 7)]:
        jms_broker.publish(order_event(sku, quantity), topic="orders")
        corba_broker.publish(order_event(sku, quantity), topic="orders")

    print("JMS backbone  :", jms_backbone.describe())
    print("  messages actually carried over the JMS topic:", jms_backbone.messages_carried)
    print("  WS consumer received:", len(jms_consumer.received))
    print("CORBA backbone:", corba_backbone.describe())
    print("  structured events through the ORB:", corba_backbone.messages_carried)
    print("  ORB bytes routed (CDR + GIOP):", corba_backbone.orb.bytes_routed)
    print("  WS consumer received:", len(corba_consumer.received))

    assert jms_backbone.messages_carried == 2
    assert corba_backbone.messages_carried == 2
    assert len(jms_consumer.received) == 2
    assert len(corba_consumer.received) == 2
    print("\nok: the same WS interface rode two different legacy messaging systems")


if __name__ == "__main__":
    main()
