"""Regenerate the paper's comparative study as a text report.

Prints the measured Tables 1-3 (each cell determined by probing the live
implementations), the traced architecture diagrams of Figs. 1-2, and the
diff of every table against the published cells.

Run:  python examples/spec_evolution_report.py
"""

from repro.comparison import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    build_table1,
    build_table2,
    build_table3,
    trace_wse_architecture,
    trace_wsn_architecture,
)
from repro.wse.versions import WseVersion


def main() -> None:
    for build, paper, widths in [
        (build_table1, PAPER_TABLE1, dict(label_width=52, cell_width=14)),
        (build_table2, PAPER_TABLE2, dict(label_width=28, cell_width=52)),
        (build_table3, PAPER_TABLE3, dict(label_width=22, cell_width=26)),
    ]:
        measured = build()
        print(measured.render(**widths))
        print()
        print("vs paper:", measured.diff(paper).summary())
        print("\n" + "#" * 100 + "\n")

    print(trace_wse_architecture(WseVersion.V2004_08).render())
    print("\n" + "#" * 100 + "\n")
    print(trace_wse_architecture(WseVersion.V2004_01).render())
    print("\n" + "#" * 100 + "\n")
    print(trace_wsn_architecture().render())


if __name__ == "__main__":
    main()
