"""Quickstart: publish/subscribe through the WS-Messenger broker.

Starts a broker on the simulated network, subscribes one WS-Eventing sink
and one WS-Notification consumer, publishes a single event, and shows that
both receive it — each in its own specification's message shape.

Run:  python examples/quickstart.py
"""

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink, WseSubscriber
from repro.wsn import NotificationConsumer, WsnSubscriber
from repro.xmlkit import parse_xml


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    broker = WsMessenger(network, "http://broker.example")

    # a WS-Eventing consumer: sink + subscriber roles
    sink = EventSink(network, "http://wse-sink.example")
    WseSubscriber(network).subscribe(broker.epr(), notify_to=sink.epr())

    # a WS-Notification consumer
    consumer = NotificationConsumer(network, "http://wsn-consumer.example")
    WsnSubscriber(network).subscribe(broker.epr(), consumer.epr(), topic="jobs/status")

    # one publication, both specs served
    event = parse_xml(
        '<ev:JobStatus xmlns:ev="urn:grid:events">'
        "<ev:jobId>job-42</ev:jobId><ev:state>RUNNING</ev:state>"
        "</ev:JobStatus>"
    )
    broker.publish(event, topic="jobs/status")

    print("broker detected:", broker.stats.detected)
    print()
    print("WS-Eventing sink received (raw payload):")
    for item in sink.received:
        print("  action:", item.action)
        print("  payload root:", item.payload.name)
    print()
    print("WS-Notification consumer received (wrapped Notify):")
    for item in consumer.received:
        print("  topic:", item.topic, "| wrapped:", item.wrapped)
        print("  payload root:", item.payload.name)

    assert len(sink.received) == 1 and len(consumer.received) == 1
    print("\nok: one publication reached both specifications")


if __name__ == "__main__":
    main()
