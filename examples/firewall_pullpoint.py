"""Pull delivery for consumers behind firewalls.

The paper gives this as the scenario that forced both specifications to add
pull mechanisms: "delivering messages to consumers behind firewalls".  Here
a consumer lives in a zone whose firewall blocks all inbound connections:

1. a plain push subscription fails the moment the producer tries to
   deliver (connection refused at the firewall);
2. WS-Eventing 08/2004 pull mode works: the consumer polls the
   subscription manager from inside the zone;
3. WS-Notification 1.3 works through a PullPoint created *outside* the
   firewall and polled from inside — the producer just pushes to the pull
   point as if it were an ordinary consumer.

Run:  python examples/firewall_pullpoint.py
"""

from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsa import EndpointReference
from repro.wse import DeliveryMode, EventSink, WseSubscriber
from repro.wsn import PullPointClient, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n):
    return parse_xml(f'<ev:E xmlns:ev="urn:fw"><ev:n>{n}</ev:n></ev:E>')


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    network.add_zone("corp-lan", blocks_inbound=True)
    broker = WsMessenger(network, "http://broker.public")

    # 1. push into the firewalled zone fails and kills the subscription
    doomed_sink = EventSink(network, "http://inside-sink", zone="corp-lan")
    WseSubscriber(network, zone="corp-lan").subscribe(
        broker.epr(), notify_to=doomed_sink.epr()
    )
    broker.publish(event(1))
    print("push into firewalled zone delivered:", len(doomed_sink.received), "(refused)")
    print("firewall refusals on the wire:", network.stats.refused)

    # 2. WS-Eventing pull mode: the consumer polls from inside
    wse_subscriber = WseSubscriber(network, zone="corp-lan")
    handle = wse_subscriber.subscribe(broker.epr(), mode=DeliveryMode.PULL)
    broker.publish(event(2))
    broker.publish(event(3))
    pulled = wse_subscriber.pull(handle)
    print("WSE pull retrieved:", len(pulled), "messages")

    # 3. WSN 1.3 pull point: created at the broker, polled from inside
    client = PullPointClient(network, zone="corp-lan")
    pull_point = client.create(EndpointReference(broker.address + "/pullpoints"))
    WsnSubscriber(network, zone="corp-lan").subscribe(
        broker.epr(), pull_point, topic="fw"
    )
    broker.publish(event(4), topic="fw")
    messages = client.get_messages(pull_point)
    print("WSN pull point retrieved:", len(messages), "messages")

    assert len(doomed_sink.received) == 0
    assert len(pulled) == 2
    assert len(messages) == 1
    print("\nok: pull mechanisms reach firewalled consumers that push cannot")


if __name__ == "__main__":
    main()
