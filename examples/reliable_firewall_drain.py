"""Reliable delivery meets the firewall: store-and-forward plus pull drain.

A consumer inside a blocks-inbound zone subscribes (client-initiated calls
pass the firewall), but every push the broker attempts is refused.  With a
:class:`~repro.delivery.DeliveryPolicy` attached the broker does not retry a
hopeless route or kill the subscription — after the per-sink circuit breaker
trips, messages park in a broker-side message box, and the consumer drains
them from inside the zone with the stock WSN 1.3 pull client
(``GetMessages``, the same exchange a PullPoint serves).

Run:  python examples/reliable_firewall_drain.py
"""

from repro.delivery import DeliveryPolicy
from repro.messenger import WsMessenger
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wsn import NotificationConsumer, PullPointClient, WsnSubscriber
from repro.xmlkit import parse_xml


def event(n):
    return parse_xml(f'<ev:E xmlns:ev="urn:rfd"><ev:n>{n}</ev:n></ev:E>')


def main(network=None) -> None:
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    network.add_zone("corp-lan", blocks_inbound=True)
    broker = WsMessenger(
        network,
        "http://broker.public",
        delivery=DeliveryPolicy(breaker_failure_threshold=2),
    )

    # subscribing from inside the firewall works: it is client-initiated
    consumer = NotificationConsumer(network, "http://inside-consumer", zone="corp-lan")
    WsnSubscriber(network, zone="corp-lan").subscribe(
        broker.epr(), consumer.epr(), topic="alerts"
    )

    # pushes are refused at the firewall; the breaker trips, then messages
    # park without further wire attempts
    for n in range(1, 6):
        broker.publish(event(n), topic="alerts")
    box = broker.message_boxes.get("http://inside-consumer")
    print("pushed through the firewall:", len(consumer.received))
    print("refused at the firewall:", network.stats.firewall_blocked)
    print(
        "breaker:",
        broker.delivery_manager.breaker_state("http://inside-consumer"),
        "| parked broker-side:",
        len(box),
    )
    # the subscription is alive and well — the DLQ/boxes own the backlog
    print("surviving subscriptions:", broker.subscription_count())

    # the consumer drains its message box from inside the zone
    client = PullPointClient(network, zone="corp-lan")
    messages = client.get_messages(box.epr())
    print(
        "drained by pull:",
        len(messages),
        "messages, topics:",
        sorted({m.topic for m in messages}),
    )

    assert len(consumer.received) == 0
    assert network.stats.firewall_blocked == 2  # breaker capped wire attempts
    assert len(messages) == 5 and len(box) == 0
    assert broker.subscription_count() == 1
    print("\nok: blocked pushes parked broker-side and drained by pull")


if __name__ == "__main__":
    main()
