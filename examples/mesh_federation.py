"""Mesh federation: one topic space sharded across three brokers.

Builds a 3-shard :class:`repro.mesh.MeshCluster`, subscribes consumers at
*different* shards than the topics they want, publishes through arbitrary
entry nodes, and shows that every message reaches every matching consumer
exactly once — forwarded to its owning shard and federated back out over
real simulated wire traffic, with the ledger balancing mesh-wide.

Run:  python examples/mesh_federation.py
"""

from repro.mesh import MeshCluster
from repro.transport import SimulatedNetwork, VirtualClock
from repro.wse import EventSink
from repro.wsn import NotificationConsumer
from repro.xmlkit import parse_xml


def main(network=None):
    # an injected network lets obs-audit re-run this scenario instrumented
    if network is None:
        network = SimulatedNetwork(VirtualClock())
    mesh = MeshCluster(network, 3)
    for name in mesh.registry.current.members:
        print(f"shard {name}: broker at {mesh.nodes[name].address}")
    print(
        "topic owners:",
        {t: mesh.owner_node_of_topic(t).name for t in ("jobs", "billing")},
    )

    # a WSN consumer pinned to jobs/*, homed on whatever shard owns "jobs"
    # (its subscription stays local: no federation needed)
    local = NotificationConsumer(network, "http://local-consumer.example")
    mesh.subscribe_wsn(local.address, topic="jobs/status")

    # the same topic subscribed from a *different* shard: the home node
    # federates a WSN subscribe link from the owner back to itself
    other_home = next(
        name
        for name in mesh.registry.current.members
        if name != mesh.owner_node_of_topic("jobs/status").name
    )
    remote = NotificationConsumer(network, "http://remote-consumer.example")
    mesh.subscribe_wsn(remote.address, topic="jobs/status", home=other_home)

    # a WSE sink with no topic pinning: its home links to every other shard
    sink = EventSink(network, "http://wse-sink.example")
    mesh.subscribe_wse(sink.address, home=0)

    event = parse_xml(
        '<ev:JobStatus xmlns:ev="urn:grid:events">'
        "<ev:jobId>job-42</ev:jobId><ev:state>RUNNING</ev:state>"
        "</ev:JobStatus>"
    )
    # publish at every shard in turn: non-owners forward over the wire
    for index in range(len(mesh.nodes)):
        mesh.publish(event.copy(), topic="jobs/status", via=index)
    bill = parse_xml('<ev:Invoice xmlns:ev="urn:grid:events">77</ev:Invoice>')
    mesh.publish(bill.copy(), topic="billing/invoices")

    print()
    print("federation links per shard (peer -> covered roots, None=all):")
    for name in mesh.registry.current.members:
        print(f"  {name}: {mesh.nodes[name].links.links()}")
    print()
    print(f"local WSN consumer received {len(local.received)} (jobs/status x3)")
    print(f"remote WSN consumer received {len(remote.received)} (federated x3)")
    print(f"WSE sink received {len(sink.received)} (everything x4)")

    assert [item.topic for item in local.received] == ["jobs/status"] * 3
    assert [item.topic for item in remote.received] == ["jobs/status"] * 3
    assert len(sink.received) == 4
    print("\nok: every consumer saw every matching publish exactly once")

    # hand the mesh's federation sinks to obs-audit so it applies the
    # mesh-wide conservation invariants when re-running this instrumented
    return mesh.federation_sinks()


if __name__ == "__main__":
    main()
